//! The online-shopping polystore of the paper's motivating example
//! (Section II / Figure 2).
//!
//! Three sources, deliberately *not* label-aligned:
//!
//! 1. an RDBMS with products, users and transactions — product names use
//!    one synonym of their concept cluster,
//! 2. a knowledge base whose category labels use *other* synonyms
//!    ("curated and collected on a different and broader dataset"),
//! 3. a product-image store whose latent objects use yet other synonyms.
//!
//! Equality joins across the sources therefore miss most matches; only the
//! semantic join recovers them — which is the paper's point.

use crate::vocab::{synthetic_clusters, table1_clusters, ClusterTruth};
use cx_embed::rng::SplitMix64;
use cx_embed::ClusterSpec;
use cx_kb::KnowledgeBase;
use cx_storage::{Column, Field, Result, Schema, Table};
use cx_vision::{ImageStore, SyntheticImage, MICROS_PER_DAY};

/// Shop dataset parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShopConfig {
    pub n_products: usize,
    pub n_users: usize,
    pub n_transactions: usize,
    pub n_images: usize,
    /// Day range of image/transaction timestamps (days since epoch).
    pub start_day: i64,
    pub days: i64,
    pub seed: u64,
}

impl Default for ShopConfig {
    fn default() -> Self {
        ShopConfig {
            n_products: 10_000,
            n_users: 2_000,
            n_transactions: 50_000,
            n_images: 8_000,
            start_day: 19_000, // ~2022
            days: 365,
            seed: 0x5B0B,
        }
    }
}

/// The generated polystore.
pub struct ShopDataset {
    /// `product_id, name, price` — names are cluster-member synonyms.
    pub products: Table,
    /// `user_id, region`.
    pub users: Table,
    /// `tx_id, user_id, product_id, ts`.
    pub transactions: Table,
    /// Labels/categories with synonym variation.
    pub kb: KnowledgeBase,
    /// Product images with latent objects.
    pub images: ImageStore,
    /// All concept clusters (Table I clothing/animal + synthetic
    /// distractors).
    pub clusters: Vec<ClusterSpec>,
    /// String-level ground truth.
    pub truth: ClusterTruth,
    config: ShopConfig,
}

impl ShopDataset {
    /// Generates the dataset.
    pub fn generate(config: ShopConfig) -> Result<ShopDataset> {
        let mut rng = SplitMix64::new(config.seed);

        // Concept clusters: the paper's Table I vocabulary plus synthetic
        // distractor categories (kitchenware, electronics, ... as random
        // concept clusters).
        let mut clusters = table1_clusters();
        clusters.extend(synthetic_clusters(12, 6, config.seed ^ 0xD15C));
        let truth = ClusterTruth::from_specs(&clusters);

        // Leaf clusters usable as product concepts (exclude the abstract
        // parents "animal"/"clothes" which have no members of their own).
        let product_clusters: Vec<&ClusterSpec> =
            clusters.iter().filter(|c| !c.members.is_empty()).collect();
        let clothing: Vec<&str> = vec!["shoes", "jacket"];

        // Products: half clothing, half distractors; the name is a random
        // member synonym of the concept cluster.
        let mut ids = Vec::with_capacity(config.n_products);
        let mut names = Vec::with_capacity(config.n_products);
        let mut prices = Vec::with_capacity(config.n_products);
        for i in 0..config.n_products {
            let cluster = if rng.next_f64() < 0.5 {
                let pick = clothing[rng.next_range(clothing.len() as u64) as usize];
                product_clusters
                    .iter()
                    .find(|c| c.name == pick)
                    .expect("clothing cluster present")
            } else {
                &product_clusters[rng.next_range(product_clusters.len() as u64) as usize]
            };
            let member = &cluster.members[rng.next_range(cluster.members.len() as u64) as usize];
            ids.push(i as i64);
            names.push(member.clone());
            prices.push(5.0 + rng.next_f64() * 195.0);
        }
        let products = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", cx_storage::DataType::Int64),
                Field::new("name", cx_storage::DataType::Utf8),
                Field::new("price", cx_storage::DataType::Float64),
            ]),
            vec![
                Column::from_i64(ids),
                Column::from_strings(names),
                Column::from_f64(prices),
            ],
        )?;

        // Users.
        let regions = ["north", "south", "east", "west"];
        let users = Table::from_columns(
            Schema::new(vec![
                Field::new("user_id", cx_storage::DataType::Int64),
                Field::new("region", cx_storage::DataType::Utf8),
            ]),
            vec![
                Column::from_i64((0..config.n_users as i64).collect()),
                Column::from_strings(
                    (0..config.n_users)
                        .map(|_| regions[rng.next_range(4) as usize].to_string())
                        .collect::<Vec<_>>(),
                ),
            ],
        )?;

        // Transactions.
        let span_micros = config.days * MICROS_PER_DAY;
        let base_ts = config.start_day * MICROS_PER_DAY;
        let mut tx_user = Vec::with_capacity(config.n_transactions);
        let mut tx_product = Vec::with_capacity(config.n_transactions);
        let mut tx_ts = Vec::with_capacity(config.n_transactions);
        for _ in 0..config.n_transactions {
            tx_user.push(rng.next_range(config.n_users.max(1) as u64) as i64);
            tx_product.push(rng.next_range(config.n_products.max(1) as u64) as i64);
            tx_ts.push(base_ts + rng.next_range(span_micros.max(1) as u64) as i64);
        }
        let transactions = Table::from_columns(
            Schema::new(vec![
                Field::new("tx_id", cx_storage::DataType::Int64),
                Field::new("user_id", cx_storage::DataType::Int64),
                Field::new("product_id", cx_storage::DataType::Int64),
                Field::new("ts", cx_storage::DataType::Timestamp),
            ]),
            vec![
                Column::from_i64((0..config.n_transactions as i64).collect()),
                Column::from_i64(tx_user),
                Column::from_i64(tx_product),
                Column::from_timestamps(tx_ts),
            ],
        )?;

        // Knowledge base: every cluster member is_a cluster; cluster
        // hierarchy mirrored; extra synonym labels attached (the KB's
        // "broader dataset" vocabulary).
        let mut kb = KnowledgeBase::new();
        for spec in &clusters {
            if let Some(parent) = &spec.parent {
                kb.assert_is_a(&spec.name, parent);
            }
            for m in &spec.members {
                kb.assert_is_a(m, &spec.name);
            }
        }

        // Images: 1–4 latent objects each, drawn as member synonyms of
        // random product clusters, plus occasional generic objects.
        let mut images = ImageStore::new();
        for i in 0..config.n_images {
            let n_objects = 1 + rng.next_range(4) as usize;
            let mut latent = Vec::with_capacity(n_objects);
            for _ in 0..n_objects {
                if rng.next_f64() < 0.2 {
                    latent.push("person".to_string());
                } else {
                    let c = &product_clusters
                        [rng.next_range(product_clusters.len() as u64) as usize];
                    latent.push(c.members[rng.next_range(c.members.len() as u64) as usize].clone());
                }
            }
            let source = ["review", "social", "website"][rng.next_range(3) as usize].to_string();
            images.add(SyntheticImage {
                id: i as i64,
                date_taken: base_ts + rng.next_range(span_micros.max(1) as u64) as i64,
                source,
                latent_objects: latent,
            });
        }

        Ok(ShopDataset {
            products,
            users,
            transactions,
            kb,
            images,
            clusters,
            truth,
            config,
        })
    }

    /// The configuration this dataset was generated with.
    pub fn config(&self) -> ShopConfig {
        self.config
    }

    /// Ground truth for the Figure 2 query, computed from latent data (no
    /// embeddings): product rows that are clothing with `price > min_price`
    /// and appear (same concept cluster) in an image taken after
    /// `after_day` containing more than `min_objects` latent objects.
    pub fn fig2_ground_truth(
        &self,
        min_price: f64,
        after_day: i64,
        min_objects: usize,
    ) -> Result<Vec<i64>> {
        let after_ts = after_day * MICROS_PER_DAY;
        // Concept clusters visible in qualifying images.
        let mut visible: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for img in self.images.images() {
            if img.date_taken > after_ts && img.latent_objects.len() > min_objects {
                for obj in &img.latent_objects {
                    if let Some(c) = self.truth.cluster_of(obj) {
                        visible.insert(c);
                    }
                }
            }
        }
        let names = self.products.column_by_name("name")?;
        let prices = self.products.column_by_name("price")?;
        let ids = self.products.column_by_name("product_id")?;
        let mut out = Vec::new();
        for i in 0..self.products.num_rows() {
            let name = &names.utf8_values()?[i];
            let price = prices.f64_values()?[i];
            if price <= min_price || !self.truth.in_tree(name, "clothes") {
                continue;
            }
            if let Some(c) = self.truth.cluster_of(name) {
                if visible.contains(c) {
                    out.push(ids.i64_values()?[i]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShopDataset {
        ShopDataset::generate(ShopConfig {
            n_products: 200,
            n_users: 20,
            n_transactions: 500,
            n_images: 100,
            start_day: 19_000,
            days: 100,
            seed: 7,
        })
        .unwrap()
    }

    #[test]
    fn shapes_match_config() {
        let d = small();
        assert_eq!(d.products.num_rows(), 200);
        assert_eq!(d.users.num_rows(), 20);
        assert_eq!(d.transactions.num_rows(), 500);
        assert_eq!(d.images.len(), 100);
        assert!(d.kb.num_triples() > 0);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(
            a.products.column_by_name("name").unwrap(),
            b.products.column_by_name("name").unwrap()
        );
        assert_eq!(a.images.images(), b.images.images());
    }

    #[test]
    fn product_names_are_cluster_members() {
        let d = small();
        let names = d.products.column_by_name("name").unwrap();
        for n in names.utf8_values().unwrap() {
            assert!(d.truth.cluster_of(n).is_some(), "name {n} not in any cluster");
        }
    }

    #[test]
    fn kb_taxonomy_reflects_hierarchy() {
        let d = small();
        let boots = d.kb.lookup("boots").unwrap();
        let clothes = d.kb.lookup("clothes").unwrap();
        assert!(d.kb.is_a(boots, clothes));
    }

    #[test]
    fn fig2_ground_truth_sane() {
        let d = small();
        let all = d.fig2_ground_truth(0.0, 0, 0).unwrap();
        let constrained = d.fig2_ground_truth(20.0, 19_050, 2).unwrap();
        // Constraints can only shrink the answer.
        assert!(constrained.len() <= all.len());
        assert!(!all.is_empty());
        // Every truth product is clothing.
        let names = d.products.column_by_name("name").unwrap();
        for id in &constrained {
            let name = &names.utf8_values().unwrap()[*id as usize];
            assert!(d.truth.in_tree(name, "clothes"));
        }
    }

    #[test]
    fn timestamps_within_range() {
        let d = small();
        let ts = d.transactions.column_by_name("ts").unwrap();
        let base = 19_000 * MICROS_PER_DAY;
        let end = base + 100 * MICROS_PER_DAY;
        for &t in ts.timestamp_values().unwrap() {
            assert!((base..end).contains(&t));
        }
    }
}

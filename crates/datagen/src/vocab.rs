//! Synonym-cluster vocabularies and ground-truth membership.

use cx_embed::rng::SplitMix64;
use cx_embed::{ClusterGeometry, ClusterSpec, SemanticSpace};
use std::collections::HashMap;

/// The exact vocabulary of the paper's Table I, with the hierarchy its
/// rows imply: `animal ⊃ {dog, cat}` and `clothes ⊃ {shoes, jacket}`.
pub fn table1_clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::new("animal", &[]),
        ClusterSpec::child_of("dog", "animal", &["canine", "golden retriever", "puppy"]),
        ClusterSpec::child_of("cat", "animal", &["maine coon", "feline", "kitten"]),
        ClusterSpec::new("clothes", &[]),
        ClusterSpec::child_of("shoes", "clothes", &["boots", "sneakers", "oxfords", "lace-ups"]),
        ClusterSpec::child_of(
            "jacket",
            "clothes",
            &["blazer", "coat", "parka", "windbreaker"],
        ),
    ]
}

const CONSONANTS: &[char] = &['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z'];
const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

/// A pronounceable random word of 2–4 syllables.
fn random_word(rng: &mut SplitMix64) -> String {
    let syllables = 2 + rng.next_range(3) as usize;
    let mut w = String::with_capacity(syllables * 2);
    for _ in 0..syllables {
        w.push(CONSONANTS[rng.next_range(CONSONANTS.len() as u64) as usize]);
        w.push(VOWELS[rng.next_range(VOWELS.len() as u64) as usize]);
    }
    w
}

/// Generates `n_clusters` synthetic root clusters with `members_per_cluster`
/// members each. Words are globally unique.
pub fn synthetic_clusters(n_clusters: usize, members_per_cluster: usize, seed: u64) -> Vec<ClusterSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut fresh_word = |rng: &mut SplitMix64| loop {
        let mut w = random_word(rng);
        if used.contains(&w) {
            // Disambiguate rather than loop forever on a small space.
            w.push(CONSONANTS[rng.next_range(CONSONANTS.len() as u64) as usize]);
            w.push(VOWELS[rng.next_range(VOWELS.len() as u64) as usize]);
        }
        if used.insert(w.clone()) {
            return w;
        }
    };
    (0..n_clusters)
        .map(|_| {
            let name = fresh_word(&mut rng);
            let members: Vec<String> = (0..members_per_cluster).map(|_| fresh_word(&mut rng)).collect();
            ClusterSpec {
                name,
                members,
                parent: None,
            }
        })
        .collect()
}

/// Builds the semantic space for `specs` at dimension `dim` with default
/// geometry.
pub fn build_space(specs: &[ClusterSpec], dim: usize, seed: u64) -> SemanticSpace {
    SemanticSpace::build(specs, dim, seed, ClusterGeometry::default())
}

/// All words in a spec list: cluster names plus members.
pub fn all_words(specs: &[ClusterSpec]) -> Vec<String> {
    let mut out = Vec::new();
    for spec in specs {
        out.push(spec.name.clone());
        out.extend(spec.members.iter().cloned());
    }
    out
}

/// String-level ground truth derived from cluster specs (no embeddings
/// needed): which cluster a word belongs to and the cluster hierarchy.
#[derive(Debug, Clone, Default)]
pub struct ClusterTruth {
    cluster_of: HashMap<String, String>,
    parent: HashMap<String, String>,
}

impl ClusterTruth {
    /// Builds the truth maps from specs.
    pub fn from_specs(specs: &[ClusterSpec]) -> Self {
        let mut cluster_of = HashMap::new();
        let mut parent = HashMap::new();
        for spec in specs {
            cluster_of.insert(spec.name.clone(), spec.name.clone());
            for m in &spec.members {
                cluster_of.insert(m.clone(), spec.name.clone());
            }
            if let Some(p) = &spec.parent {
                parent.insert(spec.name.clone(), p.clone());
            }
        }
        ClusterTruth { cluster_of, parent }
    }

    /// The direct cluster of `word`, if any.
    pub fn cluster_of(&self, word: &str) -> Option<&str> {
        self.cluster_of.get(word).map(|s| s.as_str())
    }

    /// Whether `word` belongs to `cluster` or any descendant of it.
    pub fn in_tree(&self, word: &str, cluster: &str) -> bool {
        let Some(mut c) = self.cluster_of(word) else {
            return false;
        };
        loop {
            if c == cluster {
                return true;
            }
            match self.parent.get(c) {
                Some(p) => c = p.as_str(),
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_vocabulary() {
        let specs = table1_clusters();
        let words = all_words(&specs);
        for expected in [
            "dog", "canine", "golden retriever", "puppy", "cat", "maine coon", "feline",
            "kitten", "boots", "sneakers", "oxfords", "lace-ups", "blazer", "coat", "parka",
            "windbreaker", "animal", "clothes", "shoes", "jacket",
        ] {
            assert!(words.iter().any(|w| w == expected), "missing {expected}");
        }
    }

    #[test]
    fn truth_hierarchy() {
        let truth = ClusterTruth::from_specs(&table1_clusters());
        assert!(truth.in_tree("boots", "shoes"));
        assert!(truth.in_tree("boots", "clothes"));
        assert!(truth.in_tree("parka", "clothes"));
        assert!(!truth.in_tree("parka", "shoes"));
        assert!(truth.in_tree("golden retriever", "animal"));
        assert!(!truth.in_tree("boots", "animal"));
        assert!(!truth.in_tree("unknown", "clothes"));
        assert_eq!(truth.cluster_of("kitten"), Some("cat"));
    }

    #[test]
    fn synthetic_clusters_unique_and_deterministic() {
        let a = synthetic_clusters(10, 5, 42);
        let b = synthetic_clusters(10, 5, 42);
        assert_eq!(a.len(), 10);
        assert_eq!(
            a.iter().map(|c| c.members.len()).sum::<usize>(),
            50
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.members, y.members);
        }
        // Global uniqueness.
        let words = all_words(&a);
        let set: std::collections::HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), words.len());
    }

    #[test]
    fn built_space_contains_all_words() {
        let specs = table1_clusters();
        let space = build_space(&specs, 32, 1);
        for w in all_words(&specs) {
            assert!(space.vector(&w).is_some(), "no vector for {w}");
        }
    }

    #[test]
    fn words_are_pronounceable_ascii() {
        let specs = synthetic_clusters(5, 5, 7);
        for w in all_words(&specs) {
            assert!(w.len() >= 4);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}

//! Deterministic workload generators for every experiment in the paper.
//!
//! * [`vocab`] — synonym-cluster vocabularies: the exact Table I clusters
//!   plus scalable synthetic clusters of pronounceable words, and the
//!   ground-truth membership maps experiments validate against,
//! * [`corpus`] — Zipfian text corpora standing in for "10k strings taken
//!   randomly from the Wikipedia dataset" (Figure 4),
//! * [`shop`] — the online-shopping polystore of Figure 2: products,
//!   users, transactions, a knowledge base, and a product-image store,
//! * [`dirty`] — dirty-duplicate generation (synonyms, case variants,
//!   typos) with ground truth for the consolidation experiment (Figure 3).
//!
//! Every generator is seeded and bit-for-bit reproducible.

pub mod corpus;
pub mod dirty;
pub mod shop;
pub mod vocab;

pub use corpus::{generate_corpus, CorpusConfig};
pub use dirty::{generate_dirty, DirtyConfig, DirtyDataset};
pub use shop::{ShopConfig, ShopDataset};
pub use vocab::{build_space, synthetic_clusters, table1_clusters, ClusterTruth};

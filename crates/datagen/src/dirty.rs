//! Dirty-duplicate generation for the consolidation experiment (Figure 3).
//!
//! "The source of dirty data is less likely to be a mistake such as
//! misspelling but a word with the same semantics (synonym, alternative
//! spelling, alternative forms)" — Section I. The generator emits records
//! whose values are synonyms, case variants and typos of cluster members,
//! with ground-truth entity labels.
//!
//! Typo variants are *added to the cluster specs* the experiment builds
//! its semantic space from: this models the misspelling-oblivious
//! embeddings the paper cites (\[17\], Edizel et al.), where a trained model
//! places misspellings near the original — a property our constructed
//! space provides by construction instead of training.

use cx_embed::rng::SplitMix64;
use cx_embed::ClusterSpec;

/// Dirty-data generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DirtyConfig {
    /// Records to generate.
    pub size: usize,
    /// Probability a record uses a typo variant.
    pub typo_rate: f64,
    /// Probability a record uses a case variant.
    pub case_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DirtyConfig {
    fn default() -> Self {
        DirtyConfig { size: 10_000, typo_rate: 0.15, case_rate: 0.15, seed: 0xD1137 }
    }
}

/// The generated records plus the augmented specs (original members +
/// typo variants) to build the misspelling-oblivious space from.
#[derive(Debug, Clone)]
pub struct DirtyDataset {
    /// `(value, ground-truth cluster name)` per record.
    pub records: Vec<(String, String)>,
    /// Cluster specs including every typo variant as a member.
    pub augmented_specs: Vec<ClusterSpec>,
}

/// Introduces one deterministic typo: swaps two adjacent characters.
fn typo(word: &str, rng: &mut SplitMix64) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return format!("{word}x");
    }
    let i = 1 + rng.next_range((chars.len() - 2) as u64) as usize;
    let mut out = chars.clone();
    out.swap(i, i + 1);
    out.into_iter().collect()
}

/// Uppercases the first character.
fn title_case(word: &str) -> String {
    let mut c = word.chars();
    match c.next() {
        Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Generates dirty records over `specs`.
///
/// Case variants are handled by the models' lowercasing, typo variants by
/// augmenting the specs; both therefore consolidate back onto the cluster.
pub fn generate_dirty(specs: &[ClusterSpec], config: DirtyConfig) -> DirtyDataset {
    let mut rng = SplitMix64::new(config.seed);

    // Flatten (cluster, member) pairs.
    let mut members: Vec<(String, String)> = Vec::new();
    for spec in specs {
        members.push((spec.name.clone(), spec.name.clone()));
        for m in &spec.members {
            members.push((spec.name.clone(), m.clone()));
        }
    }
    assert!(!members.is_empty(), "no cluster members to dirty");

    // Pre-generate one typo variant per member (deterministic), collecting
    // them into the augmented specs.
    let mut augmented: Vec<ClusterSpec> = specs.to_vec();
    let mut typo_of: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for (cluster, member) in &members {
        let t = typo(member, &mut rng);
        if t != *member {
            typo_of.insert(member.clone(), t.clone());
            if let Some(spec) = augmented.iter_mut().find(|s| &s.name == cluster) {
                if !spec.members.contains(&t) && spec.name != t {
                    spec.members.push(t);
                }
            }
        }
    }

    let mut records = Vec::with_capacity(config.size);
    for _ in 0..config.size {
        let (cluster, member) = &members[rng.next_range(members.len() as u64) as usize];
        let roll = rng.next_f64();
        let value = if roll < config.typo_rate {
            typo_of.get(member).cloned().unwrap_or_else(|| member.clone())
        } else if roll < config.typo_rate + config.case_rate {
            title_case(member)
        } else {
            member.clone()
        };
        records.push((value, cluster.clone()));
    }

    DirtyDataset { records, augmented_specs: augmented }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::table1_clusters;

    #[test]
    fn deterministic() {
        let specs = table1_clusters();
        let cfg = DirtyConfig { size: 100, ..Default::default() };
        let a = generate_dirty(&specs, cfg);
        let b = generate_dirty(&specs, cfg);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn truth_labels_are_cluster_names() {
        let specs = table1_clusters();
        let data = generate_dirty(&specs, DirtyConfig { size: 500, ..Default::default() });
        let names: std::collections::HashSet<&str> =
            specs.iter().map(|s| s.name.as_str()).collect();
        for (_, truth) in &data.records {
            assert!(names.contains(truth.as_str()), "unknown truth {truth}");
        }
    }

    #[test]
    fn variants_occur_at_configured_rates() {
        let specs = table1_clusters();
        let data = generate_dirty(
            &specs,
            DirtyConfig { size: 5_000, typo_rate: 0.3, case_rate: 0.3, seed: 5 },
        );
        let title = data
            .records
            .iter()
            .filter(|(v, _)| v.chars().next().is_some_and(|c| c.is_uppercase()))
            .count();
        let frac = title as f64 / 5_000.0;
        assert!((frac - 0.3).abs() < 0.05, "title-case fraction {frac}");
    }

    #[test]
    fn augmented_specs_cover_typos() {
        let specs = table1_clusters();
        let data = generate_dirty(
            &specs,
            DirtyConfig { size: 2_000, typo_rate: 1.0, case_rate: 0.0, seed: 5 },
        );
        // Every generated typo value must be a member of its truth cluster
        // in the augmented specs (so the space can resolve it).
        let truth = crate::vocab::ClusterTruth::from_specs(&data.augmented_specs);
        for (value, cluster) in data.records.iter().take(200) {
            assert!(
                truth.in_tree(value, cluster),
                "typo {value} not in augmented cluster {cluster}"
            );
        }
    }

    #[test]
    fn typo_changes_word() {
        let mut rng = SplitMix64::new(1);
        let t = typo("boots", &mut rng);
        assert_ne!(t, "boots");
        assert_eq!(t.len(), 5);
        assert_eq!(typo("ab", &mut rng), "abx");
    }

    #[test]
    fn title_case_works() {
        assert_eq!(title_case("boots"), "Boots");
        assert_eq!(title_case(""), "");
    }
}

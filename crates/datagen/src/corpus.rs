//! Zipfian text corpora ("strings taken randomly from Wikipedia").
//!
//! Figure 4 joins two arrays of 10k strings sampled from Wikipedia. What
//! that workload exercises is (a) a heavy-tailed value distribution —
//! natural text is Zipfian — and (b) strings whose embeddings mostly do
//! *not* match at a high cosine threshold. The generator reproduces both:
//! ranks are drawn from a Zipf(s) distribution over the vocabulary, and
//! strings are 1..=max_words phrases.

use cx_embed::rng::SplitMix64;

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of strings to produce.
    pub size: usize,
    /// Zipf exponent (natural text ≈ 1.0).
    pub zipf_s: f64,
    /// Maximum words per string (phrases of 1..=max).
    pub max_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { size: 10_000, zipf_s: 1.0, max_words: 2, seed: 0xC0FFEE }
    }
}

/// A Zipf sampler over ranks `0..n` using precomputed cumulative weights.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.next_f64() * total;
        self.cumulative.partition_point(|&c| c < x)
    }
}

/// Generates `config.size` strings over `vocabulary` (rank order = given
/// order; put frequent words first for realistic skew).
pub fn generate_corpus(vocabulary: &[String], config: CorpusConfig) -> Vec<String> {
    assert!(!vocabulary.is_empty(), "empty vocabulary");
    assert!(config.max_words >= 1, "max_words must be >= 1");
    let sampler = ZipfSampler::new(vocabulary.len(), config.zipf_s);
    let mut rng = SplitMix64::new(config.seed);
    (0..config.size)
        .map(|_| {
            let words = 1 + rng.next_range(config.max_words as u64) as usize;
            let mut s = String::new();
            for w in 0..words {
                if w > 0 {
                    s.push(' ');
                }
                s.push_str(&vocabulary[sampler.sample(&mut rng)]);
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("word{i}")).collect()
    }

    #[test]
    fn deterministic() {
        let v = vocab(100);
        let cfg = CorpusConfig { size: 50, ..Default::default() };
        assert_eq!(generate_corpus(&v, cfg), generate_corpus(&v, cfg));
    }

    #[test]
    fn zipf_skew_favors_low_ranks() {
        let v = vocab(1000);
        let cfg = CorpusConfig { size: 20_000, zipf_s: 1.0, max_words: 1, seed: 3 };
        let corpus = generate_corpus(&v, cfg);
        let count = |w: &str| corpus.iter().filter(|s| s.as_str() == w).count();
        let top = count("word0");
        let mid = count("word99");
        assert!(top > 5 * mid.max(1), "top={top} mid={mid}");
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let v = vocab(10);
        let cfg = CorpusConfig { size: 10_000, zipf_s: 0.0, max_words: 1, seed: 9 };
        let corpus = generate_corpus(&v, cfg);
        let count0 = corpus.iter().filter(|s| s.as_str() == "word0").count();
        assert!((count0 as f64 - 1000.0).abs() < 150.0, "count0 = {count0}");
    }

    #[test]
    fn phrase_lengths_respected() {
        let v = vocab(10);
        let cfg = CorpusConfig { size: 500, zipf_s: 1.0, max_words: 3, seed: 5 };
        let corpus = generate_corpus(&v, cfg);
        let mut seen = [false; 3];
        for s in &corpus {
            let words = s.split(' ').count();
            assert!((1..=3).contains(&words));
            seen[words - 1] = true;
        }
        assert!(seen.iter().all(|&b| b), "all phrase lengths occur");
    }

    #[test]
    fn sampler_rank_bounds() {
        let sampler = ZipfSampler::new(5, 1.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 5);
        }
    }
}

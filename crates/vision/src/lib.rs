//! Image-store substrate with a simulated object-detection model.
//!
//! The paper's motivating query (Figure 2) runs object detection over
//! product images, filters images by date and object count, and joins the
//! detected labels semantically against the other sources. Real detection
//! models and image corpora are out of scope for a reproduction, so this
//! crate *simulates the pipeline shape that matters to the engine*:
//!
//! * each [`SyntheticImage`] carries a latent ground-truth object set,
//! * [`ObjectDetector`] recovers those objects with configurable miss and
//!   confusion rates, per-image inference cost, and an invocation meter —
//!   so experiments can show that pushing the date filter below detection
//!   cuts model invocations (the core lesson of Sections II and V).
//!
//! Determinism: detection results depend only on `(detector seed, image
//! id)`, never on call order.

use cx_embed::rng::SplitMix64;
use cx_storage::{Column, Field, Result, Schema, Table};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Microseconds per day (timestamps are micros since the UNIX epoch).
pub const MICROS_PER_DAY: i64 = 86_400_000_000;

/// A synthetic image: metadata plus a latent object set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImage {
    pub id: i64,
    /// Micros since epoch.
    pub date_taken: i64,
    /// Origin tag ("review", "social", "website").
    pub source: String,
    /// Ground-truth objects in the scene.
    pub latent_objects: Vec<String>,
}

/// An in-memory collection of synthetic images.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ImageStore {
    images: Vec<SyntheticImage>,
}

impl ImageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an image, returning its position.
    pub fn add(&mut self, image: SyntheticImage) -> usize {
        self.images.push(image);
        self.images.len() - 1
    }

    /// All images.
    pub fn images(&self) -> &[SyntheticImage] {
        &self.images
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Images taken strictly after `ts`.
    pub fn taken_after(&self, ts: i64) -> impl Iterator<Item = &SyntheticImage> {
        self.images.iter().filter(move |i| i.date_taken > ts)
    }

    /// Metadata-only relation: `(image_id, date_taken, source)` — readable
    /// *without* running the detector (the cheap side for pushdown).
    pub fn metadata_table(&self) -> Result<Table> {
        let ids: Vec<i64> = self.images.iter().map(|i| i.id).collect();
        let dates: Vec<i64> = self.images.iter().map(|i| i.date_taken).collect();
        let sources: Vec<String> = self.images.iter().map(|i| i.source.clone()).collect();
        Table::from_columns(
            Schema::new(vec![
                Field::new("image_id", cx_storage::DataType::Int64),
                Field::new("date_taken", cx_storage::DataType::Timestamp),
                Field::new("source", cx_storage::DataType::Utf8),
            ]),
            vec![
                Column::from_i64(ids),
                Column::from_timestamps(dates),
                Column::from_strings(sources),
            ],
        )
    }
}

/// One detected object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    pub label: String,
    pub confidence: f64,
}

/// Noise model for the simulated detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorNoise {
    /// Probability a latent object is missed entirely.
    pub miss_rate: f64,
    /// Probability an extra spurious label is emitted per image.
    pub spurious_rate: f64,
}

impl Default for DetectorNoise {
    fn default() -> Self {
        DetectorNoise { miss_rate: 0.05, spurious_rate: 0.05 }
    }
}

/// A simulated object-detection model.
///
/// Inference cost is modeled (`cost_ns_per_image`) and metered
/// (`invocations`), because for the engine the detector is just another
/// expensive model operator whose placement the optimizer controls.
pub struct ObjectDetector {
    name: String,
    noise: DetectorNoise,
    /// Labels the detector may hallucinate.
    spurious_vocab: Vec<String>,
    /// Modeled inference cost per image, in ns (used by the cost model).
    pub cost_ns_per_image: f64,
    seed: u64,
    invocations: AtomicU64,
}

impl ObjectDetector {
    /// A detector with default noise and cost.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self::with_noise(name, seed, DetectorNoise::default())
    }

    /// A detector with explicit noise rates.
    pub fn with_noise(name: impl Into<String>, seed: u64, noise: DetectorNoise) -> Self {
        ObjectDetector {
            name: name.into(),
            noise,
            spurious_vocab: vec!["person".into(), "table".into(), "background".into()],
            cost_ns_per_image: 5_000_000.0, // 5 ms per image: mid-size CNN on CPU
            seed,
            invocations: AtomicU64::new(0),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of images processed so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Resets the invocation meter.
    pub fn reset_invocations(&self) {
        self.invocations.store(0, Ordering::Relaxed);
    }

    /// Runs detection on one image.
    pub fn detect(&self, image: &SyntheticImage) -> Vec<Detection> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        let mut rng = SplitMix64::new(self.seed ^ (image.id as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut out = Vec::with_capacity(image.latent_objects.len());
        for obj in &image.latent_objects {
            if rng.next_f64() < self.noise.miss_rate {
                continue;
            }
            let confidence = 0.70 + 0.29 * rng.next_f64();
            out.push(Detection { label: obj.clone(), confidence });
        }
        if rng.next_f64() < self.noise.spurious_rate && !self.spurious_vocab.is_empty() {
            let pick = rng.next_range(self.spurious_vocab.len() as u64) as usize;
            out.push(Detection {
                label: self.spurious_vocab[pick].clone(),
                confidence: 0.5 + 0.2 * rng.next_f64(),
            });
        }
        out
    }

    /// Runs detection over `images` and materializes the relation
    /// `(image_id, date_taken, label, confidence, object_count)` — one row
    /// per detection, with the per-image detection count denormalized so
    /// `object_count > k` predicates stay scalar.
    pub fn detections_table<'a>(
        &self,
        images: impl IntoIterator<Item = &'a SyntheticImage>,
    ) -> Result<Table> {
        let mut ids = Vec::new();
        let mut dates = Vec::new();
        let mut labels = Vec::new();
        let mut confidences = Vec::new();
        let mut counts = Vec::new();
        for image in images {
            let detections = self.detect(image);
            let n = detections.len() as i64;
            for d in detections {
                ids.push(image.id);
                dates.push(image.date_taken);
                labels.push(d.label);
                confidences.push(d.confidence);
                counts.push(n);
            }
        }
        Table::from_columns(
            Schema::new(vec![
                Field::new("image_id", cx_storage::DataType::Int64),
                Field::new("date_taken", cx_storage::DataType::Timestamp),
                Field::new("label", cx_storage::DataType::Utf8),
                Field::new("confidence", cx_storage::DataType::Float64),
                Field::new("object_count", cx_storage::DataType::Int64),
            ]),
            vec![
                Column::from_i64(ids),
                Column::from_timestamps(dates),
                Column::from_strings(labels),
                Column::from_f64(confidences),
                Column::from_i64(counts),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(id: i64, day: i64, objects: &[&str]) -> SyntheticImage {
        SyntheticImage {
            id,
            date_taken: day * MICROS_PER_DAY,
            source: "review".into(),
            latent_objects: objects.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn store() -> ImageStore {
        let mut s = ImageStore::new();
        s.add(image(1, 10, &["boots", "person"]));
        s.add(image(2, 20, &["parka"]));
        s.add(image(3, 30, &["boots", "parka", "dog"]));
        s
    }

    #[test]
    fn date_filtering() {
        let s = store();
        let after: Vec<i64> = s.taken_after(15 * MICROS_PER_DAY).map(|i| i.id).collect();
        assert_eq!(after, vec![2, 3]);
    }

    #[test]
    fn noiseless_detector_recovers_latents() {
        let d = ObjectDetector::with_noise(
            "det",
            1,
            DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 },
        );
        let img = image(7, 1, &["boots", "dog"]);
        let out = d.detect(&img);
        let labels: Vec<&str> = out.iter().map(|d| d.label.as_str()).collect();
        assert_eq!(labels, vec!["boots", "dog"]);
        for det in &out {
            assert!((0.7..1.0).contains(&det.confidence));
        }
    }

    #[test]
    fn detection_is_deterministic_per_image() {
        let d = ObjectDetector::new("det", 1);
        let img = image(5, 1, &["a", "b", "c"]);
        assert_eq!(d.detect(&img), d.detect(&img));
        // Different seed → possibly different outcome, same structure.
        let d2 = ObjectDetector::new("det", 2);
        let _ = d2.detect(&img);
    }

    #[test]
    fn invocation_metering() {
        let s = store();
        let d = ObjectDetector::new("det", 1);
        let _ = d.detections_table(s.images()).unwrap();
        assert_eq!(d.invocations(), 3);
        // Pushdown simulation: detect only late images.
        d.reset_invocations();
        let _ = d.detections_table(s.taken_after(15 * MICROS_PER_DAY)).unwrap();
        assert_eq!(d.invocations(), 2);
    }

    #[test]
    fn detections_table_shape() {
        let s = store();
        let d = ObjectDetector::with_noise(
            "det",
            1,
            DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 },
        );
        let t = d.detections_table(s.images()).unwrap();
        assert_eq!(t.num_rows(), 6); // 2 + 1 + 3 detections
        assert_eq!(
            t.schema().names(),
            vec!["image_id", "date_taken", "label", "confidence", "object_count"]
        );
        // object_count is denormalized per image.
        let counts = t.column_by_name("object_count").unwrap();
        assert_eq!(counts.i64_values().unwrap()[0], 2);
        assert_eq!(counts.i64_values().unwrap()[5], 3);
    }

    #[test]
    fn high_miss_rate_drops_objects() {
        let d = ObjectDetector::with_noise(
            "det",
            1,
            DetectorNoise { miss_rate: 1.0, spurious_rate: 0.0 },
        );
        assert!(d.detect(&image(1, 1, &["a", "b"])).is_empty());
    }

    #[test]
    fn metadata_table_without_detection() {
        let s = store();
        let t = s.metadata_table().unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().names(), vec!["image_id", "date_taken", "source"]);
    }
}

//! Per-ISA bit-identity sweep: every mode this host can run is forced in
//! turn and the kernel contracts are checked under it (see the crate doc
//! of `cx_simd` for the contracts themselves).
//!
//! `force_mode` is process-global, so every test here serializes on one
//! mutex and restores `Native` before releasing it.

use cx_simd::{
    available_modes, convert_f16_slice, dot, dot_block, dot_block_f16, dot_block_int8, dot_f16,
    dot_int8_i32, f16_to_f32, f32_to_f16, force_mode, KernelDispatch, SimdMode,
};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes mode-forcing tests; restores `Native` on drop.
struct ModeLock(MutexGuard<'static, ()>);

impl Drop for ModeLock {
    fn drop(&mut self) {
        force_mode(SimdMode::Native).expect("native always resolves");
        let _ = &self.0;
    }
}

fn lock_modes() -> ModeLock {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let m = LOCK.get_or_init(|| Mutex::new(()));
    ModeLock(m.lock().unwrap_or_else(|p| p.into_inner()))
}

/// Deterministic pseudo-random f32s in [-1, 1) (splitmix64 core).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    fn i8(&mut self) -> i8 {
        (self.next_u64() >> 56) as u8 as i8
    }

    fn f32_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.f32()).collect()
    }

    fn i8_vec(&mut self, n: usize) -> Vec<i8> {
        (0..n).map(|_| self.i8()).collect()
    }
}

/// Tail-stressing dims: every length from 0 to past 2× the widest vector
/// width (64 f32 lanes per AVX-512 chunk pair), plus production sizes.
fn dims() -> Vec<usize> {
    let mut d: Vec<usize> = (0..=130).collect();
    d.extend([192, 256, 768]);
    d
}

#[test]
fn blocked_equals_pairwise_bitwise_under_every_mode() {
    let _guard = lock_modes();
    for mode in available_modes() {
        force_mode(mode).expect("listed mode resolves");
        let mut rng = Rng(0xC0FFEE ^ mode as u64);
        for dim in dims() {
            let stride = dim + (dim % 5); // padded and exact strides both
            let rows = 7usize;
            let query = rng.f32_vec(dim);
            let mut block = vec![0.0f32; rows * stride.max(1)];
            for r in 0..rows {
                let row = rng.f32_vec(dim);
                block[r * stride..r * stride + dim].copy_from_slice(&row);
            }
            let mut out = vec![0.0f32; rows];
            dot_block(&query, &block, stride, &mut out);
            for r in 0..rows {
                let pairwise = dot(&query, &block[r * stride..r * stride + dim]);
                assert_eq!(
                    out[r].to_bits(),
                    pairwise.to_bits(),
                    "f32 mode={} dim={dim} row={r}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn f16_blocked_equals_pairwise_and_scalar_bitwise() {
    let _guard = lock_modes();
    // Scalar reference scores, computed once under Off:
    // (dim, f16 block, query, expected scores) per tested dimension.
    type F16Case = (usize, Vec<u16>, Vec<f32>, Vec<f32>);
    let mut refs: Vec<F16Case> = Vec::new();
    let mut rng = Rng(0xF16);
    for dim in dims() {
        let rows = 5usize;
        let stride = dim + (dim % 3);
        let query = rng.f32_vec(dim);
        let mut block = vec![0u16; rows * stride.max(1)];
        for r in 0..rows {
            for c in 0..dim {
                block[r * stride + c] = f32_to_f16(rng.f32());
            }
        }
        let mut out = vec![0.0f32; rows];
        dot_block_f16(&query, &block, stride, &mut out);
        refs.push((stride, block, query, out));
    }
    // Every other mode must reproduce the scalar bits exactly (cross-ISA
    // contract: same conversion, same accumulation order).
    for mode in available_modes() {
        force_mode(mode).expect("listed mode resolves");
        for (stride, block, query, want) in &refs {
            let dim = query.len();
            let rows = want.len();
            let mut out = vec![0.0f32; rows];
            dot_block_f16(query, block, *stride, &mut out);
            for r in 0..rows {
                assert_eq!(
                    out[r].to_bits(),
                    want[r].to_bits(),
                    "f16 block mode={} dim={dim} row={r}",
                    mode.label()
                );
                let pairwise = dot_f16(&block[r * stride..r * stride + dim], query);
                assert_eq!(
                    pairwise.to_bits(),
                    want[r].to_bits(),
                    "f16 pairwise mode={} dim={dim} row={r}",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn int8_identical_across_every_mode() {
    let _guard = lock_modes();
    force_mode(SimdMode::Off).expect("off always resolves");
    let mut rng = Rng(0x1A7);
    let mut refs: Vec<(Vec<i8>, Vec<i8>, i32)> = Vec::new();
    for dim in dims() {
        let a = rng.i8_vec(dim);
        let b = rng.i8_vec(dim);
        let want = dot_int8_i32(&a, &b);
        refs.push((a, b, want));
    }
    // Extremes: saturation-prone values must stay exact on every path.
    for dim in [63usize, 64, 65, 256] {
        let a = vec![-128i8; dim];
        let b = vec![127i8; dim];
        let want = dot_int8_i32(&a, &b);
        assert_eq!(want, -128 * 127 * dim as i32);
        refs.push((a, b, want));
    }
    for mode in available_modes() {
        force_mode(mode).expect("listed mode resolves");
        for (a, b, want) in &refs {
            assert_eq!(
                dot_int8_i32(a, b),
                *want,
                "int8 pairwise mode={} dim={}",
                mode.label(),
                a.len()
            );
        }
        // Blocked ≡ pairwise under the same mode.
        let dim = 96usize;
        let stride = 100usize;
        let rows = 6usize;
        let mut rng = Rng(0xB10C ^ mode as u64);
        let query = rng.i8_vec(dim);
        let mut block = vec![0i8; rows * stride];
        for r in 0..rows {
            let row = rng.i8_vec(dim);
            block[r * stride..r * stride + dim].copy_from_slice(&row);
        }
        let mut out = vec![0i32; rows];
        dot_block_int8(&query, &block, stride, &mut out);
        for r in 0..rows {
            assert_eq!(
                out[r],
                dot_int8_i32(&query, &block[r * stride..r * stride + dim]),
                "int8 block mode={} row={r}",
                mode.label()
            );
        }
    }
}

#[test]
fn f16_conversion_handles_subnormals_identically() {
    let _guard = lock_modes();
    // Smallest subnormal, largest subnormal, smallest normal, and signed
    // zeros / infinities: hardware vcvtph2ps must match the bit-twiddler.
    let interesting: Vec<u16> = vec![
        0x0000, 0x8000, 0x0001, 0x8001, 0x03FF, 0x83FF, 0x0400, 0x8400, 0x7BFF, 0xFBFF, 0x7C00,
        0xFC00, 0x3C00, 0xBC00, 0x5640,
    ];
    force_mode(SimdMode::Off).expect("off always resolves");
    let want: Vec<u32> = interesting.iter().map(|&h| f16_to_f32(h).to_bits()).collect();
    for mode in available_modes() {
        force_mode(mode).expect("listed mode resolves");
        let mut out = vec![0.0f32; interesting.len()];
        convert_f16_slice(&interesting, &mut out);
        for (i, (&h, o)) in interesting.iter().zip(&out).enumerate() {
            assert_eq!(
                o.to_bits(),
                want[i],
                "convert mode={} half={h:#06x}",
                mode.label()
            );
            assert_eq!(f16_to_f32(h).to_bits(), want[i], "scalar entry mode={}", mode.label());
        }
    }
}

#[test]
fn zero_rows_and_empty_dims_are_inert_everywhere() {
    let _guard = lock_modes();
    for mode in available_modes() {
        force_mode(mode).expect("listed mode resolves");
        let mut out_f32: Vec<f32> = vec![];
        dot_block(&[1.0, 2.0], &[], 2, &mut out_f32);
        let mut out_f16: Vec<f32> = vec![];
        dot_block_f16(&[1.0, 2.0], &[], 2, &mut out_f16);
        let mut out_i8: Vec<i32> = vec![];
        dot_block_int8(&[1, 2], &[], 2, &mut out_i8);
        // Zero-dim vectors dot to exactly zero on every path.
        assert_eq!(dot(&[], &[]), 0.0, "mode={}", mode.label());
        assert_eq!(dot_f16(&[], &[]), 0.0, "mode={}", mode.label());
        assert_eq!(dot_int8_i32(&[], &[]), 0, "mode={}", mode.label());
    }
}

#[test]
fn off_mode_reproduces_the_scalar_ladder_bits() {
    let _guard = lock_modes();
    force_mode(SimdMode::Off).expect("off always resolves");
    assert_eq!(KernelDispatch::active().report(), "f32=scalar f16=scalar int8=scalar");
    let mut rng = Rng(0x0DD);
    for dim in dims() {
        let a = rng.f32_vec(dim);
        let b = rng.f32_vec(dim);
        // The historical dot_unrolled ladder: eight accumulators over
        // 8-element chunks, fixed reduction tree, sequential tail. CX_SIMD=off
        // must reproduce these bits so pre-dispatch results stay reproducible.
        let mut lanes = [0.0f32; 8];
        let chunks = dim / 8;
        for c in 0..chunks {
            for l in 0..8 {
                lanes[l] += a[c * 8 + l] * b[c * 8 + l];
            }
        }
        let mut want =
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        for i in chunks * 8..dim {
            want += a[i] * b[i];
        }
        assert_eq!(dot(&a, &b).to_bits(), want.to_bits(), "dim={dim}");
    }
}

//! Manual perf probe (ignored): min-of-N timing for the block kernels,
//! robust against noisy shared cores. Run with
//! `cargo test -p cx-simd --release --test perf_probe -- --ignored --nocapture`.

use cx_simd::{dot_block, dot_block_f16, dot_block_int8, f32_to_f16};
use std::time::Instant;

fn rows_f32(rows: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..rows * dim)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn min_ns(mut f: impl FnMut(), reps: usize, inner: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / inner as f64);
    }
    best
}

#[test]
#[ignore = "manual perf probe"]
fn block_kernel_floor() {
    const ROWS: usize = 1024;
    for dim in [256usize, 768] {
        let q = rows_f32(1, dim, 3);
        let block = rows_f32(ROWS, dim, 7);
        let half: Vec<u16> = block.iter().map(|&x| f32_to_f16(x)).collect();
        let bytes: Vec<i8> = block.iter().map(|&x| (x * 100.0) as i8).collect();
        let qi: Vec<i8> = q.iter().map(|&x| (x * 100.0) as i8).collect();
        let mut out = vec![0.0f32; ROWS];
        let mut outi = vec![0i32; ROWS];

        let f32_ns = min_ns(|| dot_block(&q, &block, dim, &mut out), 200, 5);
        let f16_ns = min_ns(|| dot_block_f16(&q, &half, dim, &mut out), 200, 5);
        let i8_ns = min_ns(|| dot_block_int8(&qi, &bytes, dim, &mut outi), 200, 5);
        println!(
            "dim {dim}: f32 {:.1} ns/pair, f16 {:.1} ns/pair (ratio {:.3}), int8 {:.1} ns/pair",
            f32_ns / ROWS as f64,
            f16_ns / ROWS as f64,
            f16_ns / f32_ns,
            i8_ns / ROWS as f64,
        );
    }
}

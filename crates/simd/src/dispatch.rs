//! Runtime kernel dispatch: detect once, resolve once, consult everywhere.
//!
//! The kernel families in this crate each carry several ISA-specific
//! implementations. Which one runs is decided by a [`KernelDispatch`] —
//! three path enums packed into one global `AtomicU32` — resolved exactly
//! once from CPU feature detection plus the `CX_SIMD` environment override,
//! then read with a relaxed load per *panel* call (never per pair).
//!
//! # The `CX_SIMD` override
//!
//! | value | meaning |
//! |---|---|
//! | `off` / `scalar` | portable scalar paths only (today's auto-vectorized code) |
//! | `avx2` | AVX2+FMA f32, F16C f16, `vpmovsxbw`+`vpmaddwd` int8 |
//! | `vnni` | like `avx2` but int8 through 256-bit `vpdpbusd` |
//! | `avx512` | AVX-512F f32/f16, 512-bit `vpdpbusd` int8 (best available below that) |
//! | `neon` | NEON f32/int8 (aarch64 only; f16 stays scalar) |
//! | `native` / `auto` / unset | best paths the host supports |
//!
//! An unknown value or a mode the host cannot run falls back to `native`
//! with a one-time warning on stderr — a typo in an env var must never
//! change results silently *or* take a server down.
//!
//! # Per-ISA bit-identity contract
//!
//! * **f32** paths fix their accumulation-tree order *per ISA*: blocked ≡
//!   pairwise under the same active path, but scores may differ in the
//!   last bits *across* paths (FMA fuses the multiply-add rounding).
//! * **f16** paths are bit-identical *across* ISAs: hardware `vcvtph2ps`
//!   is the same IEEE conversion the software path performs, and every
//!   path runs the same two-bank 16-lane fused multiply-add order
//!   (software `f32::mul_add` == hardware `vfmadd`).
//! * **int8** paths are bit-identical *across* ISAs: the accumulator is
//!   exact `i32`, so lane count cannot change the sum.
//!
//! Tests force modes through [`force_mode`]; see its doc for the race
//! caveat.

use std::sync::atomic::{AtomicU32, Ordering};

/// Active implementation of the f32 kernel family ([`crate::dot`],
/// [`crate::dot_block`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F32Path {
    /// Portable 8-accumulator ladder (LLVM auto-vectorizes it).
    Scalar = 0,
    /// AVX2 + FMA, two 8-lane accumulators per row.
    Avx2 = 1,
    /// AVX-512F, two 16-lane accumulators per row.
    Avx512 = 2,
    /// NEON, four 4-lane accumulators per row (aarch64).
    Neon = 3,
}

/// Active implementation of the f16 kernel family ([`crate::dot_f16`],
/// [`crate::dot_block_f16`], the slice converters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum F16Path {
    /// Software bit-twiddling conversion per element.
    Scalar = 0,
    /// Hardware `vcvtph2ps`/`vcvtps2ph` through 128/256-bit registers.
    F16cAvx2 = 1,
    /// Hardware conversion widened to 512-bit registers.
    F16cAvx512 = 2,
}

/// Active implementation of the int8 kernel family
/// ([`crate::dot_int8_i32`], [`crate::dot_block_int8`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Int8Path {
    /// Portable 4-accumulator integer ladder.
    Scalar = 0,
    /// `vpmovsxbw` + `vpmaddwd` + `vpaddd` (exact i32, AVX2).
    Avx2 = 1,
    /// 256-bit `vpdpbusd` (AVX-VNNI or AVX512-VNNI+VL).
    Vnni256 = 2,
    /// 512-bit `vpdpbusd` (AVX512-VNNI).
    Vnni512 = 3,
    /// `vmull_s8` + `vpadalq_s16` (exact i32, aarch64).
    Neon = 4,
}

impl F32Path {
    /// Short label for EXPLAIN / stats output.
    pub fn label(&self) -> &'static str {
        match self {
            F32Path::Scalar => "scalar",
            F32Path::Avx2 => "avx2",
            F32Path::Avx512 => "avx512",
            F32Path::Neon => "neon",
        }
    }
}

impl F16Path {
    /// Short label for EXPLAIN / stats output.
    pub fn label(&self) -> &'static str {
        match self {
            F16Path::Scalar => "scalar",
            F16Path::F16cAvx2 => "f16c+avx2",
            F16Path::F16cAvx512 => "f16c+avx512",
        }
    }
}

impl Int8Path {
    /// Short label for EXPLAIN / stats output.
    pub fn label(&self) -> &'static str {
        match self {
            Int8Path::Scalar => "scalar",
            Int8Path::Avx2 => "avx2",
            Int8Path::Vnni256 => "vnni256",
            Int8Path::Vnni512 => "vnni512",
            Int8Path::Neon => "neon",
        }
    }
}

/// A named dispatch preset, parsed from `CX_SIMD` or forced by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Scalar paths only.
    Off,
    /// AVX2-class paths (AVX2+FMA f32, F16C f16, `vpmaddwd` int8).
    Avx2,
    /// AVX2-class paths with 256-bit `vpdpbusd` int8.
    Vnni,
    /// AVX-512-class paths.
    Avx512,
    /// NEON paths (aarch64).
    Neon,
    /// Best available (the default).
    Native,
}

impl SimdMode {
    /// Parses a `CX_SIMD` value. Returns `None` for unrecognized strings.
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" | "none" => Some(SimdMode::Off),
            "avx2" => Some(SimdMode::Avx2),
            "vnni" => Some(SimdMode::Vnni),
            "avx512" => Some(SimdMode::Avx512),
            "neon" => Some(SimdMode::Neon),
            "native" | "auto" | "" => Some(SimdMode::Native),
            _ => None,
        }
    }

    /// The mode's canonical `CX_SIMD` spelling.
    pub fn label(&self) -> &'static str {
        match self {
            SimdMode::Off => "off",
            SimdMode::Avx2 => "avx2",
            SimdMode::Vnni => "vnni",
            SimdMode::Avx512 => "avx512",
            SimdMode::Neon => "neon",
            SimdMode::Native => "native",
        }
    }
}

/// The resolved kernel paths, one per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    /// f32 dot / blocked-kernel path.
    pub f32_path: F32Path,
    /// f16 conversion + dot path.
    pub f16_path: F16Path,
    /// int8 integer-accumulate path.
    pub int8_path: Int8Path,
}

/// Error returned by [`force_mode`] for a mode this host cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedSimdMode(pub SimdMode);

impl std::fmt::Display for UnsupportedSimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SIMD mode '{}' is not supported on this host", self.0.label())
    }
}

impl std::error::Error for UnsupportedSimdMode {}

const SCALAR: KernelDispatch = KernelDispatch {
    f32_path: F32Path::Scalar,
    f16_path: F16Path::Scalar,
    int8_path: Int8Path::Scalar,
};

/// Host CPU capabilities relevant to the kernel families.
#[derive(Debug, Clone, Copy, Default)]
struct HostCaps {
    avx2_fma: bool,
    f16c: bool,
    avx512f: bool,
    vnni256: bool,
    vnni512: bool,
    neon: bool,
}

#[cfg(target_arch = "x86_64")]
fn host_caps() -> HostCaps {
    HostCaps {
        avx2_fma: is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        f16c: is_x86_feature_detected!("f16c"),
        avx512f: is_x86_feature_detected!("avx512f"),
        vnni256: is_x86_feature_detected!("avxvnni")
            || (is_x86_feature_detected!("avx512vnni") && is_x86_feature_detected!("avx512vl")),
        vnni512: is_x86_feature_detected!("avx512vnni"),
        neon: false,
    }
}

#[cfg(target_arch = "aarch64")]
fn host_caps() -> HostCaps {
    HostCaps { neon: std::arch::is_aarch64_feature_detected!("neon"), ..HostCaps::default() }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn host_caps() -> HostCaps {
    HostCaps::default()
}

/// Resolves `mode` against host capabilities. `None` means the host cannot
/// run the mode at all (e.g. `avx512` on a pre-AVX-512 machine, `neon` on
/// x86).
fn resolve(mode: SimdMode, caps: HostCaps) -> Option<KernelDispatch> {
    match mode {
        SimdMode::Off => Some(SCALAR),
        SimdMode::Avx2 => {
            if !caps.avx2_fma {
                return None;
            }
            Some(KernelDispatch {
                f32_path: F32Path::Avx2,
                f16_path: if caps.f16c { F16Path::F16cAvx2 } else { F16Path::Scalar },
                int8_path: Int8Path::Avx2,
            })
        }
        SimdMode::Vnni => {
            if !(caps.avx2_fma && caps.vnni256) {
                return None;
            }
            Some(KernelDispatch {
                f32_path: F32Path::Avx2,
                f16_path: if caps.f16c { F16Path::F16cAvx2 } else { F16Path::Scalar },
                int8_path: Int8Path::Vnni256,
            })
        }
        SimdMode::Avx512 => {
            if !caps.avx512f {
                return None;
            }
            Some(KernelDispatch {
                f32_path: F32Path::Avx512,
                f16_path: if caps.f16c { F16Path::F16cAvx512 } else { F16Path::Scalar },
                int8_path: if caps.vnni512 {
                    Int8Path::Vnni512
                } else if caps.vnni256 {
                    Int8Path::Vnni256
                } else if caps.avx2_fma {
                    Int8Path::Avx2
                } else {
                    Int8Path::Scalar
                },
            })
        }
        SimdMode::Neon => {
            if !caps.neon {
                return None;
            }
            Some(KernelDispatch {
                f32_path: F32Path::Neon,
                // f16 stays software on aarch64: the fp16 vector-convert
                // intrinsics are not yet stable.
                f16_path: F16Path::Scalar,
                int8_path: Int8Path::Neon,
            })
        }
        SimdMode::Native => {
            let best = if caps.avx512f {
                SimdMode::Avx512
            } else if caps.avx2_fma && caps.vnni256 {
                SimdMode::Vnni
            } else if caps.avx2_fma {
                SimdMode::Avx2
            } else if caps.neon {
                SimdMode::Neon
            } else {
                SimdMode::Off
            };
            resolve(best, caps)
        }
    }
}

/// Resolves `mode` against this host's capabilities *without* touching the
/// active dispatch — the side-effect-free sibling of [`force_mode`], for
/// code (tier-selection tests, planners) that wants to reason about a mode
/// it is not running under. `None` means the host cannot run the mode.
pub fn resolve_mode(mode: SimdMode) -> Option<KernelDispatch> {
    resolve(mode, host_caps())
}

/// Every [`SimdMode`] this host can actually run, `Off` first — the set the
/// per-ISA property tests sweep.
pub fn available_modes() -> Vec<SimdMode> {
    let caps = host_caps();
    [SimdMode::Off, SimdMode::Avx2, SimdMode::Vnni, SimdMode::Avx512, SimdMode::Neon]
        .into_iter()
        .filter(|&m| resolve(m, caps).is_some())
        .collect()
}

// Packed as: byte0 = f32 path, byte1 = f16 path, byte2 = int8 path,
// byte3 = 0xA5 resolved marker (0 = not yet resolved).
static ACTIVE: AtomicU32 = AtomicU32::new(0);
const RESOLVED: u32 = 0xA5 << 24;

fn encode(d: KernelDispatch) -> u32 {
    RESOLVED | (d.f32_path as u32) | ((d.f16_path as u32) << 8) | ((d.int8_path as u32) << 16)
}

fn decode(bits: u32) -> KernelDispatch {
    let f32_path = match bits & 0xFF {
        1 => F32Path::Avx2,
        2 => F32Path::Avx512,
        3 => F32Path::Neon,
        _ => F32Path::Scalar,
    };
    let f16_path = match (bits >> 8) & 0xFF {
        1 => F16Path::F16cAvx2,
        2 => F16Path::F16cAvx512,
        _ => F16Path::Scalar,
    };
    let int8_path = match (bits >> 16) & 0xFF {
        1 => Int8Path::Avx2,
        2 => Int8Path::Vnni256,
        3 => Int8Path::Vnni512,
        4 => Int8Path::Neon,
        _ => Int8Path::Scalar,
    };
    KernelDispatch { f32_path, f16_path, int8_path }
}

fn init_from_env() -> KernelDispatch {
    let caps = host_caps();
    let requested = std::env::var("CX_SIMD").ok();
    let mode = match requested.as_deref() {
        None => SimdMode::Native,
        Some(s) => match SimdMode::parse(s) {
            Some(m) => m,
            None => {
                eprintln!(
                    "[cx_simd] unrecognized CX_SIMD value '{s}' \
                     (expected off|avx2|vnni|avx512|neon|native); using native"
                );
                SimdMode::Native
            }
        },
    };
    match resolve(mode, caps) {
        Some(d) => d,
        None => {
            eprintln!(
                "[cx_simd] CX_SIMD={} is not supported on this host; using native",
                mode.label()
            );
            resolve(SimdMode::Native, caps).unwrap_or(SCALAR)
        }
    }
}

impl KernelDispatch {
    /// The active dispatch: resolved once from CPU detection and the
    /// `CX_SIMD` override, then a relaxed atomic load. Kernels consult it
    /// once per panel call.
    #[inline]
    pub fn active() -> KernelDispatch {
        let bits = ACTIVE.load(Ordering::Relaxed);
        if bits & RESOLVED != 0 {
            return decode(bits);
        }
        let d = init_from_env();
        // A racing first call resolves to the same value; last store wins
        // harmlessly.
        ACTIVE.store(encode(d), Ordering::Relaxed);
        d
    }

    /// What `native` would resolve to on this host, ignoring the override.
    pub fn detected() -> KernelDispatch {
        resolve(SimdMode::Native, host_caps()).unwrap_or(SCALAR)
    }

    /// Whether the f16 kernels run hardware conversion (`vcvtph2ps`). The
    /// optimizer's tier selection keys off this: the software-conversion
    /// f16 path is a measured ~15× *loss* versus f32, so the f16 tier is
    /// only honest when this is true.
    pub fn f16_hardware(&self) -> bool {
        self.f16_path != F16Path::Scalar
    }

    /// One-line human-readable summary, e.g.
    /// `f32=avx512 f16=f16c+avx512 int8=vnni512`.
    pub fn report(&self) -> String {
        format!(
            "f32={} f16={} int8={}",
            self.f32_path.label(),
            self.f16_path.label(),
            self.int8_path.label()
        )
    }
}

/// Forces the active dispatch to `mode` (for tests and benchmarks), or
/// returns [`UnsupportedSimdMode`] if the host cannot run it.
///
/// Forcing is process-global: concurrent tests that *measure* kernel bits
/// must serialize around it (the in-tree suites share one mutex per test
/// binary and restore `Native` when done). Production code never calls
/// this.
pub fn force_mode(mode: SimdMode) -> Result<KernelDispatch, UnsupportedSimdMode> {
    let d = resolve(mode, host_caps()).ok_or(UnsupportedSimdMode(mode))?;
    ACTIVE.store(encode(d), Ordering::Relaxed);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_documented_values() {
        assert_eq!(SimdMode::parse("off"), Some(SimdMode::Off));
        assert_eq!(SimdMode::parse("SCALAR"), Some(SimdMode::Off));
        assert_eq!(SimdMode::parse("avx2"), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::parse("vnni"), Some(SimdMode::Vnni));
        assert_eq!(SimdMode::parse("avx512"), Some(SimdMode::Avx512));
        assert_eq!(SimdMode::parse("neon"), Some(SimdMode::Neon));
        assert_eq!(SimdMode::parse(" native "), Some(SimdMode::Native));
        assert_eq!(SimdMode::parse(""), Some(SimdMode::Native));
        assert_eq!(SimdMode::parse("sse9"), None);
    }

    #[test]
    fn encode_decode_roundtrips() {
        for f32_path in [F32Path::Scalar, F32Path::Avx2, F32Path::Avx512, F32Path::Neon] {
            for f16_path in [F16Path::Scalar, F16Path::F16cAvx2, F16Path::F16cAvx512] {
                for int8_path in [
                    Int8Path::Scalar,
                    Int8Path::Avx2,
                    Int8Path::Vnni256,
                    Int8Path::Vnni512,
                    Int8Path::Neon,
                ] {
                    let d = KernelDispatch { f32_path, f16_path, int8_path };
                    assert_eq!(decode(encode(d)), d);
                }
            }
        }
    }

    #[test]
    fn off_is_always_available_and_scalar() {
        let modes = available_modes();
        assert_eq!(modes[0], SimdMode::Off);
        assert_eq!(resolve(SimdMode::Off, host_caps()), Some(SCALAR));
        assert!(!SCALAR.f16_hardware());
    }

    #[test]
    fn native_resolves_and_reports() {
        let d = KernelDispatch::detected();
        let r = d.report();
        assert!(r.starts_with("f32="), "{r}");
        assert!(r.contains("f16="), "{r}");
        assert!(r.contains("int8="), "{r}");
    }

    #[test]
    fn unsupported_mode_is_typed() {
        // At most one of neon/avx512 can be native to any host; probing an
        // impossible one exercises the error without assuming the host ISA.
        let impossible = if cfg!(target_arch = "x86_64") { SimdMode::Neon } else { SimdMode::Avx512 };
        let err = force_mode(impossible).unwrap_err();
        assert_eq!(err, UnsupportedSimdMode(impossible));
        assert!(err.to_string().contains("not supported"));
        // Restore the default for any test that runs after us.
        force_mode(SimdMode::Native).unwrap();
    }
}

//! f32 kernel family: pairwise [`dot`] and panel [`dot_block`].
//!
//! Per-ISA bit-identity: under one active [`F32Path`], `dot_block` row `r`
//! equals `dot(query, row_r)` to the bit, because the block micro-kernels
//! replay the pairwise accumulation order per row and only interleave rows
//! for instruction-level parallelism. Across paths results may differ in
//! the last bits (lane width and FMA change rounding); the scalar path is
//! the historical `dot_unrolled` ladder, bit for bit.

use crate::dispatch::{F32Path, KernelDispatch};
use crate::{check_block, reduce8_tree};

/// Dot product of `a` and `b` on the active f32 path.
///
/// Slices of unequal length are truncated to the shorter (callers pass
/// equal lengths; the min keeps the unsafe paths in bounds regardless).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dim = a.len().min(b.len());
    match KernelDispatch::active().f32_path {
        F32Path::Scalar => dot_scalar(a, b, dim),
        #[cfg(target_arch = "x86_64")]
        F32Path::Avx2 => unsafe { x86::dot_avx2(a.as_ptr(), b.as_ptr(), dim) },
        #[cfg(target_arch = "x86_64")]
        F32Path::Avx512 => unsafe { x86::dot_avx512(a.as_ptr(), b.as_ptr(), dim) },
        #[cfg(target_arch = "aarch64")]
        F32Path::Neon => unsafe { neon::dot_neon(a.as_ptr(), b.as_ptr(), dim) },
        #[allow(unreachable_patterns)]
        _ => dot_scalar(a, b, dim),
    }
}

/// Scores `query` against `out.len()` rows of a row-major `block`
/// (`stride >= dim` floats per row), `out[r] = dot(query, row_r)` on the
/// active path.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for the rows.
pub fn dot_block(query: &[f32], block: &[f32], stride: usize, out: &mut [f32]) {
    let dim = query.len();
    if !check_block(block, stride, dim, out.len()) {
        return;
    }
    match KernelDispatch::active().f32_path {
        F32Path::Scalar => dot_block_scalar(query, block, stride, out),
        #[cfg(target_arch = "x86_64")]
        F32Path::Avx2 => unsafe { x86::dot_block_avx2(query, block, stride, out) },
        #[cfg(target_arch = "x86_64")]
        F32Path::Avx512 => unsafe { x86::dot_block_avx512(query, block, stride, out) },
        #[cfg(target_arch = "aarch64")]
        F32Path::Neon => unsafe { neon::dot_block_neon(query, block, stride, out) },
        #[allow(unreachable_patterns)]
        _ => dot_block_scalar(query, block, stride, out),
    }
}

// ---------------------------------------------------------------- scalar --

/// The historical `dot_unrolled` ladder over the first `dim` elements:
/// eight independent accumulators over 8-wide chunks, the fixed reduction
/// tree, then a sequential tail. `CX_SIMD=off` scores are these bits.
#[inline]
pub(crate) fn dot_scalar(a: &[f32], b: &[f32], dim: usize) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = dim / 8;
    for c in 0..chunks {
        let base = c * 8;
        let ca: &[f32; 8] = a[base..base + 8].try_into().expect("8-wide chunk");
        let cb: &[f32; 8] = b[base..base + 8].try_into().expect("8-wide chunk");
        for i in 0..8 {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut sum = reduce8_tree(&acc);
    for i in chunks * 8..dim {
        sum += a[i] * b[i];
    }
    sum
}

/// Rows per scalar micro-kernel pass (the historical `MICRO_ROWS`).
const SCALAR_MICRO: usize = 8;

fn dot_block_scalar(query: &[f32], block: &[f32], stride: usize, out: &mut [f32]) {
    let dim = query.len();
    let rows = out.len();
    let chunks = dim / 8;
    let mut r = 0;
    while r + SCALAR_MICRO <= rows {
        // Eight rows × eight accumulators, query chunk loaded once per pass;
        // per-row arithmetic order is exactly dot_scalar's.
        let rs: [&[f32]; SCALAR_MICRO] =
            std::array::from_fn(|k| &block[(r + k) * stride..(r + k) * stride + dim]);
        let mut acc = [[0.0f32; 8]; SCALAR_MICRO];
        for c in 0..chunks {
            let base = c * 8;
            let q: &[f32; 8] = query[base..base + 8].try_into().expect("8-wide chunk");
            for k in 0..SCALAR_MICRO {
                let x: &[f32; 8] = rs[k][base..base + 8].try_into().expect("8-wide chunk");
                for i in 0..8 {
                    acc[k][i] += q[i] * x[i];
                }
            }
        }
        for k in 0..SCALAR_MICRO {
            let mut sum = reduce8_tree(&acc[k]);
            for i in chunks * 8..dim {
                sum += query[i] * rs[k][i];
            }
            out[r + k] = sum;
        }
        r += SCALAR_MICRO;
    }
    while r < rows {
        out[r] = dot_scalar(query, &block[r * stride..r * stride + dim], dim);
        r += 1;
    }
}

// ------------------------------------------------------------------- x86 --

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::{reduce8_tree, reduce16_tree};
    use std::arch::x86_64::*;

    /// Rows per vector micro-kernel pass. Four rows × two accumulators keep
    /// eight independent FMA chains in flight without spilling on AVX2's
    /// sixteen ymm registers (4 row accum pairs + 2 query chunks + loads).
    const MICRO: usize = 4;

    /// AVX2+FMA dot: two 8-lane FMA accumulators over 16-wide chunks,
    /// lane-wise combine, the 8-lane reduction tree, sequential tail.
    ///
    /// # Safety
    /// Caller guarantees AVX2+FMA are available and both pointers are
    /// readable for `dim` floats.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_avx2(a: *const f32, b: *const f32, dim: usize) -> f32 {
        let chunks = dim / 16;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 16;
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(base)),
                _mm256_loadu_ps(b.add(base)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(base + 8)),
                _mm256_loadu_ps(b.add(base + 8)),
                acc1,
            );
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(acc0, acc1));
        let mut sum = reduce8_tree(&lanes);
        for i in chunks * 16..dim {
            sum += *a.add(i) * *b.add(i);
        }
        sum
    }

    /// # Safety
    /// AVX2+FMA available; `block` holds `out.len()` rows of `dim` floats
    /// at `stride` (checked by the safe caller).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_block_avx2(
        query: &[f32],
        block: &[f32],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 16;
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const f32; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [[_mm256_setzero_ps(); 2]; MICRO];
            for c in 0..chunks {
                let base = c * 16;
                let q0 = _mm256_loadu_ps(q.add(base));
                let q1 = _mm256_loadu_ps(q.add(base + 8));
                for k in 0..MICRO {
                    // Same per-row order as dot_avx2: acc0 fma, then acc1.
                    acc[k][0] = _mm256_fmadd_ps(q0, _mm256_loadu_ps(rowp[k].add(base)), acc[k][0]);
                    acc[k][1] =
                        _mm256_fmadd_ps(q1, _mm256_loadu_ps(rowp[k].add(base + 8)), acc[k][1]);
                }
            }
            for k in 0..MICRO {
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(acc[k][0], acc[k][1]));
                let mut sum = reduce8_tree(&lanes);
                for i in chunks * 16..dim {
                    sum += *q.add(i) * *rowp[k].add(i);
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            out[r] = dot_avx2(q, b.add(r * stride), dim);
            r += 1;
        }
    }

    /// AVX-512F dot: two 16-lane FMA accumulators over 32-wide chunks,
    /// lane-wise combine, the 16-lane reduction tree, sequential tail.
    ///
    /// # Safety
    /// AVX-512F available; pointers readable for `dim` floats.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot_avx512(a: *const f32, b: *const f32, dim: usize) -> f32 {
        let chunks = dim / 32;
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            acc0 = _mm512_fmadd_ps(
                _mm512_loadu_ps(a.add(base)),
                _mm512_loadu_ps(b.add(base)),
                acc0,
            );
            acc1 = _mm512_fmadd_ps(
                _mm512_loadu_ps(a.add(base + 16)),
                _mm512_loadu_ps(b.add(base + 16)),
                acc1,
            );
        }
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), _mm512_add_ps(acc0, acc1));
        let mut sum = reduce16_tree(&lanes);
        for i in chunks * 32..dim {
            sum += *a.add(i) * *b.add(i);
        }
        sum
    }

    /// # Safety
    /// AVX-512F available; block layout checked by the safe caller.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot_block_avx512(
        query: &[f32],
        block: &[f32],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 32;
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const f32; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [[_mm512_setzero_ps(); 2]; MICRO];
            for c in 0..chunks {
                let base = c * 32;
                let q0 = _mm512_loadu_ps(q.add(base));
                let q1 = _mm512_loadu_ps(q.add(base + 16));
                for k in 0..MICRO {
                    acc[k][0] = _mm512_fmadd_ps(q0, _mm512_loadu_ps(rowp[k].add(base)), acc[k][0]);
                    acc[k][1] =
                        _mm512_fmadd_ps(q1, _mm512_loadu_ps(rowp[k].add(base + 16)), acc[k][1]);
                }
            }
            for k in 0..MICRO {
                let mut lanes = [0.0f32; 16];
                _mm512_storeu_ps(lanes.as_mut_ptr(), _mm512_add_ps(acc[k][0], acc[k][1]));
                let mut sum = reduce16_tree(&lanes);
                for i in chunks * 32..dim {
                    sum += *q.add(i) * *rowp[k].add(i);
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            out[r] = dot_avx512(q, b.add(r * stride), dim);
            r += 1;
        }
    }
}

// ------------------------------------------------------------------ neon --

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    const MICRO: usize = 4;

    /// NEON dot: four 4-lane FMLA accumulators over 16-wide chunks,
    /// pairwise lane combine, then the 4-lane tree `(l0+l1)+(l2+l3)`.
    ///
    /// # Safety
    /// NEON available (always on aarch64); pointers readable for `dim`
    /// floats.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_neon(a: *const f32, b: *const f32, dim: usize) -> f32 {
        let chunks = dim / 16;
        let mut acc = [vdupq_n_f32(0.0); 4];
        for c in 0..chunks {
            let base = c * 16;
            for j in 0..4 {
                acc[j] = vfmaq_f32(
                    acc[j],
                    vld1q_f32(a.add(base + j * 4)),
                    vld1q_f32(b.add(base + j * 4)),
                );
            }
        }
        let v = vaddq_f32(vaddq_f32(acc[0], acc[1]), vaddq_f32(acc[2], acc[3]));
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), v);
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in chunks * 16..dim {
            sum += *a.add(i) * *b.add(i);
        }
        sum
    }

    /// # Safety
    /// NEON available; block layout checked by the safe caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_block_neon(
        query: &[f32],
        block: &[f32],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 16;
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const f32; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [[vdupq_n_f32(0.0); 4]; MICRO];
            for c in 0..chunks {
                let base = c * 16;
                let qv = [
                    vld1q_f32(q.add(base)),
                    vld1q_f32(q.add(base + 4)),
                    vld1q_f32(q.add(base + 8)),
                    vld1q_f32(q.add(base + 12)),
                ];
                for k in 0..MICRO {
                    for j in 0..4 {
                        acc[k][j] = vfmaq_f32(acc[k][j], qv[j], vld1q_f32(rowp[k].add(base + j * 4)));
                    }
                }
            }
            for k in 0..MICRO {
                let v = vaddq_f32(
                    vaddq_f32(acc[k][0], acc[k][1]),
                    vaddq_f32(acc[k][2], acc[k][3]),
                );
                let mut lanes = [0.0f32; 4];
                vst1q_f32(lanes.as_mut_ptr(), v);
                let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
                for i in chunks * 16..dim {
                    sum += *q.add(i) * *rowp[k].add(i);
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            out[r] = dot_neon(q, b.add(r * stride), dim);
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, seed: u64) -> Vec<f32> {
        // SplitMix64-ish without depending on cx_embed.
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                let u = ((z ^ (z >> 31)) >> 40) as f32 / (1u64 << 24) as f32;
                u * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn scalar_block_rows_match_scalar_pairwise_bitwise() {
        for (dim, stride) in [(0, 4), (1, 8), (7, 8), (8, 8), (13, 16), (100, 104)] {
            let q = vecs(dim, 1);
            let rows = 11usize;
            let block = vecs(rows * stride, 2);
            let mut out = vec![0.0f32; rows];
            dot_block_scalar(&q, &block, stride, &mut out);
            for r in 0..rows {
                let exact = dot_scalar(&q, &block[r * stride..r * stride + dim], dim);
                assert_eq!(out[r].to_bits(), exact.to_bits(), "dim {dim} row {r}");
            }
        }
    }

    #[test]
    fn active_path_block_matches_active_pairwise_bitwise() {
        // Whatever path resolved on this host, blocked ≡ pairwise.
        for dim in [31, 32, 64, 96, 100] {
            let q = vecs(dim, 3);
            let rows = 13usize;
            let block = vecs(rows * dim, 4);
            let mut out = vec![0.0f32; rows];
            dot_block(&q, &block, dim, &mut out);
            for r in 0..rows {
                let exact = dot(&q, &block[r * dim..(r + 1) * dim]);
                assert_eq!(out[r].to_bits(), exact.to_bits(), "dim {dim} row {r}");
            }
        }
    }

    #[test]
    fn active_path_close_to_scalar() {
        for dim in [33, 256] {
            let a = vecs(dim, 7);
            let b = vecs(dim, 8);
            let fast = dot(&a, &b);
            let exact = dot_scalar(&a, &b, dim);
            assert!((fast - exact).abs() < 1e-3, "dim {dim}: {fast} vs {exact}");
        }
    }
}

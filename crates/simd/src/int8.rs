//! int8 kernel family: symmetric int8 rows accumulated in exact `i32`.
//!
//! Bit-identity is unconditional across ISAs: every path sums the same
//! integer products into an exact 32-bit accumulator, and integer addition
//! is associative — lane count and schedule cannot change the result. The
//! callers apply `q_scale * row_scale` afterwards, so the one float
//! multiply happens in one fixed place.
//!
//! The VNNI paths need one trick: `vpdpbusd` multiplies *unsigned* bytes
//! by signed bytes. We bias the row operand (`row ^ 0x80` reinterprets
//! `row + 128` as u8) and subtract the exact correction `128 * Σ query`
//! over the SIMD-covered prefix afterwards — all in i32, so exactness is
//! preserved. The panel kernel hoists that query sum out of the row loop.

use crate::check_block;
use crate::dispatch::{Int8Path, KernelDispatch};

/// Exact i32 accumulation of `Σ a[i] * b[i]` on the active int8 path.
/// Callers apply scales afterwards. Unequal lengths truncate to the
/// shorter.
#[inline]
pub fn dot_int8_i32(a: &[i8], b: &[i8]) -> i32 {
    let dim = a.len().min(b.len());
    match KernelDispatch::active().int8_path {
        Int8Path::Scalar => dot_scalar(a, b, dim),
        #[cfg(target_arch = "x86_64")]
        Int8Path::Avx2 => unsafe { x86::dot_avx2(a.as_ptr(), b.as_ptr(), dim) },
        #[cfg(target_arch = "x86_64")]
        Int8Path::Vnni256 => unsafe {
            if x86::vnni256_evex() {
                x86::dot_vnni256_evex(a.as_ptr(), b.as_ptr(), dim)
            } else {
                x86::dot_vnni256_avx(a.as_ptr(), b.as_ptr(), dim)
            }
        },
        #[cfg(target_arch = "x86_64")]
        Int8Path::Vnni512 => unsafe { x86::dot_vnni512(a.as_ptr(), b.as_ptr(), dim) },
        #[cfg(target_arch = "aarch64")]
        Int8Path::Neon => unsafe { neon::dot_neon(a.as_ptr(), b.as_ptr(), dim) },
        #[allow(unreachable_patterns)]
        _ => dot_scalar(a, b, dim),
    }
}

/// Integer panel kernel: `out[r] = Σ query[i] * row_r[i]` in exact i32 for
/// `out.len()` int8 rows stored row-major at `stride` bytes per row, on
/// the active path. Bit-identical to pairwise [`dot_int8_i32`] always.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for the rows.
pub fn dot_block_int8(query: &[i8], block: &[i8], stride: usize, out: &mut [i32]) {
    let dim = query.len();
    if !check_block(block, stride, dim, out.len()) {
        return;
    }
    match KernelDispatch::active().int8_path {
        Int8Path::Scalar => dot_block_scalar(query, block, stride, out),
        #[cfg(target_arch = "x86_64")]
        Int8Path::Avx2 => unsafe { x86::dot_block_avx2(query, block, stride, out) },
        #[cfg(target_arch = "x86_64")]
        Int8Path::Vnni256 => unsafe {
            if x86::vnni256_evex() {
                x86::dot_block_vnni256_evex(query, block, stride, out)
            } else {
                x86::dot_block_vnni256_avx(query, block, stride, out)
            }
        },
        #[cfg(target_arch = "x86_64")]
        Int8Path::Vnni512 => unsafe { x86::dot_block_vnni512(query, block, stride, out) },
        #[cfg(target_arch = "aarch64")]
        Int8Path::Neon => unsafe { neon::dot_block_neon(query, block, stride, out) },
        #[allow(unreachable_patterns)]
        _ => dot_block_scalar(query, block, stride, out),
    }
}

// ---------------------------------------------------------------- scalar --

/// The historical `acc_int8` ladder: 4-wide unroll so LLVM widens it.
#[inline]
pub(crate) fn dot_scalar(a: &[i8], b: &[i8], dim: usize) -> i32 {
    let mut acc = [0i32; 4];
    let chunks = dim / 4;
    for c in 0..chunks {
        let base = c * 4;
        for i in 0..4 {
            acc[i] += a[base + i] as i32 * b[base + i] as i32;
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..dim {
        s += a[i] as i32 * b[i] as i32;
    }
    s
}

const SCALAR_MICRO: usize = 4;

fn dot_block_scalar(query: &[i8], block: &[i8], stride: usize, out: &mut [i32]) {
    let dim = query.len();
    let rows = out.len();
    let chunks = dim / 4;
    let mut r = 0;
    while r + SCALAR_MICRO <= rows {
        let rs: [&[i8]; SCALAR_MICRO] =
            std::array::from_fn(|k| &block[(r + k) * stride..(r + k) * stride + dim]);
        let mut acc = [[0i32; 4]; SCALAR_MICRO];
        for c in 0..chunks {
            let base = c * 4;
            for k in 0..SCALAR_MICRO {
                for i in 0..4 {
                    acc[k][i] += query[base + i] as i32 * rs[k][base + i] as i32;
                }
            }
        }
        for k in 0..SCALAR_MICRO {
            let mut s = (acc[k][0] + acc[k][1]) + (acc[k][2] + acc[k][3]);
            for i in chunks * 4..dim {
                s += query[i] as i32 * rs[k][i] as i32;
            }
            out[r + k] = s;
        }
        r += SCALAR_MICRO;
    }
    while r < rows {
        out[r] = dot_scalar(query, &block[r * stride..r * stride + dim], dim);
        r += 1;
    }
}

// ------------------------------------------------------------------- x86 --

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    const MICRO: usize = 4;

    /// Whether the 256-bit `vpdpbusd` should use the EVEX-encoded
    /// AVX512-VNNI+VL intrinsic (vs the VEX-encoded AVX-VNNI one). Both
    /// compute identical results; they are distinct intrinsics in
    /// `std::arch`, so the flavor is picked once at first use.
    pub(super) fn vnni256_evex() -> bool {
        static EVEX: OnceLock<bool> = OnceLock::new();
        *EVEX.get_or_init(|| {
            is_x86_feature_detected!("avx512vnni") && is_x86_feature_detected!("avx512vl")
        })
    }

    #[inline]
    unsafe fn hsum256_epi32(v: __m256i) -> i32 {
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().sum()
    }

    /// `vpmovsxbw` + `vpmaddwd`: widen both operands to i16, multiply-add
    /// adjacent pairs into i32 lanes. Exact at every step.
    ///
    /// # Safety
    /// AVX2 available; pointers readable for `dim` bytes.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(a: *const i8, b: *const i8, dim: usize) -> i32 {
        let chunks = dim / 16;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(c * 16) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(c * 16) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        }
        let mut sum = hsum256_epi32(acc);
        for i in chunks * 16..dim {
            sum += *a.add(i) as i32 * *b.add(i) as i32;
        }
        sum
    }

    /// # Safety
    /// AVX2 available; block layout checked by the safe caller.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_block_avx2(
        query: &[i8],
        block: &[i8],
        stride: usize,
        out: &mut [i32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 16;
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const i8; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [_mm256_setzero_si256(); MICRO];
            for c in 0..chunks {
                // The widened query chunk is computed once and reused by
                // all four rows — the hoist the scalar path can't express.
                let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(q.add(c * 16) as *const __m128i));
                for k in 0..MICRO {
                    let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        rowp[k].add(c * 16) as *const __m128i
                    ));
                    acc[k] = _mm256_add_epi32(acc[k], _mm256_madd_epi16(va, vb));
                }
            }
            for k in 0..MICRO {
                let mut sum = hsum256_epi32(acc[k]);
                for i in chunks * 16..dim {
                    sum += *q.add(i) as i32 * *rowp[k].add(i) as i32;
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            out[r] = dot_avx2(q, b.add(r * stride), dim);
            r += 1;
        }
    }

    // The two 256-bit vpdpbusd flavors share one body: only the intrinsic
    // name and the required target features differ.
    macro_rules! vnni256_kernels {
        ($dot:ident, $block:ident, $dpbusd:ident, $feat:literal) => {
            /// 256-bit `vpdpbusd` with the row-bias trick (see module doc).
            ///
            /// # Safety
            /// The features named in `target_feature` are available;
            /// pointers readable for `dim` bytes.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $dot(a: *const i8, b: *const i8, dim: usize) -> i32 {
                let chunks = dim / 32;
                let sign = _mm256_set1_epi8(-128);
                let ones = _mm256_set1_epi8(1);
                let mut acc = _mm256_setzero_si256();
                let mut qsum = _mm256_setzero_si256();
                for c in 0..chunks {
                    let va = _mm256_loadu_si256(a.add(c * 32) as *const __m256i);
                    let vb = _mm256_loadu_si256(b.add(c * 32) as *const __m256i);
                    // (row + 128) as u8 × query as i8, exact in i32.
                    let vbu = _mm256_xor_si256(vb, sign);
                    acc = $dpbusd(acc, vbu, va);
                    qsum = $dpbusd(qsum, ones, va);
                }
                let mut sum = hsum256_epi32(acc) - 128 * hsum256_epi32(qsum);
                for i in chunks * 32..dim {
                    sum += *a.add(i) as i32 * *b.add(i) as i32;
                }
                sum
            }

            /// # Safety
            /// Features available; block layout checked by the safe caller.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $block(
                query: &[i8],
                block: &[i8],
                stride: usize,
                out: &mut [i32],
            ) {
                let dim = query.len();
                let rows = out.len();
                let q = query.as_ptr();
                let b = block.as_ptr();
                let chunks = dim / 32;
                // The bias correction 128·Σq over the SIMD prefix depends
                // only on the query: hoisted out of the row loop.
                let mut qsum: i32 = 0;
                for i in 0..chunks * 32 {
                    qsum += *q.add(i) as i32;
                }
                let correction = 128 * qsum;
                let sign = _mm256_set1_epi8(-128);
                let mut r = 0;
                while r + MICRO <= rows {
                    let rowp: [*const i8; MICRO] =
                        std::array::from_fn(|k| b.add((r + k) * stride));
                    let mut acc = [_mm256_setzero_si256(); MICRO];
                    for c in 0..chunks {
                        let va = _mm256_loadu_si256(q.add(c * 32) as *const __m256i);
                        for k in 0..MICRO {
                            let vb =
                                _mm256_loadu_si256(rowp[k].add(c * 32) as *const __m256i);
                            acc[k] = $dpbusd(acc[k], _mm256_xor_si256(vb, sign), va);
                        }
                    }
                    for k in 0..MICRO {
                        let mut sum = hsum256_epi32(acc[k]) - correction;
                        for i in chunks * 32..dim {
                            sum += *q.add(i) as i32 * *rowp[k].add(i) as i32;
                        }
                        out[r + k] = sum;
                    }
                    r += MICRO;
                }
                while r < rows {
                    let rowp = b.add(r * stride);
                    let mut acc = _mm256_setzero_si256();
                    for c in 0..chunks {
                        let va = _mm256_loadu_si256(q.add(c * 32) as *const __m256i);
                        let vb = _mm256_loadu_si256(rowp.add(c * 32) as *const __m256i);
                        acc = $dpbusd(acc, _mm256_xor_si256(vb, sign), va);
                    }
                    let mut sum = hsum256_epi32(acc) - correction;
                    for i in chunks * 32..dim {
                        sum += *q.add(i) as i32 * *rowp.add(i) as i32;
                    }
                    out[r] = sum;
                    r += 1;
                }
            }
        };
    }

    vnni256_kernels!(dot_vnni256_avx, dot_block_vnni256_avx, _mm256_dpbusd_avx_epi32, "avxvnni");
    vnni256_kernels!(
        dot_vnni256_evex,
        dot_block_vnni256_evex,
        _mm256_dpbusd_epi32,
        "avx512vnni,avx512vl"
    );

    #[inline]
    unsafe fn hsum512_epi32(v: __m512i) -> i32 {
        let mut lanes = [0i32; 16];
        _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, v);
        lanes.iter().sum()
    }

    /// 512-bit `vpdpbusd` with the row-bias trick.
    ///
    /// # Safety
    /// AVX-512F+VNNI available; pointers readable for `dim` bytes.
    #[target_feature(enable = "avx512f,avx512vnni")]
    pub(super) unsafe fn dot_vnni512(a: *const i8, b: *const i8, dim: usize) -> i32 {
        let chunks = dim / 64;
        let sign = _mm512_set1_epi8(-128);
        let ones = _mm512_set1_epi8(1);
        let mut acc = _mm512_setzero_si512();
        let mut qsum = _mm512_setzero_si512();
        for c in 0..chunks {
            let va = _mm512_loadu_si512(a.add(c * 64) as *const __m512i);
            let vb = _mm512_loadu_si512(b.add(c * 64) as *const __m512i);
            acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(vb, sign), va);
            qsum = _mm512_dpbusd_epi32(qsum, ones, va);
        }
        let mut sum = hsum512_epi32(acc) - 128 * hsum512_epi32(qsum);
        for i in chunks * 64..dim {
            sum += *a.add(i) as i32 * *b.add(i) as i32;
        }
        sum
    }

    /// # Safety
    /// AVX-512F+VNNI available; block layout checked by the safe caller.
    #[target_feature(enable = "avx512f,avx512vnni")]
    pub(super) unsafe fn dot_block_vnni512(
        query: &[i8],
        block: &[i8],
        stride: usize,
        out: &mut [i32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 64;
        let mut qsum: i32 = 0;
        for i in 0..chunks * 64 {
            qsum += *q.add(i) as i32;
        }
        let correction = 128 * qsum;
        let sign = _mm512_set1_epi8(-128);
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const i8; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [_mm512_setzero_si512(); MICRO];
            for c in 0..chunks {
                let va = _mm512_loadu_si512(q.add(c * 64) as *const __m512i);
                for k in 0..MICRO {
                    let vb = _mm512_loadu_si512(rowp[k].add(c * 64) as *const __m512i);
                    acc[k] = _mm512_dpbusd_epi32(acc[k], _mm512_xor_si512(vb, sign), va);
                }
            }
            for k in 0..MICRO {
                let mut sum = hsum512_epi32(acc[k]) - correction;
                for i in chunks * 64..dim {
                    sum += *q.add(i) as i32 * *rowp[k].add(i) as i32;
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            let rowp = b.add(r * stride);
            let mut acc = _mm512_setzero_si512();
            for c in 0..chunks {
                let va = _mm512_loadu_si512(q.add(c * 64) as *const __m512i);
                let vb = _mm512_loadu_si512(rowp.add(c * 64) as *const __m512i);
                acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(vb, sign), va);
            }
            let mut sum = hsum512_epi32(acc) - correction;
            for i in chunks * 64..dim {
                sum += *q.add(i) as i32 * *rowp.add(i) as i32;
            }
            out[r] = sum;
            r += 1;
        }
    }
}

// ------------------------------------------------------------------ neon --

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    const MICRO: usize = 4;

    /// `vmull_s8` (i8×i8 → i16) + `vpadalq_s16` (pairwise widen-add into
    /// i32). Exact at every step.
    ///
    /// # Safety
    /// NEON available; pointers readable for `dim` bytes.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_neon(a: *const i8, b: *const i8, dim: usize) -> i32 {
        let chunks = dim / 16;
        let mut acc = vdupq_n_s32(0);
        for c in 0..chunks {
            let va = vld1q_s8(a.add(c * 16));
            let vb = vld1q_s8(b.add(c * 16));
            acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
            acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
        }
        let mut sum = vaddvq_s32(acc);
        for i in chunks * 16..dim {
            sum += *a.add(i) as i32 * *b.add(i) as i32;
        }
        sum
    }

    /// # Safety
    /// NEON available; block layout checked by the safe caller.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_block_neon(
        query: &[i8],
        block: &[i8],
        stride: usize,
        out: &mut [i32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 16;
        let mut r = 0;
        while r + MICRO <= rows {
            let rowp: [*const i8; MICRO] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [vdupq_n_s32(0); MICRO];
            for c in 0..chunks {
                let va = vld1q_s8(q.add(c * 16));
                let (lo, hi) = (vget_low_s8(va), vget_high_s8(va));
                for k in 0..MICRO {
                    let vb = vld1q_s8(rowp[k].add(c * 16));
                    acc[k] = vpadalq_s16(acc[k], vmull_s8(lo, vget_low_s8(vb)));
                    acc[k] = vpadalq_s16(acc[k], vmull_s8(hi, vget_high_s8(vb)));
                }
            }
            for k in 0..MICRO {
                let mut sum = vaddvq_s32(acc[k]);
                for i in chunks * 16..dim {
                    sum += *q.add(i) as i32 * *rowp[k].add(i) as i32;
                }
                out[r + k] = sum;
            }
            r += MICRO;
        }
        while r < rows {
            out[r] = dot_neon(q, b.add(r * stride), dim);
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i8_row(n: usize, seed: u64) -> Vec<i8> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                ((s >> 33) as i64 % 255 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn active_path_matches_scalar_exactly() {
        for dim in [0, 1, 3, 15, 16, 31, 32, 33, 63, 64, 65, 100, 257] {
            let a = i8_row(dim, 1);
            let b = i8_row(dim, 2);
            assert_eq!(dot_int8_i32(&a, &b), dot_scalar(&a, &b, dim), "dim {dim}");
        }
    }

    #[test]
    fn extreme_values_stay_exact() {
        // -127·-127 across a full vector plus mixed signs in the tail.
        for dim in [64, 65, 96, 127] {
            let a = vec![-127i8; dim];
            let mut b = vec![-127i8; dim];
            b[dim - 1] = 127;
            let expect: i32 =
                a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_int8_i32(&a, &b), expect, "dim {dim}");
        }
    }

    #[test]
    fn block_matches_pairwise_exactly() {
        for (dim, stride) in [(1, 8), (7, 8), (32, 32), (33, 40), (100, 104)] {
            let q = i8_row(dim, 3);
            let rows = 11usize;
            let block = i8_row(rows * stride, 4);
            let mut out = vec![0i32; rows];
            dot_block_int8(&q, &block, stride, &mut out);
            for r in 0..rows {
                let row = &block[r * stride..r * stride + dim];
                let exact: i32 = q.iter().zip(row).map(|(&x, &y)| x as i32 * y as i32).sum();
                assert_eq!(out[r], exact, "dim {dim} row {r}");
            }
        }
    }
}

//! f16 kernel family: IEEE binary16 rows scored against an f32 query.
//!
//! Bit-identity is *cross-ISA* here, not per-ISA: every path — scalar
//! software conversion, F16C through 256-bit registers, F16C through
//! 512-bit registers — computes the same bits for NaN-free data. Two facts
//! make that possible:
//!
//! 1. `vcvtph2ps` performs exactly the IEEE binary16 → binary32 conversion
//!    the software bit-twiddling path does (every half-precision value,
//!    subnormals included, is exactly representable in f32; the only
//!    divergence is sNaN payload quieting, and embeddings are NaN-free).
//! 2. All paths fix one accumulation order: two banks of sixteen
//!    independent lanes advanced by *fused* multiply-add — the scalar
//!    path's [`f32::mul_add`] is the same single-rounding IEEE operation
//!    the `vfmadd` units perform — then a lanewise bank merge, the shared
//!    16-lane reduction tree, and a sequential fused tail.
//!
//! So `CX_SIMD=off` and hardware runs score quantized panels identically —
//! the property tests assert it — and the tier choice never changes
//! results, only speed. The two banks exist for speed alone: a single
//! accumulator would serialize the adds behind FP latency and leave the
//! hardware path slower than f32 at cache-resident sizes.

use crate::dispatch::{F16Path, KernelDispatch};
use crate::{check_block, reduce16_tree};

/// Converts an `f32` to IEEE-754 binary16 bits (round-to-nearest-even),
/// handling subnormals, infinities and NaN. The *write* path of the f16
/// tier stays software on every ISA so stored panels are host-independent.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let nan_bit = if frac != 0 { 0x200 } else { 0 };
        return sign | 0x7C00 | nan_bit | ((frac >> 13) as u16 & 0x3FF);
    }

    // Re-bias: f32 bias 127 -> f16 bias 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if new_exp <= 0 {
        // Subnormal or zero.
        if new_exp < -10 {
            return sign; // Rounds to zero.
        }
        let mantissa = frac | 0x80_0000; // implicit leading 1
        let shift = 14 - new_exp;
        let half = 1u32 << (shift - 1);
        let rounded = (mantissa + half) >> shift;
        return sign | rounded as u16;
    }

    // Normal case with round-to-nearest-even on the dropped 13 bits.
    let mut out = ((new_exp as u32) << 10) | (frac >> 13);
    let round_bits = frac & 0x1FFF;
    if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) == 1) {
        out += 1; // may carry into exponent, which is correct behaviour
    }
    sign | out as u16
}

/// Converts IEEE-754 binary16 bits to `f32` (software path; bit-identical
/// to `vcvtph2ps` for every non-NaN input).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x3FF) as u32;

    let out = if exp == 0 {
        if frac == 0 {
            sign // +-0
        } else {
            // Subnormal: normalize.
            let mut e = 0i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            let f = f & 0x3FF;
            sign | (((e + 113) as u32) << 23) | (f << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (frac << 13) // Inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Dot of f16 row bits against an f32 query on the active f16 path.
///
/// Slices of unequal length are truncated to the shorter.
#[inline]
pub fn dot_f16(row: &[u16], query: &[f32]) -> f32 {
    let dim = row.len().min(query.len());
    match KernelDispatch::active().f16_path {
        F16Path::Scalar => dot_f16_scalar(row, query, dim),
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx2 => unsafe { x86::dot_f16c_avx2(row.as_ptr(), query.as_ptr(), dim) },
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx512 => unsafe { x86::dot_f16c_avx512(row.as_ptr(), query.as_ptr(), dim) },
        #[allow(unreachable_patterns)]
        _ => dot_f16_scalar(row, query, dim),
    }
}

/// Scores `query` against `out.len()` f16 rows stored row-major in `block`
/// at `stride` half-floats per row: `out[r] = dot(query, dequant(row_r))`,
/// bit-identical to pairwise [`dot_f16`] on every path.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for the rows.
pub fn dot_block_f16(query: &[f32], block: &[u16], stride: usize, out: &mut [f32]) {
    let dim = query.len();
    if !check_block(block, stride, dim, out.len()) {
        return;
    }
    match KernelDispatch::active().f16_path {
        F16Path::Scalar => dot_block_f16_scalar(query, block, stride, out),
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx2 => unsafe { x86::dot_block_f16c_avx2(query, block, stride, out) },
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx512 => unsafe { x86::dot_block_f16c_avx512(query, block, stride, out) },
        #[allow(unreachable_patterns)]
        _ => dot_block_f16_scalar(query, block, stride, out),
    }
}

/// Converts a slice of f16 bits to f32 (hardware `vcvtph2ps` when active,
/// software otherwise — same bits either way for non-NaN input). `dst` is
/// filled up to the shorter of the two lengths.
pub fn convert_f16_slice(src: &[u16], dst: &mut [f32]) {
    let n = src.len().min(dst.len());
    match KernelDispatch::active().f16_path {
        F16Path::Scalar => convert_scalar(src, dst, n),
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx2 => unsafe { x86::convert_f16c_avx2(src.as_ptr(), dst.as_mut_ptr(), n) },
        #[cfg(target_arch = "x86_64")]
        F16Path::F16cAvx512 => unsafe {
            x86::convert_f16c_avx512(src.as_ptr(), dst.as_mut_ptr(), n)
        },
        #[allow(unreachable_patterns)]
        _ => convert_scalar(src, dst, n),
    }
}

// ---------------------------------------------------------------- scalar --

fn convert_scalar(src: &[u16], dst: &mut [f32], n: usize) {
    for i in 0..n {
        dst[i] = f16_to_f32(src[i]);
    }
}

/// The shared accumulation order, in software: 32-element chunks feeding
/// two 16-lane fused-multiply-add banks, a trailing 16-element half-chunk
/// into bank 0, a lanewise bank merge, the 16-lane tree, and a fused
/// sequential tail.
#[inline]
pub(crate) fn dot_f16_scalar(row: &[u16], query: &[f32], dim: usize) -> f32 {
    let mut acc0 = [0.0f32; 16];
    let mut acc1 = [0.0f32; 16];
    let chunks = dim / 32;
    for c in 0..chunks {
        let base = c * 32;
        for i in 0..16 {
            acc0[i] = f16_to_f32(row[base + i]).mul_add(query[base + i], acc0[i]);
            acc1[i] = f16_to_f32(row[base + 16 + i]).mul_add(query[base + 16 + i], acc1[i]);
        }
    }
    let mut done = chunks * 32;
    if dim - done >= 16 {
        for i in 0..16 {
            acc0[i] = f16_to_f32(row[done + i]).mul_add(query[done + i], acc0[i]);
        }
        done += 16;
    }
    let mut lanes = [0.0f32; 16];
    for i in 0..16 {
        lanes[i] = acc0[i] + acc1[i];
    }
    let mut sum = reduce16_tree(&lanes);
    for i in done..dim {
        sum = f16_to_f32(row[i]).mul_add(query[i], sum);
    }
    sum
}

/// Rows per scalar pass: four rows share the query chunk (the historical
/// code re-sliced the query per row inside `dot_f16`).
const SCALAR_MICRO: usize = 4;

fn dot_block_f16_scalar(query: &[f32], block: &[u16], stride: usize, out: &mut [f32]) {
    let dim = query.len();
    let rows = out.len();
    let chunks = dim / 32;
    let mut r = 0;
    while r + SCALAR_MICRO <= rows {
        let rs: [&[u16]; SCALAR_MICRO] =
            std::array::from_fn(|k| &block[(r + k) * stride..(r + k) * stride + dim]);
        let mut acc0 = [[0.0f32; 16]; SCALAR_MICRO];
        let mut acc1 = [[0.0f32; 16]; SCALAR_MICRO];
        for c in 0..chunks {
            let base = c * 32;
            let q: &[f32; 32] = query[base..base + 32].try_into().expect("32-wide chunk");
            for k in 0..SCALAR_MICRO {
                let x: &[u16; 32] = rs[k][base..base + 32].try_into().expect("32-wide chunk");
                for i in 0..16 {
                    acc0[k][i] = f16_to_f32(x[i]).mul_add(q[i], acc0[k][i]);
                    acc1[k][i] = f16_to_f32(x[16 + i]).mul_add(q[16 + i], acc1[k][i]);
                }
            }
        }
        let mut done = chunks * 32;
        if dim - done >= 16 {
            for k in 0..SCALAR_MICRO {
                for i in 0..16 {
                    acc0[k][i] = f16_to_f32(rs[k][done + i]).mul_add(query[done + i], acc0[k][i]);
                }
            }
            done += 16;
        }
        for k in 0..SCALAR_MICRO {
            let mut lanes = [0.0f32; 16];
            for i in 0..16 {
                lanes[i] = acc0[k][i] + acc1[k][i];
            }
            let mut sum = reduce16_tree(&lanes);
            for i in done..dim {
                sum = f16_to_f32(rs[k][i]).mul_add(query[i], sum);
            }
            out[r + k] = sum;
        }
        r += SCALAR_MICRO;
    }
    while r < rows {
        out[r] = dot_f16_scalar(&block[r * stride..r * stride + dim], query, dim);
        r += 1;
    }
}

// ------------------------------------------------------------------- x86 --

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::f16_to_f32;
    use crate::reduce16_tree;
    use std::arch::x86_64::*;

    /// F16C through 256-bit registers. Bank 0 lives in two ymm registers
    /// (lanes 0..8 and 8..16), bank 1 likewise — the exact lane mapping of
    /// the scalar path, advanced by `vfmadd` (the scalar path's
    /// `f32::mul_add` is the same fused operation).
    ///
    /// # Safety
    /// AVX2+FMA+F16C available; pointers readable for `dim` elements.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn dot_f16c_avx2(row: *const u16, query: *const f32, dim: usize) -> f32 {
        let chunks = dim / 32;
        let mut a0lo = _mm256_setzero_ps();
        let mut a0hi = _mm256_setzero_ps();
        let mut a1lo = _mm256_setzero_ps();
        let mut a1hi = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            let h0 = _mm_loadu_si128(row.add(base) as *const __m128i);
            let h1 = _mm_loadu_si128(row.add(base + 8) as *const __m128i);
            let h2 = _mm_loadu_si128(row.add(base + 16) as *const __m128i);
            let h3 = _mm_loadu_si128(row.add(base + 24) as *const __m128i);
            a0lo = _mm256_fmadd_ps(_mm256_cvtph_ps(h0), _mm256_loadu_ps(query.add(base)), a0lo);
            a0hi = _mm256_fmadd_ps(_mm256_cvtph_ps(h1), _mm256_loadu_ps(query.add(base + 8)), a0hi);
            a1lo =
                _mm256_fmadd_ps(_mm256_cvtph_ps(h2), _mm256_loadu_ps(query.add(base + 16)), a1lo);
            a1hi =
                _mm256_fmadd_ps(_mm256_cvtph_ps(h3), _mm256_loadu_ps(query.add(base + 24)), a1hi);
        }
        let mut done = chunks * 32;
        if dim - done >= 16 {
            let h0 = _mm_loadu_si128(row.add(done) as *const __m128i);
            let h1 = _mm_loadu_si128(row.add(done + 8) as *const __m128i);
            a0lo = _mm256_fmadd_ps(_mm256_cvtph_ps(h0), _mm256_loadu_ps(query.add(done)), a0lo);
            a0hi = _mm256_fmadd_ps(_mm256_cvtph_ps(h1), _mm256_loadu_ps(query.add(done + 8)), a0hi);
            done += 16;
        }
        let mut lanes = [0.0f32; 16];
        _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(a0lo, a1lo));
        _mm256_storeu_ps(lanes.as_mut_ptr().add(8), _mm256_add_ps(a0hi, a1hi));
        let mut sum = reduce16_tree(&lanes);
        for i in done..dim {
            sum = f16_to_f32(*row.add(i)).mul_add(*query.add(i), sum);
        }
        sum
    }

    /// Rows per AVX2 block pass: two rows keep the eight bank registers
    /// plus four shared query registers inside the 16-ymm file.
    const MICRO_AVX2: usize = 2;

    /// # Safety
    /// AVX2+FMA+F16C available; block layout checked by the safe caller.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn dot_block_f16c_avx2(
        query: &[f32],
        block: &[u16],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 32;
        let mut r = 0;
        while r + MICRO_AVX2 <= rows {
            let rowp: [*const u16; MICRO_AVX2] = std::array::from_fn(|k| b.add((r + k) * stride));
            let mut acc = [[_mm256_setzero_ps(); 4]; MICRO_AVX2];
            for c in 0..chunks {
                let base = c * 32;
                let q0 = _mm256_loadu_ps(q.add(base));
                let q1 = _mm256_loadu_ps(q.add(base + 8));
                let q2 = _mm256_loadu_ps(q.add(base + 16));
                let q3 = _mm256_loadu_ps(q.add(base + 24));
                for k in 0..MICRO_AVX2 {
                    let h0 = _mm_loadu_si128(rowp[k].add(base) as *const __m128i);
                    let h1 = _mm_loadu_si128(rowp[k].add(base + 8) as *const __m128i);
                    let h2 = _mm_loadu_si128(rowp[k].add(base + 16) as *const __m128i);
                    let h3 = _mm_loadu_si128(rowp[k].add(base + 24) as *const __m128i);
                    acc[k][0] = _mm256_fmadd_ps(_mm256_cvtph_ps(h0), q0, acc[k][0]);
                    acc[k][1] = _mm256_fmadd_ps(_mm256_cvtph_ps(h1), q1, acc[k][1]);
                    acc[k][2] = _mm256_fmadd_ps(_mm256_cvtph_ps(h2), q2, acc[k][2]);
                    acc[k][3] = _mm256_fmadd_ps(_mm256_cvtph_ps(h3), q3, acc[k][3]);
                }
            }
            let mut done = chunks * 32;
            if dim - done >= 16 {
                let q0 = _mm256_loadu_ps(q.add(done));
                let q1 = _mm256_loadu_ps(q.add(done + 8));
                for k in 0..MICRO_AVX2 {
                    let h0 = _mm_loadu_si128(rowp[k].add(done) as *const __m128i);
                    let h1 = _mm_loadu_si128(rowp[k].add(done + 8) as *const __m128i);
                    acc[k][0] = _mm256_fmadd_ps(_mm256_cvtph_ps(h0), q0, acc[k][0]);
                    acc[k][1] = _mm256_fmadd_ps(_mm256_cvtph_ps(h1), q1, acc[k][1]);
                }
                done += 16;
            }
            for k in 0..MICRO_AVX2 {
                let mut lanes = [0.0f32; 16];
                _mm256_storeu_ps(lanes.as_mut_ptr(), _mm256_add_ps(acc[k][0], acc[k][2]));
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), _mm256_add_ps(acc[k][1], acc[k][3]));
                let mut sum = reduce16_tree(&lanes);
                for i in done..dim {
                    sum = f16_to_f32(*rowp[k].add(i)).mul_add(*q.add(i), sum);
                }
                out[r + k] = sum;
            }
            r += MICRO_AVX2;
        }
        while r < rows {
            out[r] = dot_f16c_avx2(b.add(r * stride), q, dim);
            r += 1;
        }
    }

    /// F16C widened to 512-bit registers: per 32-wide chunk, two
    /// `vcvtph2ps zmm` + two `vfmadd` into the two 16-lane banks whose
    /// lanes are exactly the scalar path's `acc0`/`acc1`.
    ///
    /// # Safety
    /// AVX-512F+F16C available; pointers readable for `dim` elements.
    #[target_feature(enable = "avx512f,f16c")]
    pub(super) unsafe fn dot_f16c_avx512(row: *const u16, query: *const f32, dim: usize) -> f32 {
        let chunks = dim / 32;
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        for c in 0..chunks {
            let base = c * 32;
            let h0 = _mm256_loadu_si256(row.add(base) as *const __m256i);
            let h1 = _mm256_loadu_si256(row.add(base + 16) as *const __m256i);
            acc0 = _mm512_fmadd_ps(_mm512_cvtph_ps(h0), _mm512_loadu_ps(query.add(base)), acc0);
            acc1 =
                _mm512_fmadd_ps(_mm512_cvtph_ps(h1), _mm512_loadu_ps(query.add(base + 16)), acc1);
        }
        let mut done = chunks * 32;
        if dim - done >= 16 {
            let h = _mm256_loadu_si256(row.add(done) as *const __m256i);
            acc0 = _mm512_fmadd_ps(_mm512_cvtph_ps(h), _mm512_loadu_ps(query.add(done)), acc0);
            done += 16;
        }
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), _mm512_add_ps(acc0, acc1));
        let mut sum = reduce16_tree(&lanes);
        for i in done..dim {
            sum = f16_to_f32(*row.add(i)).mul_add(*query.add(i), sum);
        }
        sum
    }

    /// Rows per AVX-512 block pass: four rows keep eight named bank
    /// registers plus two shared query registers live with no accumulator
    /// array the compiler could spill.
    const MICRO_AVX512: usize = 4;

    /// # Safety
    /// AVX-512F+F16C available; block layout checked by the safe caller.
    #[target_feature(enable = "avx512f,f16c")]
    pub(super) unsafe fn dot_block_f16c_avx512(
        query: &[f32],
        block: &[u16],
        stride: usize,
        out: &mut [f32],
    ) {
        let dim = query.len();
        let rows = out.len();
        let q = query.as_ptr();
        let b = block.as_ptr();
        let chunks = dim / 32;
        let mut r = 0;
        while r + MICRO_AVX512 <= rows {
            let r0 = b.add(r * stride);
            let r1 = b.add((r + 1) * stride);
            let r2 = b.add((r + 2) * stride);
            let r3 = b.add((r + 3) * stride);
            let mut a00 = _mm512_setzero_ps();
            let mut a01 = _mm512_setzero_ps();
            let mut a10 = _mm512_setzero_ps();
            let mut a11 = _mm512_setzero_ps();
            let mut a20 = _mm512_setzero_ps();
            let mut a21 = _mm512_setzero_ps();
            let mut a30 = _mm512_setzero_ps();
            let mut a31 = _mm512_setzero_ps();
            for c in 0..chunks {
                let base = c * 32;
                let q0 = _mm512_loadu_ps(q.add(base));
                let q1 = _mm512_loadu_ps(q.add(base + 16));
                a00 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r0.add(base) as *const __m256i)),
                    q0,
                    a00,
                );
                a01 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r0.add(base + 16) as *const __m256i)),
                    q1,
                    a01,
                );
                a10 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r1.add(base) as *const __m256i)),
                    q0,
                    a10,
                );
                a11 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r1.add(base + 16) as *const __m256i)),
                    q1,
                    a11,
                );
                a20 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r2.add(base) as *const __m256i)),
                    q0,
                    a20,
                );
                a21 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r2.add(base + 16) as *const __m256i)),
                    q1,
                    a21,
                );
                a30 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r3.add(base) as *const __m256i)),
                    q0,
                    a30,
                );
                a31 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r3.add(base + 16) as *const __m256i)),
                    q1,
                    a31,
                );
            }
            let mut done = chunks * 32;
            if dim - done >= 16 {
                let q0 = _mm512_loadu_ps(q.add(done));
                a00 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r0.add(done) as *const __m256i)),
                    q0,
                    a00,
                );
                a10 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r1.add(done) as *const __m256i)),
                    q0,
                    a10,
                );
                a20 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r2.add(done) as *const __m256i)),
                    q0,
                    a20,
                );
                a30 = _mm512_fmadd_ps(
                    _mm512_cvtph_ps(_mm256_loadu_si256(r3.add(done) as *const __m256i)),
                    q0,
                    a30,
                );
                done += 16;
            }
            let banks = [(r0, a00, a01), (r1, a10, a11), (r2, a20, a21), (r3, a30, a31)];
            for (k, (rp, b0, b1)) in banks.into_iter().enumerate() {
                let mut lanes = [0.0f32; 16];
                _mm512_storeu_ps(lanes.as_mut_ptr(), _mm512_add_ps(b0, b1));
                let mut sum = reduce16_tree(&lanes);
                for i in done..dim {
                    sum = f16_to_f32(*rp.add(i)).mul_add(*q.add(i), sum);
                }
                out[r + k] = sum;
            }
            r += MICRO_AVX512;
        }
        while r < rows {
            out[r] = dot_f16c_avx512(b.add(r * stride), q, dim);
            r += 1;
        }
    }

    /// # Safety
    /// AVX2+F16C available; `src` readable and `dst` writable for `n`.
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn convert_f16c_avx2(src: *const u16, dst: *mut f32, n: usize) {
        let chunks = n / 8;
        for c in 0..chunks {
            let h = _mm_loadu_si128(src.add(c * 8) as *const __m128i);
            _mm256_storeu_ps(dst.add(c * 8), _mm256_cvtph_ps(h));
        }
        for i in chunks * 8..n {
            *dst.add(i) = f16_to_f32(*src.add(i));
        }
    }

    /// # Safety
    /// AVX-512F+F16C available; `src` readable and `dst` writable for `n`.
    #[target_feature(enable = "avx512f,f16c")]
    pub(super) unsafe fn convert_f16c_avx512(src: *const u16, dst: *mut f32, n: usize) {
        let chunks = n / 16;
        for c in 0..chunks {
            let h = _mm256_loadu_si256(src.add(c * 16) as *const __m256i);
            _mm512_storeu_ps(dst.add(c * 16), _mm512_cvtph_ps(h));
        }
        for i in chunks * 16..n {
            *dst.add(i) = f16_to_f32(*src.add(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f16_row(n: usize, seed: u64) -> Vec<u16> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let u = ((s ^ (s >> 31)) >> 40) as f32 / (1u64 << 24) as f32;
                f32_to_f16(u * 2.0 - 1.0)
            })
            .collect()
    }

    fn f32_row(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let u = ((s ^ (s >> 29)) >> 40) as f32 / (1u64 << 24) as f32;
                u * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn roundtrip_and_specials_match_historical_behaviour() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
    }

    #[test]
    fn active_path_matches_scalar_bitwise() {
        // The cross-ISA contract: whatever resolved on this host equals the
        // software path to the bit, half-chunks and tails included.
        for dim in [0, 1, 7, 15, 16, 17, 31, 32, 33, 47, 48, 49, 63, 64, 65, 100] {
            let row = f16_row(dim, 1);
            let q = f32_row(dim, 2);
            let hw = dot_f16(&row, &q);
            let sw = dot_f16_scalar(&row, &q, dim);
            assert_eq!(hw.to_bits(), sw.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn block_matches_pairwise_bitwise_on_active_path() {
        for (dim, stride) in [(1, 8), (5, 8), (16, 16), (33, 40), (48, 48), (100, 104)] {
            let q = f32_row(dim, 3);
            let rows = 9usize;
            let mut block = vec![0u16; rows * stride];
            for r in 0..rows {
                block[r * stride..r * stride + dim].copy_from_slice(&f16_row(dim, 10 + r as u64));
            }
            let mut out = vec![f32::NAN; rows];
            dot_block_f16(&q, &block, stride, &mut out);
            for r in 0..rows {
                let exact = dot_f16(&block[r * stride..r * stride + dim], &q);
                assert_eq!(out[r].to_bits(), exact.to_bits(), "dim {dim} row {r}");
            }
        }
    }

    #[test]
    fn convert_slice_matches_elementwise() {
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 100] {
            let src = f16_row(n, 5);
            let mut dst = vec![f32::NAN; n];
            convert_f16_slice(&src, &mut dst);
            for i in 0..n {
                assert_eq!(dst[i].to_bits(), f16_to_f32(src[i]).to_bits(), "n {n} i {i}");
            }
        }
    }

    #[test]
    fn subnormal_halfs_convert_identically() {
        // Smallest subnormal, largest subnormal, smallest normal.
        let mut dst = [0.0f32; 3];
        let src = [0x0001u16, 0x03FF, 0x0400];
        convert_f16_slice(&src, &mut dst);
        for (i, &bits) in src.iter().enumerate() {
            assert_eq!(dst[i].to_bits(), f16_to_f32(bits).to_bits());
        }
        assert!(dst[0] > 0.0 && dst[0] < dst[1] && dst[1] < dst[2]);
    }
}

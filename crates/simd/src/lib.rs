//! Explicit-SIMD kernel layer with runtime dispatch (ROADMAP #3).
//!
//! Every semantic sweep, MQO shared scan, prepared-statement execution and
//! index probe in this engine bottoms out in three panel-kernel families:
//!
//! * **f32** — [`dot`], [`dot_block`]: the blocked similarity kernels of
//!   `cx_vector::block`,
//! * **f16** — [`dot_f16`], [`dot_block_f16`], [`convert_f16_slice`]: IEEE
//!   binary16 rows scored against an f32 query,
//! * **int8** — [`dot_int8_i32`], [`dot_block_int8`]: symmetric int8 rows
//!   accumulated in exact `i32`.
//!
//! This crate holds the guarded `std::arch` implementations of all three,
//! behind a one-time-resolved [`KernelDispatch`] (CPU feature detection ⊕
//! the `CX_SIMD` env override — see [`dispatch`]). Callers never name an
//! ISA: they call the portable entry points here and the active path is
//! consulted once per *panel* call (a relaxed atomic load), never per pair.
//!
//! # Numerical contracts
//!
//! * **f32** fixes its accumulation-tree order *per ISA*: under one active
//!   path, blocked ≡ pairwise to the bit ([`dot_block`] row `r` ==
//!   [`dot`] on the same row), but scores may differ in the last bits
//!   *across* paths (wider accumulators and FMA change rounding). The
//!   scalar path reproduces the historical `dot_unrolled` ladder exactly,
//!   so `CX_SIMD=off` is bit-compatible with every release before this
//!   layer existed.
//! * **f16** is bit-identical *across* ISAs for non-NaN data: hardware
//!   `vcvtph2ps` performs the same IEEE conversion as the software
//!   bit-twiddling path (including subnormals and infinities — only sNaN
//!   payload quieting differs, and embeddings are NaN-free), and every
//!   path accumulates in the same order: two 16-lane banks advanced by
//!   *fused* multiply-add ([`f32::mul_add`] in software is the same
//!   single-rounding operation the `vfmadd` units perform), merged
//!   lanewise, then the shared reduction tree.
//! * **int8** is bit-identical *across* ISAs unconditionally: the
//!   accumulator is exact `i32`, so lane count and summation order cannot
//!   change the result.
//!
//! Padding lanes of a strided block (`dim..stride`) are never read, on any
//! path: vector loads stay within `chunks*width <= dim` and tails run
//! element-wise.

#![warn(missing_docs)]
// Index-based loops mirror the fixed lane/accumulator structure the
// numerical contract is defined in terms of; iterator rewrites would
// obscure exactly the property the kernels guarantee.
#![allow(clippy::needless_range_loop)]

pub mod dispatch;
mod fp16;
mod fp32;
mod int8;

pub use dispatch::{
    available_modes, force_mode, resolve_mode, F16Path, F32Path, Int8Path, KernelDispatch,
    SimdMode, UnsupportedSimdMode,
};
pub use fp16::{convert_f16_slice, dot_block_f16, dot_f16, f16_to_f32, f32_to_f16};
pub use fp32::{dot, dot_block};
pub use int8::{dot_block_int8, dot_int8_i32};

/// The fixed 8-lane reduction tree shared by the f32 scalar ladder and the
/// AVX2 path: `(l0+l1)+(l2+l3)+((l4+l5)+(l6+l7))`.
#[inline]
pub(crate) fn reduce8_tree(l: &[f32; 8]) -> f32 {
    (l[0] + l[1]) + (l[2] + l[3]) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// The fixed 16-lane reduction tree shared by every f16 path and the
/// AVX-512 f32 path: pairwise over lanes, then over quads.
#[inline]
pub(crate) fn reduce16_tree(l: &[f32; 16]) -> f32 {
    let t0 = (l[0] + l[1]) + (l[2] + l[3]);
    let t1 = (l[4] + l[5]) + (l[6] + l[7]);
    let t2 = (l[8] + l[9]) + (l[10] + l[11]);
    let t3 = (l[12] + l[13]) + (l[14] + l[15]);
    (t0 + t1) + (t2 + t3)
}

/// Validates the row-major block layout shared by every panel kernel:
/// `stride >= dim` and `block` long enough for `rows` rows. Returns `true`
/// when there is work to do (`rows > 0`).
///
/// # Panics
/// Panics on a short block or a stride below `dim` — layout bugs must not
/// become out-of-bounds vector loads.
#[inline]
pub(crate) fn check_block<T>(block: &[T], stride: usize, dim: usize, rows: usize) -> bool {
    assert!(stride >= dim, "stride {stride} shorter than dim {dim}");
    if rows == 0 {
        return false;
    }
    assert!(
        block.len() >= (rows - 1) * stride + dim,
        "block of {} elements too short for {rows} rows at stride {stride}",
        block.len()
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_trees_are_plain_sums_on_exact_values() {
        let l8 = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(reduce8_tree(&l8), 36.0);
        let l16: [f32; 16] = std::array::from_fn(|i| (i + 1) as f32);
        assert_eq!(reduce16_tree(&l16), 136.0);
    }

    #[test]
    fn check_block_accepts_exact_fit_and_rejects_short() {
        assert!(check_block(&[0u8; 3 * 8 - (8 - 5)], 8, 5, 3));
        assert!(!check_block::<u8>(&[], 8, 5, 0));
        let r = std::panic::catch_unwind(|| check_block(&[0u8; 20], 8, 5, 3));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| check_block(&[0u8; 64], 4, 5, 1));
        assert!(r.is_err());
    }
}

//! The physical operator trait and execution helpers.

use crate::shared::{ScanSignature, SharedScanState};
use cx_storage::{Chunk, Error, QueryContext, Result, Scalar, Schema, Table};
use std::sync::Arc;

/// A stream of chunks produced by one operator execution.
pub type ChunkStream = Box<dyn Iterator<Item = Result<Chunk>> + Send>;

/// A vectorized physical operator.
///
/// Operators form a tree via `Arc` children; [`execute`] may be called
/// repeatedly (each call re-runs the subtree). Chunk-at-a-time pull
/// execution keeps inner loops over contiguous columns.
///
/// [`execute`]: PhysicalOperator::execute
pub trait PhysicalOperator: Send + Sync {
    /// Operator name for EXPLAIN output.
    fn name(&self) -> String;

    /// Output schema.
    fn schema(&self) -> Arc<Schema>;

    /// Child operators (for plan rendering).
    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>>;

    /// Starts execution, returning the output chunk stream.
    fn execute(&self) -> Result<ChunkStream>;

    /// The shared-scan surface of this operator, if it can merge its
    /// panel sweep with other queries' (see [`crate::shared`] for the
    /// contract). Wrappers that delegate `execute` must delegate this
    /// too. Default: not shareable.
    fn scan_signature(&self) -> Option<ScanSignature> {
        None
    }

    /// Installs one query's slice of a shared sweep, to be consumed by
    /// the **next** `execute()` call instead of scanning (one-shot).
    /// Returns `false` when this operator does not support injection
    /// (the caller should fall back to plain execution — which is always
    /// correct, injection being purely a work-avoidance channel).
    fn inject_shared_scan(&self, state: SharedScanState) -> bool {
        drop(state);
        false
    }

    /// Returns a copy of this operator tree with every prepared-statement
    /// parameter bound to its value from `params` (slot `i` takes
    /// `params[i]`), or `None` when the subtree holds no parameters — the
    /// caller keeps executing the original tree. Subtrees without
    /// parameters are shared, not cloned, so rebinding a mostly-static
    /// plan is cheap.
    ///
    /// The default implementation handles parameter-free operators only:
    /// it errors if any child *does* rebind, because the parent cannot be
    /// reconstructed generically. Every operator that can appear above a
    /// parameterized node overrides this with a clone-with-children
    /// rebuild.
    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        for child in self.children() {
            if child.bind_params(params)?.is_some() {
                return Err(Error::InvalidArgument(format!(
                    "operator {} does not support parameter rebinding",
                    self.name()
                )));
            }
        }
        Ok(None)
    }
}

/// Binds `params` into `op`'s tree via [`PhysicalOperator::bind_params`],
/// returning the (possibly shared) executable root.
pub fn bind_physical(
    op: &Arc<dyn PhysicalOperator>,
    params: &[Scalar],
) -> Result<Arc<dyn PhysicalOperator>> {
    Ok(op.bind_params(params)?.unwrap_or_else(|| op.clone()))
}

/// Runs `op` to completion, returning all chunks.
///
/// This is the central materialization point, so it doubles as the
/// query-lifecycle choke point: each produced chunk is charged to the
/// ambient [`QueryContext`]'s memory budget and the context is checked
/// between chunks, bounding how far a dead query (deadline passed,
/// cancelled, over budget) can run past its sentence.
pub fn collect(op: &dyn PhysicalOperator) -> Result<Vec<Chunk>> {
    let ctx = QueryContext::current();
    let mut chunks = Vec::new();
    for chunk in op.execute()? {
        ctx.check()?;
        let chunk = chunk?;
        ctx.charge(chunk.memory_bytes());
        chunks.push(chunk);
    }
    ctx.check()?;
    Ok(chunks)
}

/// Runs `op` to completion into a [`Table`].
pub fn collect_table(op: &dyn PhysicalOperator) -> Result<Table> {
    let chunks = collect(op)?;
    Table::new(op.schema(), chunks)
}

/// Renders a physical operator tree, indented.
pub fn display_physical(op: &dyn PhysicalOperator) -> String {
    let mut out = String::new();
    fn walk(op: &dyn PhysicalOperator, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&op.name());
        out.push('\n');
        for child in op.children() {
            walk(child.as_ref(), out, depth + 1);
        }
    }
    walk(op, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::TableScanExec;
    use cx_storage::{Column, Field, Schema};

    fn table() -> Table {
        Table::from_columns(
            Schema::new(vec![Field::new("x", cx_storage::DataType::Int64)]),
            vec![Column::from_i64(vec![1, 2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn collect_roundtrip() {
        let scan = TableScanExec::new(Arc::new(table()));
        let out = collect_table(&scan).unwrap();
        assert_eq!(out.num_rows(), 3);
        // execute() can run twice.
        let out2 = collect_table(&scan).unwrap();
        assert_eq!(out2.num_rows(), 3);
    }

    #[test]
    fn display_tree() {
        let scan = TableScanExec::new(Arc::new(table()));
        let s = display_physical(&scan);
        assert!(s.starts_with("TableScan"));
    }
}

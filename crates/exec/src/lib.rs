//! Relational substrate: logical plans and vectorized physical execution.
//!
//! The paper's position is that context-rich (model-assisted) operators must
//! live *inside* a conventional analytical engine so they benefit from the
//! same logical/physical optimizations. This crate is that engine:
//!
//! * [`logical`] — the logical plan algebra. It contains both classic
//!   relational nodes (scan/filter/project/join/aggregate/…) and the
//!   paper's three semantic operator nodes (semantic select / join /
//!   group-by, Section IV), so one optimizer rewrites both families,
//! * [`physical`] — the operator trait and chunk-at-a-time executor,
//! * [`operators`] — relational physical operators (scan, filter, project,
//!   hash join, nested-loop join, hash aggregate, sort, limit, distinct,
//!   union),
//! * [`parallel`] — morsel-style parallel chunk processing on crossbeam
//!   scoped threads (the "scale-up" rung of Figure 4),
//! * [`metrics`] — per-operator row/time counters for EXPLAIN ANALYZE-style
//!   reporting,
//! * [`shared`] — the shared-scan contract: how operators advertise
//!   mergeable panel sweeps ([`ScanSignature`]) and accept precomputed
//!   score slices ([`SharedScanState`]) for multi-query execution.

pub mod logical;
pub mod metrics;
pub mod operators;
pub mod parallel;
pub mod physical;
pub mod shared;

pub use logical::{
    AggFunc, AggSpec, JoinType, LimitCount, LogicalPlan, SemanticJoinSpec, SemanticTarget,
};
pub use metrics::{ExecMetrics, OperatorMetrics};
pub use operators::{
    scalar_cmp, Accumulator,
    DistinctExec, FilterExec, HashAggregateExec, HashJoinExec, LimitExec, NestedLoopJoinExec,
    ProjectExec, SortExec, SystemTableScanExec, TableScanExec, UnionExec,
};
pub use parallel::parallel_map_chunks;
pub use physical::{bind_physical, collect, collect_table, ChunkStream, PhysicalOperator};
pub use shared::{find_shared_scan, ProbeSource, ScanKind, ScanSignature, SharedScanState};

//! The logical plan algebra: relational and semantic operators in one tree.
//!
//! Keeping the paper's semantic operators (Section IV) as first-class plan
//! nodes — rather than opaque UDFs — is what lets the optimizer push
//! filters through them, reorder joins around them, and cost them like any
//! relational operator.

use cx_expr::Expr;
use cx_storage::{DataType, Error, Field, Result, Scalar, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// The probe of a semantic filter: a fixed text literal, or a
/// prepared-statement parameter slot bound at execute time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemanticTarget {
    /// A concrete probe string.
    Text(String),
    /// A placeholder resolved from the binding vector (`params[slot]`
    /// must be a UTF8 scalar).
    Param(usize),
}

impl SemanticTarget {
    /// The probe text, when fixed.
    pub fn text(&self) -> Option<&str> {
        match self {
            SemanticTarget::Text(s) => Some(s),
            SemanticTarget::Param(_) => None,
        }
    }

    /// The parameter slot, when parameterized.
    pub fn slot(&self) -> Option<usize> {
        match self {
            SemanticTarget::Text(_) => None,
            SemanticTarget::Param(slot) => Some(*slot),
        }
    }

    /// Resolves the probe text against a binding vector. A `Text` target
    /// resolves to itself; a `Param` requires a UTF8 scalar at its slot.
    pub fn resolve(&self, params: &[Scalar]) -> Result<String> {
        match self {
            SemanticTarget::Text(s) => Ok(s.clone()),
            SemanticTarget::Param(slot) => match params.get(*slot) {
                Some(Scalar::Utf8(s)) => Ok(s.clone()),
                Some(other) => Err(Error::TypeMismatch {
                    expected: format!("UTF8 value for semantic probe parameter ${slot}"),
                    actual: format!("{other:?}"),
                }),
                None => Err(Error::InvalidArgument(format!(
                    "parameter ${slot} has no bound value ({} provided)",
                    params.len()
                ))),
            },
        }
    }
}

impl From<&str> for SemanticTarget {
    fn from(s: &str) -> Self {
        SemanticTarget::Text(s.to_string())
    }
}

impl From<String> for SemanticTarget {
    fn from(s: String) -> Self {
        SemanticTarget::Text(s)
    }
}

impl fmt::Display for SemanticTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticTarget::Text(s) => write!(f, "'{s}'"),
            SemanticTarget::Param(slot) => write!(f, "${slot}"),
        }
    }
}

/// A LIMIT row count: fixed, or a prepared-statement parameter slot bound
/// at execute time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitCount {
    /// A concrete row count.
    Fixed(usize),
    /// A placeholder resolved from the binding vector (`params[slot]`
    /// must be a non-negative Int64 scalar).
    Param(usize),
}

impl LimitCount {
    /// The row count, when fixed.
    pub fn fixed(&self) -> Option<usize> {
        match self {
            LimitCount::Fixed(n) => Some(*n),
            LimitCount::Param(_) => None,
        }
    }

    /// Resolves the row count against a binding vector.
    pub fn resolve(&self, params: &[Scalar]) -> Result<usize> {
        match self {
            LimitCount::Fixed(n) => Ok(*n),
            LimitCount::Param(slot) => match params.get(*slot) {
                Some(Scalar::Int64(n)) if *n >= 0 => Ok(*n as usize),
                Some(other) => Err(Error::TypeMismatch {
                    expected: format!("non-negative Int64 for limit parameter ${slot}"),
                    actual: format!("{other:?}"),
                }),
                None => Err(Error::InvalidArgument(format!(
                    "parameter ${slot} has no bound value ({} provided)",
                    params.len()
                ))),
            },
        }
    }
}

impl From<usize> for LimitCount {
    fn from(n: usize) -> Self {
        LimitCount::Fixed(n)
    }
}

impl fmt::Display for LimitCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitCount::Fixed(n) => write!(f, "{n}"),
            LimitCount::Param(slot) => write!(f, "${slot}"),
        }
    }
}

/// Join variants supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    /// Left outer: unmatched left rows padded with NULLs.
    Left,
    /// Left semi: left rows with at least one match, emitted once.
    LeftSemi,
    /// Left anti: left rows with no match.
    LeftAnti,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinType::Inner => "INNER",
            JoinType::Left => "LEFT",
            JoinType::LeftSemi => "SEMI",
            JoinType::LeftAnti => "ANTI",
        };
        f.write_str(s)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// One aggregate in an [`LogicalPlan::Aggregate`] or semantic group-by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Input column (`None` only for `CountStar`).
    pub column: Option<String>,
    /// Output field name.
    pub alias: String,
}

impl AggSpec {
    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Self {
        AggSpec { func: AggFunc::CountStar, column: None, alias: alias.into() }
    }

    /// `func(column) AS alias`.
    pub fn new(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggSpec { func, column: Some(column.into()), alias: alias.into() }
    }

    /// The output field this aggregate produces given the input schema.
    pub fn output_field(&self, input: &Schema) -> Result<Field> {
        let data_type = match (self.func, &self.column) {
            (AggFunc::CountStar, _) | (AggFunc::Count, _) => DataType::Int64,
            (AggFunc::Avg, Some(_)) => DataType::Float64,
            (AggFunc::Sum, Some(col)) => {
                let t = input.field(col)?.data_type;
                if t == DataType::Int64 {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            (AggFunc::Min | AggFunc::Max, Some(col)) => input.field(col)?.data_type,
            (_, None) => {
                return Err(Error::InvalidArgument(format!(
                    "{} requires an input column",
                    self.func
                )))
            }
        };
        Ok(Field::new(self.alias.clone(), data_type))
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.func, &self.column) {
            (AggFunc::CountStar, _) => write!(f, "COUNT(*) AS {}", self.alias),
            (func, Some(col)) => write!(f, "{func}({col}) AS {}", self.alias),
            (func, None) => write!(f, "{func}(?) AS {}", self.alias),
        }
    }
}

/// Parameters of a semantic join: match rows whose key embeddings are
/// within `threshold` cosine similarity under `model`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticJoinSpec {
    pub left_column: String,
    pub right_column: String,
    /// Model name resolved through the engine's model registry.
    pub model: String,
    pub threshold: f32,
    /// Name of the appended similarity score column.
    pub score_column: String,
}

/// A sort key: column plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    pub column: String,
    pub ascending: bool,
}

/// The logical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base relation scan. The schema is captured at plan-build time from
    /// the catalog.
    Scan { source: String, schema: Arc<Schema> },
    /// Row filter.
    Filter { predicate: Expr, input: Box<LogicalPlan> },
    /// Projection / computed columns.
    Project {
        exprs: Vec<(Expr, String)>,
        input: Box<LogicalPlan>,
    },
    /// Equi-join on column name pairs.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(String, String)>,
        join_type: JoinType,
    },
    /// Cartesian product (theta joins = CrossJoin + Filter).
    CrossJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Semantic select (Section IV): keep rows whose `column` embedding is
    /// within `threshold` cosine of the target's embedding under `model`.
    /// The target is a [`SemanticTarget`]: a fixed probe string, or a
    /// prepared-statement parameter bound at execute time.
    SemanticFilter {
        input: Box<LogicalPlan>,
        column: String,
        target: SemanticTarget,
        model: String,
        threshold: f32,
    },
    /// Semantic join (Section IV): embedding-space threshold join.
    SemanticJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        spec: SemanticJoinSpec,
    },
    /// Semantic group-by (Section IV): on-the-fly clustering of `column`
    /// by model similarity, with aggregates per cluster.
    SemanticGroupBy {
        input: Box<LogicalPlan>,
        column: String,
        model: String,
        threshold: f32,
        aggs: Vec<AggSpec>,
    },
    /// Hash aggregation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// Total sort.
    Sort { input: Box<LogicalPlan>, keys: Vec<SortKey> },
    /// First `n` rows ([`LimitCount`]: fixed or parameterized).
    Limit { input: Box<LogicalPlan>, n: LimitCount },
    /// Duplicate elimination over all columns.
    Distinct { input: Box<LogicalPlan> },
    /// Concatenation of same-schema inputs.
    Union { inputs: Vec<LogicalPlan> },
}

impl LogicalPlan {
    /// The output schema of this plan node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. } => Ok((**schema).clone()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Project { exprs, input } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (expr, name) in exprs {
                    let bound = expr.bind(&in_schema)?;
                    let data_type = bound.data_type().unwrap_or(DataType::Bool);
                    fields.push(Field::new(name.clone(), data_type));
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Join { left, right, join_type, .. } => {
                let l = left.schema()?;
                match join_type {
                    JoinType::LeftSemi | JoinType::LeftAnti => Ok(l),
                    JoinType::Inner => Ok(l.join(&right.schema()?)),
                    JoinType::Left => {
                        // Right-side fields become nullable.
                        let r = right.schema()?;
                        let nullable = Schema::new(
                            r.fields()
                                .iter()
                                .map(|f| Field::new(f.name.clone(), f.data_type))
                                .collect(),
                        );
                        Ok(l.join(&nullable))
                    }
                }
            }
            LogicalPlan::CrossJoin { left, right } => Ok(left.schema()?.join(&right.schema()?)),
            LogicalPlan::SemanticFilter { input, .. } => input.schema(),
            LogicalPlan::SemanticJoin { left, right, spec } => {
                let mut joined = left.schema()?.join(&right.schema()?);
                joined = joined.with_field(Field::new(spec.score_column.clone(), DataType::Float64));
                Ok(joined)
            }
            LogicalPlan::SemanticGroupBy { input, column, aggs, .. } => {
                let in_schema = input.schema()?;
                let key_type = in_schema.field(column)?.data_type;
                let mut fields = vec![
                    Field::new(column.clone(), key_type),
                    Field::new("cluster_id", DataType::Int64),
                ];
                for agg in aggs {
                    fields.push(agg.output_field(&in_schema)?);
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for name in group_by {
                    fields.push(in_schema.field(name)?.clone());
                }
                for agg in aggs {
                    fields.push(agg.output_field(&in_schema)?);
                }
                Ok(Schema::new(fields))
            }
            LogicalPlan::Union { inputs } => inputs
                .first()
                .ok_or_else(|| Error::InvalidArgument("UNION of zero inputs".into()))?
                .schema(),
        }
    }

    /// Immediate child plans.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::SemanticFilter { input, .. }
            | LogicalPlan::SemanticGroupBy { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::CrossJoin { left, right }
            | LogicalPlan::SemanticJoin { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Rebuilds this node with new children (same arity required).
    pub fn with_children(&self, mut children: Vec<LogicalPlan>) -> Result<LogicalPlan> {
        let expected = self.children().len();
        if children.len() != expected {
            return Err(Error::InvalidArgument(format!(
                "with_children: expected {expected} children, got {}",
                children.len()
            )));
        }
        let mut next = || Box::new(children.remove(0));
        Ok(match self {
            LogicalPlan::Scan { .. } => self.clone(),
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: next(),
            },
            LogicalPlan::Project { exprs, .. } => LogicalPlan::Project {
                exprs: exprs.clone(),
                input: next(),
            },
            LogicalPlan::Join { on, join_type, .. } => LogicalPlan::Join {
                left: next(),
                right: next(),
                on: on.clone(),
                join_type: *join_type,
            },
            LogicalPlan::CrossJoin { .. } => LogicalPlan::CrossJoin { left: next(), right: next() },
            LogicalPlan::SemanticFilter { column, target, model, threshold, .. } => {
                LogicalPlan::SemanticFilter {
                    input: next(),
                    column: column.clone(),
                    target: target.clone(),
                    model: model.clone(),
                    threshold: *threshold,
                }
            }
            LogicalPlan::SemanticJoin { spec, .. } => LogicalPlan::SemanticJoin {
                left: next(),
                right: next(),
                spec: spec.clone(),
            },
            LogicalPlan::SemanticGroupBy { column, model, threshold, aggs, .. } => {
                LogicalPlan::SemanticGroupBy {
                    input: next(),
                    column: column.clone(),
                    model: model.clone(),
                    threshold: *threshold,
                    aggs: aggs.clone(),
                }
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: next(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort { input: next(), keys: keys.clone() },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit { input: next(), n: *n },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct { input: next() },
            LogicalPlan::Union { .. } => LogicalPlan::Union {
                inputs: std::mem::take(&mut children),
            },
        })
    }

    /// One-line description of this node (children excluded).
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { source, schema } => {
                format!("Scan: {source} [{} cols]", schema.len())
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| {
                        let es = e.to_string();
                        if &es == n {
                            es
                        } else {
                            format!("{es} AS {n}")
                        }
                    })
                    .collect();
                format!("Project: {}", cols.join(", "))
            }
            LogicalPlan::Join { on, join_type, .. } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("{join_type} Join: {}", keys.join(" AND "))
            }
            LogicalPlan::CrossJoin { .. } => "CrossJoin".to_string(),
            LogicalPlan::SemanticFilter { column, target, model, threshold, .. } => format!(
                "SemanticFilter: {column} ~ {target} (model={model}, cos>={threshold})"
            ),
            LogicalPlan::SemanticJoin { spec, .. } => format!(
                "SemanticJoin: {} ~ {} (model={}, cos>={})",
                spec.left_column, spec.right_column, spec.model, spec.threshold
            ),
            LogicalPlan::SemanticGroupBy { column, model, threshold, aggs, .. } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                format!(
                    "SemanticGroupBy: {column} (model={model}, cos>={threshold}) [{}]",
                    aggs.join(", ")
                )
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                format!("Aggregate: group by [{}] [{}]", group_by.join(", "), aggs.join(", "))
            }
            LogicalPlan::Sort { keys, .. } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.ascending { "" } else { " DESC" }))
                    .collect();
                format!("Sort: {}", keys.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit: {n}"),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Union { inputs } => format!("Union: {} inputs", inputs.len()),
        }
    }

    /// Multi-line indented plan rendering (EXPLAIN).
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.describe());
        out.push('\n');
        for child in self.children() {
            child.fmt_indent(out, depth + 1);
        }
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// A stable structural fingerprint of this plan.
    ///
    /// Two plans fingerprint equal iff they are structurally identical —
    /// same operators, in the same tree shape, with the same parameters
    /// (sources, predicates, thresholds bit-for-bit, models, limits;
    /// prepared-statement placeholders by slot). The hash is FNV-1a, not
    /// `DefaultHasher`, so the value is deterministic across processes and
    /// platforms: it can key a serving layer's plan cache and survive
    /// restarts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fingerprint_into(&mut h, false);
        h.finish()
    }

    /// The plan's *shape* fingerprint: like [`Self::fingerprint`], but
    /// every bindable literal position — expression literals, semantic
    /// probe texts, limit counts — is hashed as a placeholder slot
    /// (expression literals keep their type tag, since `lit(2i64)` and
    /// `lit(2.0)` produce different plans) instead of its value, while
    /// explicit parameter placeholders hash by slot as usual.
    ///
    /// Two plans shape-fingerprint equal iff they are identical up to the
    /// values a prepared statement could bind. A prepared-statement layer
    /// keys its plan cache by this hash, so every binding of one template
    /// — and every re-prepare of an equivalent template — lands on the
    /// same entry. Because the values of *unparameterized* literals are
    /// erased too, shape-keyed caches must validate candidate entries
    /// against the exact [`Self::fingerprint`] before reuse.
    pub fn shape_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fingerprint_into(&mut h, true);
        h.finish()
    }

    fn fingerprint_into(&self, h: &mut Fnv1a, shape: bool) {
        match self {
            LogicalPlan::Scan { source, schema } => {
                h.tag(1);
                h.str(source);
                h.u64(schema.len() as u64);
                for f in schema.fields() {
                    h.str(&f.name);
                    h.str(&f.data_type.to_string());
                }
            }
            LogicalPlan::Filter { predicate, .. } => {
                h.tag(2);
                hash_expr(h, predicate, shape);
            }
            LogicalPlan::Project { exprs, .. } => {
                h.tag(3);
                h.u64(exprs.len() as u64);
                for (e, name) in exprs {
                    hash_expr(h, e, shape);
                    h.str(name);
                }
            }
            LogicalPlan::Join { on, join_type, .. } => {
                h.tag(4);
                h.str(&join_type.to_string());
                h.u64(on.len() as u64);
                for (l, r) in on {
                    h.str(l);
                    h.str(r);
                }
            }
            LogicalPlan::CrossJoin { .. } => h.tag(5),
            LogicalPlan::SemanticFilter { column, target, model, threshold, .. } => {
                h.tag(6);
                h.str(column);
                match target {
                    SemanticTarget::Text(s) => {
                        h.tag(1);
                        if !shape {
                            h.str(s);
                        }
                    }
                    SemanticTarget::Param(slot) => {
                        h.tag(2);
                        h.u64(*slot as u64);
                    }
                }
                h.str(model);
                h.u64(threshold.to_bits() as u64);
            }
            LogicalPlan::SemanticJoin { spec, .. } => {
                h.tag(7);
                h.str(&spec.left_column);
                h.str(&spec.right_column);
                h.str(&spec.model);
                h.u64(spec.threshold.to_bits() as u64);
                h.str(&spec.score_column);
            }
            LogicalPlan::SemanticGroupBy { column, model, threshold, aggs, .. } => {
                h.tag(8);
                h.str(column);
                h.str(model);
                h.u64(threshold.to_bits() as u64);
                hash_aggs(h, aggs);
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                h.tag(9);
                h.u64(group_by.len() as u64);
                for g in group_by {
                    h.str(g);
                }
                hash_aggs(h, aggs);
            }
            LogicalPlan::Sort { keys, .. } => {
                h.tag(10);
                h.u64(keys.len() as u64);
                for k in keys {
                    h.str(&k.column);
                    h.u64(k.ascending as u64);
                }
            }
            LogicalPlan::Limit { n, .. } => {
                h.tag(11);
                match n {
                    LimitCount::Fixed(n) => {
                        h.tag(1);
                        if !shape {
                            h.u64(*n as u64);
                        }
                    }
                    LimitCount::Param(slot) => {
                        h.tag(2);
                        h.u64(*slot as u64);
                    }
                }
            }
            LogicalPlan::Distinct { .. } => h.tag(12),
            LogicalPlan::Union { inputs } => {
                h.tag(13);
                h.u64(inputs.len() as u64);
            }
        }
        for child in self.children() {
            child.fingerprint_into(h, shape);
        }
    }

    /// Every parameter slot referenced anywhere in the plan — filter and
    /// projection expressions, semantic probe targets, limit counts.
    pub fn param_slots(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_param_slots(&mut out);
        out
    }

    fn collect_param_slots(&self, out: &mut BTreeSet<usize>) {
        match self {
            LogicalPlan::Filter { predicate, .. } => predicate.collect_params(out),
            LogicalPlan::Project { exprs, .. } => {
                for (e, _) in exprs {
                    e.collect_params(out);
                }
            }
            LogicalPlan::SemanticFilter { target: SemanticTarget::Param(slot), .. } => {
                out.insert(*slot);
            }
            LogicalPlan::Limit { n: LimitCount::Param(slot), .. } => {
                out.insert(*slot);
            }
            _ => {}
        }
        for child in self.children() {
            child.collect_param_slots(out);
        }
    }

    /// The number of binding values the plan requires: one per parameter
    /// slot, which must be contiguous from `$0`. Errors when slots are
    /// skipped (a prepared statement could never bind such a plan).
    pub fn required_params(&self) -> Result<usize> {
        let slots = self.param_slots();
        let n = slots.len();
        for (expect, got) in slots.into_iter().enumerate() {
            if expect != got {
                return Err(Error::InvalidArgument(format!(
                    "parameter slots must be contiguous from $0: ${expect} is unused but ${got} is referenced"
                )));
            }
        }
        Ok(n)
    }

    /// Replaces every bindable literal in the plan — expression literals
    /// in filters and projections, fixed semantic probe texts, fixed
    /// limit counts — with a parameter placeholder, returning the
    /// parameterized *template* plus the lifted values in slot order.
    /// This is the inverse of [`Self::bind_params`]:
    /// `plan.lift_literals()` gives `(template, values)` with
    /// `template.bind_params(&values) == plan` for any parameter-free
    /// plan.
    ///
    /// Slots are assigned in a deterministic pre-order walk (a node's own
    /// literals before its children, children left to right), so two
    /// plans that differ only in literal values lift to the *same*
    /// template — the foundation of auto-parameterization: the template's
    /// [`Self::fingerprint`] keys one prepared shape for the whole
    /// literal family. Values that are not bindable through
    /// [`Self::bind_params`] — semantic thresholds, models, column names,
    /// aggregate specs, sort keys — stay in the template and therefore in
    /// its fingerprint.
    ///
    /// The caller must ensure the plan has no pre-existing parameters
    /// (check [`Self::param_slots`]); lifting such a plan would produce
    /// colliding slots.
    pub fn lift_literals(&self) -> (LogicalPlan, Vec<Scalar>) {
        let mut out = Vec::new();
        let plan = self.lift_into(&mut out);
        (plan, out)
    }

    fn lift_into(&self, out: &mut Vec<Scalar>) -> LogicalPlan {
        let lifted = match self {
            LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
                predicate: predicate.lift_literals(out),
                input: input.clone(),
            },
            LogicalPlan::Project { exprs, input } => LogicalPlan::Project {
                exprs: exprs
                    .iter()
                    .map(|(e, n)| (e.lift_literals(out), n.clone()))
                    .collect(),
                input: input.clone(),
            },
            LogicalPlan::SemanticFilter { input, column, target, model, threshold } => {
                let target = match target {
                    SemanticTarget::Text(s) => {
                        let slot = out.len();
                        out.push(Scalar::Utf8(s.clone()));
                        SemanticTarget::Param(slot)
                    }
                    SemanticTarget::Param(slot) => SemanticTarget::Param(*slot),
                };
                LogicalPlan::SemanticFilter {
                    input: input.clone(),
                    column: column.clone(),
                    target,
                    model: model.clone(),
                    threshold: *threshold,
                }
            }
            LogicalPlan::Limit { input, n } => {
                let n = match n {
                    LimitCount::Fixed(v) => {
                        let slot = out.len();
                        out.push(Scalar::Int64(*v as i64));
                        LimitCount::Param(slot)
                    }
                    LimitCount::Param(slot) => LimitCount::Param(*slot),
                };
                LogicalPlan::Limit { input: input.clone(), n }
            }
            other => other.clone(),
        };
        let children = lifted
            .children()
            .into_iter()
            .map(|c| c.lift_into(out))
            .collect();
        lifted
            .with_children(children)
            .expect("lift_into preserves arity")
    }

    /// Substitutes every parameter placeholder with its value from
    /// `params` (slot `i` takes `params[i]`): expression parameters become
    /// literals, a parameterized semantic target becomes its probe text,
    /// a parameterized limit becomes its row count. Errors on missing
    /// slots or type-invalid bindings (non-UTF8 probe, negative limit).
    pub fn bind_params(&self, params: &[Scalar]) -> Result<LogicalPlan> {
        let bound = match self {
            LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
                predicate: predicate.bind_params(params)?,
                input: input.clone(),
            },
            LogicalPlan::Project { exprs, input } => LogicalPlan::Project {
                exprs: exprs
                    .iter()
                    .map(|(e, n)| Ok((e.bind_params(params)?, n.clone())))
                    .collect::<Result<Vec<_>>>()?,
                input: input.clone(),
            },
            LogicalPlan::SemanticFilter { input, column, target, model, threshold } => {
                LogicalPlan::SemanticFilter {
                    input: input.clone(),
                    column: column.clone(),
                    target: SemanticTarget::Text(target.resolve(params)?),
                    model: model.clone(),
                    threshold: *threshold,
                }
            }
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: input.clone(),
                n: LimitCount::Fixed(n.resolve(params)?),
            },
            other => other.clone(),
        };
        let children = bound
            .children()
            .into_iter()
            .map(|c| c.bind_params(params))
            .collect::<Result<Vec<_>>>()?;
        bound.with_children(children)
    }
}

/// Hashes an expression structurally — NOT via `Display`, which erases
/// literal types (`Int64(2)` and `Float64(2.0)` both print `2`, yet divide
/// differently) and leaves strings unescaped. Every variant and literal
/// type gets its own tag, and strings are length-prefixed, so two
/// expressions hash equal only if they are structurally identical.
///
/// In `shape` mode, literal *values* are erased (their type tags remain,
/// since literal types change plan semantics) — the placeholder-slot view
/// backing [`LogicalPlan::shape_fingerprint`].
fn hash_expr(h: &mut Fnv1a, expr: &cx_expr::Expr, shape: bool) {
    use cx_expr::{BinOp, Expr};
    match expr {
        Expr::Column(name) => {
            h.tag(1);
            h.str(name);
        }
        Expr::Literal(scalar) => {
            h.tag(2);
            match scalar {
                cx_storage::Scalar::Null => h.tag(1),
                cx_storage::Scalar::Bool(b) => {
                    h.tag(2);
                    if !shape {
                        h.u64(*b as u64);
                    }
                }
                cx_storage::Scalar::Int64(v) => {
                    h.tag(3);
                    if !shape {
                        h.u64(*v as u64);
                    }
                }
                cx_storage::Scalar::Float64(v) => {
                    h.tag(4);
                    if !shape {
                        h.u64(v.to_bits());
                    }
                }
                cx_storage::Scalar::Utf8(s) => {
                    h.tag(5);
                    if !shape {
                        h.str(s);
                    }
                }
                cx_storage::Scalar::Timestamp(v) => {
                    h.tag(6);
                    if !shape {
                        h.u64(*v as u64);
                    }
                }
            }
        }
        Expr::Parameter(slot) => {
            h.tag(6);
            h.u64(*slot as u64);
        }
        Expr::Binary { op, left, right } => {
            h.tag(3);
            h.u64(match op {
                BinOp::Eq => 1,
                BinOp::NotEq => 2,
                BinOp::Lt => 3,
                BinOp::LtEq => 4,
                BinOp::Gt => 5,
                BinOp::GtEq => 6,
                BinOp::And => 7,
                BinOp::Or => 8,
                BinOp::Add => 9,
                BinOp::Sub => 10,
                BinOp::Mul => 11,
                BinOp::Div => 12,
            });
            hash_expr(h, left, shape);
            hash_expr(h, right, shape);
        }
        Expr::Not(inner) => {
            h.tag(4);
            hash_expr(h, inner, shape);
        }
        Expr::IsNull(inner) => {
            h.tag(5);
            hash_expr(h, inner, shape);
        }
    }
}

/// Hashes aggregate specs into a fingerprint.
fn hash_aggs(h: &mut Fnv1a, aggs: &[AggSpec]) {
    h.u64(aggs.len() as u64);
    for a in aggs {
        h.str(&a.func.to_string());
        h.str(a.column.as_deref().unwrap_or(""));
        h.str(&a.alias);
    }
}

/// Minimal FNV-1a 64-bit hasher: process- and platform-stable, unlike
/// `std::collections::hash_map::DefaultHasher` (randomly seeded).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Length-prefixed string hash (so `("ab","c")` ≠ `("a","bc")`).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    /// Node-kind discriminant.
    fn tag(&mut self, t: u64) {
        self.u64(t);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_expr::{col, lit};

    fn scan(name: &str, fields: Vec<Field>) -> LogicalPlan {
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(fields)),
        }
    }

    fn products() -> LogicalPlan {
        scan(
            "products",
            vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ],
        )
    }

    fn labels() -> LogicalPlan {
        scan(
            "labels",
            vec![
                Field::new("label", DataType::Utf8),
                Field::new("category", DataType::Utf8),
            ],
        )
    }

    #[test]
    fn filter_preserves_schema() {
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(20.0)),
            input: Box::new(products()),
        };
        assert_eq!(plan.schema().unwrap().names(), vec!["id", "name", "price"]);
    }

    #[test]
    fn project_infers_types() {
        let plan = LogicalPlan::Project {
            exprs: vec![
                (col("price").mul(lit(2.0)), "double_price".to_string()),
                (col("name"), "name".to_string()),
            ],
            input: Box::new(products()),
        };
        let schema = plan.schema().unwrap();
        assert_eq!(schema.field("double_price").unwrap().data_type, DataType::Float64);
        assert_eq!(schema.field("name").unwrap().data_type, DataType::Utf8);
    }

    #[test]
    fn join_schema_variants() {
        let join = |jt| LogicalPlan::Join {
            left: Box::new(products()),
            right: Box::new(labels()),
            on: vec![("name".into(), "label".into())],
            join_type: jt,
        };
        assert_eq!(join(JoinType::Inner).schema().unwrap().len(), 5);
        assert_eq!(join(JoinType::Left).schema().unwrap().len(), 5);
        assert_eq!(join(JoinType::LeftSemi).schema().unwrap().len(), 3);
        assert_eq!(join(JoinType::LeftAnti).schema().unwrap().names(), vec!["id", "name", "price"]);
    }

    #[test]
    fn semantic_join_appends_score() {
        let plan = LogicalPlan::SemanticJoin {
            left: Box::new(products()),
            right: Box::new(labels()),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        let schema = plan.schema().unwrap();
        assert_eq!(schema.len(), 6);
        assert_eq!(schema.field("sim").unwrap().data_type, DataType::Float64);
    }

    #[test]
    fn aggregate_schema() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(products()),
            group_by: vec!["name".into()],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "price", "total"),
                AggSpec::new(AggFunc::Avg, "price", "avg_price"),
                AggSpec::new(AggFunc::Max, "id", "max_id"),
            ],
        };
        let schema = plan.schema().unwrap();
        assert_eq!(schema.names(), vec!["name", "n", "total", "avg_price", "max_id"]);
        assert_eq!(schema.field("n").unwrap().data_type, DataType::Int64);
        assert_eq!(schema.field("total").unwrap().data_type, DataType::Float64);
        assert_eq!(schema.field("max_id").unwrap().data_type, DataType::Int64);
    }

    #[test]
    fn semantic_group_by_schema() {
        let plan = LogicalPlan::SemanticGroupBy {
            input: Box::new(products()),
            column: "name".into(),
            model: "m".into(),
            threshold: 0.85,
            aggs: vec![AggSpec::count_star("members")],
        };
        assert_eq!(
            plan.schema().unwrap().names(),
            vec!["name", "cluster_id", "members"]
        );
    }

    #[test]
    fn with_children_roundtrip() {
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(1.0)),
            input: Box::new(products()),
        };
        let rebuilt = plan.with_children(vec![products()]).unwrap();
        assert_eq!(rebuilt, plan);
        assert!(plan.with_children(vec![]).is_err());
    }

    #[test]
    fn display_tree() {
        let plan = LogicalPlan::Limit {
            n: LimitCount::Fixed(10),
            input: Box::new(LogicalPlan::Filter {
                predicate: col("price").gt(lit(20.0)),
                input: Box::new(products()),
            }),
        };
        let s = plan.display_indent();
        assert!(s.contains("Limit: 10"));
        assert!(s.contains("  Filter: (price > 20)"));
        assert!(s.contains("    Scan: products"));
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn agg_spec_validation() {
        let bad = AggSpec { func: AggFunc::Sum, column: None, alias: "x".into() };
        assert!(bad.output_field(&products().schema().unwrap()).is_err());
        let missing = AggSpec::new(AggFunc::Sum, "nope", "x");
        assert!(missing.output_field(&products().schema().unwrap()).is_err());
    }

    #[test]
    fn fingerprint_stable_and_structural() {
        let build = |threshold: f32, limit: usize| LogicalPlan::Limit {
            n: LimitCount::Fixed(limit),
            input: Box::new(LogicalPlan::SemanticFilter {
                input: Box::new(products()),
                column: "name".into(),
                target: "clothes".into(),
                model: "m".into(),
                threshold,
            }),
        };
        // Identical plans fingerprint equal (and deterministically).
        assert_eq!(build(0.9, 5).fingerprint(), build(0.9, 5).fingerprint());
        // Any parameter change is a different fingerprint.
        assert_ne!(build(0.9, 5).fingerprint(), build(0.8, 5).fingerprint());
        assert_ne!(build(0.9, 5).fingerprint(), build(0.9, 6).fingerprint());
        // Different source tables differ too.
        assert_ne!(products().fingerprint(), labels().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_literal_types() {
        // `price / 2` (Int64, truncating) vs `price / 2.0` (Float64, real
        // division) both *display* as "(price / 2)" — the fingerprint must
        // not conflate them, or a plan cache would serve wrong results.
        let by = |e: Expr| LogicalPlan::Project {
            exprs: vec![(e, "half".to_string())],
            input: Box::new(products()),
        };
        assert_ne!(
            by(col("price").div(lit(2i64))).fingerprint(),
            by(col("price").div(lit(2.0))).fingerprint()
        );
        // Unescaped-string ambiguity: a literal containing quote syntax
        // must not collide with the literal it prints like.
        let f = |s: &str| LogicalPlan::Filter {
            predicate: col("name").eq(lit(s)),
            input: Box::new(products()),
        };
        assert_ne!(f("a' OR '1").fingerprint(), f("a").fingerprint());
    }

    #[test]
    fn fingerprint_sees_tree_shape() {
        let filter = col("price").gt(lit(20.0));
        let filter_then_limit = LogicalPlan::Limit {
            n: LimitCount::Fixed(3),
            input: Box::new(LogicalPlan::Filter {
                predicate: filter.clone(),
                input: Box::new(products()),
            }),
        };
        let limit_then_filter = LogicalPlan::Filter {
            predicate: filter,
            input: Box::new(LogicalPlan::Limit { n: LimitCount::Fixed(3), input: Box::new(products()) }),
        };
        assert_ne!(filter_then_limit.fingerprint(), limit_then_filter.fingerprint());
        // Join operand order matters.
        let ab = LogicalPlan::CrossJoin {
            left: Box::new(products()),
            right: Box::new(labels()),
        };
        let ba = LogicalPlan::CrossJoin {
            left: Box::new(labels()),
            right: Box::new(products()),
        };
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn lift_literals_roundtrips_and_unifies_shapes() {
        let build = |probe: &str, price: f64, limit: usize| LogicalPlan::Limit {
            n: LimitCount::Fixed(limit),
            input: Box::new(LogicalPlan::SemanticFilter {
                input: Box::new(LogicalPlan::Filter {
                    predicate: col("price").gt(lit(price)),
                    input: Box::new(products()),
                }),
                column: "name".into(),
                target: probe.into(),
                model: "m".into(),
                threshold: 0.8,
            }),
        };
        let plan = build("clothes", 20.0, 5);
        let (template, values) = plan.lift_literals();
        // Pre-order slot assignment: the limit (root) lifts before the
        // probe, which lifts before the filter literal.
        assert_eq!(
            values,
            vec![Scalar::Int64(5), Scalar::Utf8("clothes".into()), Scalar::Float64(20.0)]
        );
        assert_eq!(template.required_params().unwrap(), 3);
        // Lift ∘ bind is the identity.
        assert_eq!(template.bind_params(&values).unwrap(), plan);
        // A different literal family lifts to the *same* template — one
        // prepared shape serves them all.
        let (other, other_values) = build("cat", 99.0, 1).lift_literals();
        assert_eq!(other.fingerprint(), template.fingerprint());
        assert_ne!(other_values, values);
        // Every lifted literal erased: exact == shape fingerprint.
        assert_eq!(template.fingerprint(), template.shape_fingerprint());
        // Structural values stay in the template: a different threshold
        // is a different shape.
        let flip = LogicalPlan::SemanticFilter {
            input: Box::new(products()),
            column: "name".into(),
            target: "x".into(),
            model: "m".into(),
            threshold: 0.9,
        };
        let flip2 = LogicalPlan::SemanticFilter {
            input: Box::new(products()),
            column: "name".into(),
            target: "x".into(),
            model: "m".into(),
            threshold: 0.5,
        };
        assert_ne!(
            flip.lift_literals().0.fingerprint(),
            flip2.lift_literals().0.fingerprint()
        );
        // Int64 and Float64 literals lift to one template (type
        // re-inference at bind time is the prepared layer's job).
        let by = |e: Expr| LogicalPlan::Filter { predicate: e, input: Box::new(products()) };
        assert_eq!(
            by(col("price").gt(lit(2i64))).lift_literals().0.fingerprint(),
            by(col("price").gt(lit(2.0))).lift_literals().0.fingerprint()
        );
    }

    #[test]
    fn union_schema() {
        let u = LogicalPlan::Union { inputs: vec![products(), products()] };
        assert_eq!(u.schema().unwrap().len(), 3);
        let empty = LogicalPlan::Union { inputs: vec![] };
        assert!(empty.schema().is_err());
    }
}

//! Relational physical operators.
//!
//! Pipeline-friendly operators (scan, filter, project, limit, union) stream
//! lazily; pipeline breakers (joins, aggregation, sort, distinct) materialize
//! eagerly inside `execute` — the engine is in-memory, so eager breakers keep
//! the code straightforward without changing asymptotics.

use crate::logical::{AggFunc, AggSpec, JoinType, LimitCount};
use crate::physical::{ChunkStream, PhysicalOperator};
use cx_expr::{eval, eval_predicate, BoundExpr, Expr};
use cx_storage::{
    Chunk, Column, ColumnBuilder, DataType, Error, Field, QueryContext, Result, Scalar, Schema,
    Table,
};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Total order over scalars used for sorting and deterministic group output:
/// NULL first, then by type family, numerics cross-compared as f64.
pub fn scalar_cmp(a: &Scalar, b: &Scalar) -> Ordering {
    fn rank(s: &Scalar) -> u8 {
        match s {
            Scalar::Null => 0,
            Scalar::Bool(_) => 1,
            Scalar::Int64(_) | Scalar::Float64(_) | Scalar::Timestamp(_) => 2,
            Scalar::Utf8(_) => 3,
        }
    }
    match rank(a).cmp(&rank(b)) {
        Ordering::Equal => match (a, b) {
            (Scalar::Null, Scalar::Null) => Ordering::Equal,
            (Scalar::Bool(x), Scalar::Bool(y)) => x.cmp(y),
            (Scalar::Utf8(x), Scalar::Utf8(y)) => x.cmp(y),
            _ => {
                let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                x.total_cmp(&y)
            }
        },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// TableScan
// ---------------------------------------------------------------------------

/// Scans an in-memory table chunk by chunk.
pub struct TableScanExec {
    table: Arc<Table>,
}

impl TableScanExec {
    /// A scan over `table`.
    pub fn new(table: Arc<Table>) -> Self {
        TableScanExec { table }
    }
}

impl PhysicalOperator for TableScanExec {
    fn name(&self) -> String {
        format!("TableScan [{} rows]", self.table.num_rows())
    }

    fn schema(&self) -> Arc<Schema> {
        self.table.schema().clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let table = self.table.clone();
        let n = table.chunks().len();
        Ok(Box::new((0..n).map(move |i| Ok(table.chunks()[i].clone()))))
    }
}

// ---------------------------------------------------------------------------
// SystemTableScan
// ---------------------------------------------------------------------------

/// Scans a live system-table source (`cx.*`): every `execute` takes a
/// fresh snapshot, so repeated scans of the same physical plan observe
/// the state as of each scan, not of plan creation.
pub struct SystemTableScanExec {
    source: Arc<dyn cx_storage::SystemTableSource>,
}

impl SystemTableScanExec {
    /// A scan over the live source.
    pub fn new(source: Arc<dyn cx_storage::SystemTableSource>) -> Self {
        SystemTableScanExec { source }
    }
}

impl PhysicalOperator for SystemTableScanExec {
    fn name(&self) -> String {
        format!("SystemTableScan [{}]", self.source.name())
    }

    fn schema(&self) -> Arc<Schema> {
        self.source.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let schema = self.source.schema();
        let chunks = self.source.snapshot()?;
        for c in &chunks {
            if c.schema().fields() != schema.fields() {
                return Err(Error::InvalidArgument(format!(
                    "system table {} produced a chunk not matching its declared schema",
                    self.source.name()
                )));
            }
        }
        Ok(Box::new(chunks.into_iter().map(Ok)))
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// Filters rows by a boolean predicate.
pub struct FilterExec {
    input: Arc<dyn PhysicalOperator>,
    predicate: BoundExpr,
    display: String,
}

impl FilterExec {
    /// Binds `predicate` against the input schema.
    pub fn new(input: Arc<dyn PhysicalOperator>, predicate: &Expr) -> Result<Self> {
        let bound = predicate.bind(&input.schema())?;
        if bound.data_type() != Some(DataType::Bool) {
            return Err(Error::TypeMismatch {
                expected: "BOOL predicate".into(),
                actual: format!("{:?}", bound.data_type()),
            });
        }
        Ok(FilterExec {
            input,
            predicate: bound,
            display: format!("Filter [{predicate}]"),
        })
    }
}

impl PhysicalOperator for FilterExec {
    fn name(&self) -> String {
        self.display.clone()
    }

    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let stream = self.input.execute()?;
        let predicate = self.predicate.clone();
        // Captured once on the installing thread; the clone keeps working
        // wherever the stream is later driven (see `cx_storage::qctx`).
        let ctx = QueryContext::current();
        Ok(Box::new(stream.map(move |chunk| {
            ctx.check()?;
            let chunk = chunk?;
            let mask = eval_predicate(&predicate, &chunk)?;
            chunk.filter(&mask)
        })))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let input = self.input.bind_params(params)?;
        if input.is_none() && !self.predicate.has_params() {
            return Ok(None);
        }
        Ok(Some(Arc::new(FilterExec {
            input: input.unwrap_or_else(|| self.input.clone()),
            predicate: self.predicate.bind_params(params)?,
            display: self.display.clone(),
        })))
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Computes output columns from expressions.
pub struct ProjectExec {
    input: Arc<dyn PhysicalOperator>,
    exprs: Vec<BoundExpr>,
    schema: Arc<Schema>,
}

impl ProjectExec {
    /// Binds `(expr, name)` pairs against the input schema.
    pub fn new(input: Arc<dyn PhysicalOperator>, exprs: &[(Expr, String)]) -> Result<Self> {
        let in_schema = input.schema();
        let mut bound = Vec::with_capacity(exprs.len());
        let mut fields = Vec::with_capacity(exprs.len());
        for (expr, name) in exprs {
            let b = expr.bind(&in_schema)?;
            fields.push(Field::new(
                name.clone(),
                b.data_type().unwrap_or(DataType::Bool),
            ));
            bound.push(b);
        }
        Ok(ProjectExec {
            input,
            exprs: bound,
            schema: Arc::new(Schema::new(fields)),
        })
    }
}

impl PhysicalOperator for ProjectExec {
    fn name(&self) -> String {
        format!("Project [{} cols]", self.exprs.len())
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let stream = self.input.execute()?;
        let exprs = self.exprs.clone();
        let schema = self.schema.clone();
        let ctx = QueryContext::current();
        Ok(Box::new(stream.map(move |chunk| {
            ctx.check()?;
            let chunk = chunk?;
            let columns = exprs
                .iter()
                .map(|e| eval(e, &chunk))
                .collect::<Result<Vec<_>>>()?;
            Chunk::new(schema.clone(), columns)
        })))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let input = self.input.bind_params(params)?;
        let exprs_have_params = self.exprs.iter().any(|e| e.has_params());
        if input.is_none() && !exprs_have_params {
            return Ok(None);
        }
        let exprs = self
            .exprs
            .iter()
            .map(|e| e.bind_params(params))
            .collect::<Result<Vec<_>>>()?;
        // Binding re-infers expression types (an Int64-column × Float64
        // binding widens to Float64), so the template's frozen output
        // schema may be stale: re-derive field types from the bound
        // expressions — exactly the types the equivalent literal query's
        // projection would have been built with.
        let schema = if exprs_have_params {
            Arc::new(Schema::new(
                self.schema
                    .fields()
                    .iter()
                    .zip(&exprs)
                    .map(|(f, e)| Field::new(f.name.clone(), e.data_type().unwrap_or(DataType::Bool)))
                    .collect(),
            ))
        } else {
            self.schema.clone()
        };
        Ok(Some(Arc::new(ProjectExec {
            input: input.unwrap_or_else(|| self.input.clone()),
            exprs,
            schema,
        })))
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Hash equi-join; the left side builds, the right side probes.
pub struct HashJoinExec {
    left: Arc<dyn PhysicalOperator>,
    right: Arc<dyn PhysicalOperator>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    join_type: JoinType,
    schema: Arc<Schema>,
}

impl HashJoinExec {
    /// Joins on `(left_col, right_col)` name pairs.
    pub fn new(
        left: Arc<dyn PhysicalOperator>,
        right: Arc<dyn PhysicalOperator>,
        on: &[(String, String)],
        join_type: JoinType,
    ) -> Result<Self> {
        if on.is_empty() {
            return Err(Error::InvalidArgument("hash join requires keys".into()));
        }
        let (ls, rs) = (left.schema(), right.schema());
        let mut left_keys = Vec::with_capacity(on.len());
        let mut right_keys = Vec::with_capacity(on.len());
        for (l, r) in on {
            left_keys.push(ls.index_of(l)?);
            right_keys.push(rs.index_of(r)?);
        }
        let schema = Arc::new(match join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => (*ls).clone(),
            _ => ls.join(&rs),
        });
        Ok(HashJoinExec { left, right, left_keys, right_keys, join_type, schema })
    }

    fn row_key(chunk: &Chunk, keys: &[usize], row: usize) -> Option<Vec<Scalar>> {
        let mut out = Vec::with_capacity(keys.len());
        for &k in keys {
            let v = chunk.columns()[k].get(row);
            if v.is_null() {
                return None; // SQL: NULL keys never match.
            }
            out.push(v);
        }
        Some(out)
    }
}

impl PhysicalOperator for HashJoinExec {
    fn name(&self) -> String {
        format!("HashJoin [{}]", self.join_type)
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.left.clone(), self.right.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let ctx = QueryContext::current();
        // Build phase: materialize left side.
        let left_chunks = self.left.execute()?.collect::<Result<Vec<_>>>()?;
        let left_schema = self.left.schema();
        let build = if left_chunks.is_empty() {
            Chunk::empty(left_schema.clone())
        } else {
            Chunk::concat(&left_chunks)?
        };
        ctx.charge(build.memory_bytes());
        ctx.check()?;
        let mut map: HashMap<Vec<Scalar>, Vec<usize>> = HashMap::new();
        for row in 0..build.num_rows() {
            if let Some(key) = Self::row_key(&build, &self.left_keys, row) {
                map.entry(key).or_default().push(row);
            }
        }

        let mut matched_left = vec![false; build.num_rows()];
        let mut out_chunks: Vec<Chunk> = Vec::new();

        // Probe phase.
        for chunk in self.right.execute()? {
            ctx.check()?;
            let chunk = chunk?;
            let mut left_idx = Vec::new();
            let mut right_idx = Vec::new();
            for row in 0..chunk.num_rows() {
                if let Some(key) = Self::row_key(&chunk, &self.right_keys, row) {
                    if let Some(rows) = map.get(&key) {
                        for &l in rows {
                            matched_left[l] = true;
                            left_idx.push(l);
                            right_idx.push(row);
                        }
                    }
                }
            }
            if matches!(self.join_type, JoinType::Inner | JoinType::Left) && !left_idx.is_empty() {
                let l = build.take(&left_idx)?;
                let r = chunk.take(&right_idx)?;
                out_chunks.push(reschema(l.zip(&r)?, self.schema.clone())?);
            }
        }

        // Emit unmatched / matched left rows for outer, semi and anti joins.
        match self.join_type {
            JoinType::Inner => {}
            JoinType::Left => {
                let unmatched: Vec<usize> = matched_left
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| !**m)
                    .map(|(i, _)| i)
                    .collect();
                if !unmatched.is_empty() {
                    let l = build.take(&unmatched)?;
                    let right_schema = self.right.schema();
                    let null_cols: Vec<Column> = right_schema
                        .fields()
                        .iter()
                        .map(|f| Column::nulls(f.data_type, unmatched.len()))
                        .collect();
                    let r = Chunk::new(right_schema.clone(), null_cols)?;
                    out_chunks.push(reschema(l.zip(&r)?, self.schema.clone())?);
                }
            }
            JoinType::LeftSemi | JoinType::LeftAnti => {
                let want = self.join_type == JoinType::LeftSemi;
                let keep: Vec<usize> = matched_left
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| **m == want)
                    .map(|(i, _)| i)
                    .collect();
                out_chunks.push(reschema(build.take(&keep)?, self.schema.clone())?);
            }
        }

        if out_chunks.is_empty() {
            out_chunks.push(Chunk::empty(self.schema.clone()));
        }
        Ok(Box::new(out_chunks.into_iter().map(Ok)))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let left = self.left.bind_params(params)?;
        let right = self.right.bind_params(params)?;
        if left.is_none() && right.is_none() {
            return Ok(None);
        }
        Ok(Some(Arc::new(HashJoinExec {
            left: left.unwrap_or_else(|| self.left.clone()),
            right: right.unwrap_or_else(|| self.right.clone()),
            left_keys: self.left_keys.clone(),
            right_keys: self.right_keys.clone(),
            join_type: self.join_type,
            schema: self.schema.clone(),
        })))
    }
}

/// Rebuilds `chunk` under `schema` (same arity/types, possibly renamed
/// fields after join disambiguation).
fn reschema(chunk: Chunk, schema: Arc<Schema>) -> Result<Chunk> {
    Chunk::new(schema, chunk.columns().to_vec())
}

// ---------------------------------------------------------------------------
// Nested-loop join
// ---------------------------------------------------------------------------

/// Inner nested-loop join with an arbitrary (theta) predicate over the
/// combined row; `None` yields the cross product.
pub struct NestedLoopJoinExec {
    left: Arc<dyn PhysicalOperator>,
    right: Arc<dyn PhysicalOperator>,
    predicate: Option<Expr>,
    schema: Arc<Schema>,
}

impl NestedLoopJoinExec {
    /// Creates the join; the predicate is bound against the joined schema.
    pub fn new(
        left: Arc<dyn PhysicalOperator>,
        right: Arc<dyn PhysicalOperator>,
        predicate: Option<Expr>,
    ) -> Result<Self> {
        let schema = Arc::new(left.schema().join(&right.schema()));
        if let Some(p) = &predicate {
            p.bind(&schema)?; // validate early
        }
        Ok(NestedLoopJoinExec { left, right, predicate, schema })
    }
}

impl PhysicalOperator for NestedLoopJoinExec {
    fn name(&self) -> String {
        match &self.predicate {
            Some(p) => format!("NestedLoopJoin [{p}]"),
            None => "NestedLoopJoin [cross]".to_string(),
        }
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.left.clone(), self.right.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let left_chunks = self.left.execute()?.collect::<Result<Vec<_>>>()?;
        let right_chunks = self.right.execute()?.collect::<Result<Vec<_>>>()?;
        let left = if left_chunks.is_empty() {
            Chunk::empty(self.left.schema())
        } else {
            Chunk::concat(&left_chunks)?
        };
        let right = if right_chunks.is_empty() {
            Chunk::empty(self.right.schema())
        } else {
            Chunk::concat(&right_chunks)?
        };
        let bound = self
            .predicate
            .as_ref()
            .map(|p| p.bind(&self.schema))
            .transpose()?;

        let ctx = QueryContext::current();
        ctx.charge(left.memory_bytes() + right.memory_bytes());
        let mut out_chunks = Vec::new();
        let rn = right.num_rows();
        // Pair each left row with the whole right side, vectorized.
        for l in 0..left.num_rows() {
            // Each iteration pairs one left row against the entire right
            // side — heavy enough to warrant a per-iteration check.
            ctx.check()?;
            if rn == 0 {
                break;
            }
            let l_rep = left.take(&vec![l; rn])?;
            let pairs = reschema(l_rep.zip(&right)?, self.schema.clone())?;
            let filtered = match &bound {
                Some(b) => {
                    let mask = eval_predicate(b, &pairs)?;
                    pairs.filter(&mask)?
                }
                None => pairs,
            };
            if filtered.num_rows() > 0 {
                out_chunks.push(filtered);
            }
        }
        if out_chunks.is_empty() {
            out_chunks.push(Chunk::empty(self.schema.clone()));
        }
        Ok(Box::new(out_chunks.into_iter().map(Ok)))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let left = self.left.bind_params(params)?;
        let right = self.right.bind_params(params)?;
        let pred_has_params = self.predicate.as_ref().is_some_and(|p| p.has_params());
        if left.is_none() && right.is_none() && !pred_has_params {
            return Ok(None);
        }
        Ok(Some(Arc::new(NestedLoopJoinExec {
            left: left.unwrap_or_else(|| self.left.clone()),
            right: right.unwrap_or_else(|| self.right.clone()),
            predicate: self
                .predicate
                .as_ref()
                .map(|p| p.bind_params(params))
                .transpose()?,
            schema: self.schema.clone(),
        })))
    }
}

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

/// A single aggregate accumulator, shared by [`HashAggregateExec`] and the
/// semantic group-by operator.
#[derive(Debug, Clone)]
pub enum Accumulator {
    Count(i64),
    Sum { sum: f64, any: bool, int: bool },
    MinMax { best: Option<Scalar>, is_min: bool },
    Avg { sum: f64, n: i64 },
}

impl Accumulator {
    /// A fresh accumulator for `func` over an input of `input_type`.
    pub fn new(func: AggFunc, input_type: Option<DataType>) -> Accumulator {
        match func {
            AggFunc::CountStar | AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum {
                sum: 0.0,
                any: false,
                int: input_type == Some(DataType::Int64),
            },
            AggFunc::Min => Accumulator::MinMax { best: None, is_min: true },
            AggFunc::Max => Accumulator::MinMax { best: None, is_min: false },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Folds one row in. `CountStar`/`Count` callers pass `None` per
    /// counted row (Count rows with NULL input must be skipped by the
    /// caller); value-aggregates pass the row's scalar.
    pub fn update(&mut self, value: Option<&Scalar>) {
        match self {
            Accumulator::Count(n) => {
                // CountStar passes None-with-any-row; Count passes the value
                // and skips NULLs (handled by caller convention below).
                *n += 1;
            }
            Accumulator::Sum { sum, any, .. } => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *sum += v;
                    *any = true;
                }
            }
            Accumulator::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let ord = scalar_cmp(v, b);
                            if *is_min {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            }
                        }
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(v) = value.and_then(|v| v.as_f64()) {
                    *sum += v;
                    *n += 1;
                }
            }
        }
    }

    /// The aggregate result.
    pub fn finish(&self) -> Scalar {
        match self {
            Accumulator::Count(n) => Scalar::Int64(*n),
            Accumulator::Sum { sum, any, int } => {
                if !any {
                    Scalar::Null
                } else if *int {
                    Scalar::Int64(*sum as i64)
                } else {
                    Scalar::Float64(*sum)
                }
            }
            Accumulator::MinMax { best, .. } => best.clone().unwrap_or(Scalar::Null),
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float64(*sum / *n as f64)
                }
            }
        }
    }
}

/// Hash aggregation with optional grouping keys.
pub struct HashAggregateExec {
    input: Arc<dyn PhysicalOperator>,
    group_by: Vec<usize>,
    aggs: Vec<(AggSpec, Option<usize>)>,
    schema: Arc<Schema>,
}

impl HashAggregateExec {
    /// Creates the aggregate; resolves column names eagerly.
    pub fn new(
        input: Arc<dyn PhysicalOperator>,
        group_by: &[String],
        aggs: &[AggSpec],
    ) -> Result<Self> {
        let in_schema = input.schema();
        let mut group_idx = Vec::with_capacity(group_by.len());
        let mut fields = Vec::new();
        for name in group_by {
            group_idx.push(in_schema.index_of(name)?);
            fields.push(in_schema.field(name)?.clone());
        }
        let mut agg_cols = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let idx = agg.column.as_deref().map(|c| in_schema.index_of(c)).transpose()?;
            if idx.is_none() && agg.func != AggFunc::CountStar {
                return Err(Error::InvalidArgument(format!(
                    "{} requires an input column",
                    agg.func
                )));
            }
            fields.push(agg.output_field(&in_schema)?);
            agg_cols.push((agg.clone(), idx));
        }
        Ok(HashAggregateExec {
            input,
            group_by: group_idx,
            aggs: agg_cols,
            schema: Arc::new(Schema::new(fields)),
        })
    }
}

impl PhysicalOperator for HashAggregateExec {
    fn name(&self) -> String {
        format!(
            "HashAggregate [keys={}, aggs={}]",
            self.group_by.len(),
            self.aggs.len()
        )
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let in_schema = self.input.schema();
        let make_accs = || -> Vec<Accumulator> {
            self.aggs
                .iter()
                .map(|(spec, idx)| {
                    Accumulator::new(spec.func, idx.map(|i| in_schema.fields()[i].data_type))
                })
                .collect()
        };
        let mut groups: HashMap<Vec<Scalar>, Vec<Accumulator>> = HashMap::new();
        let mut key_order: Vec<Vec<Scalar>> = Vec::new();

        let ctx = QueryContext::current();
        for chunk in self.input.execute()? {
            ctx.check()?;
            let chunk = chunk?;
            for row in 0..chunk.num_rows() {
                let key: Vec<Scalar> = self
                    .group_by
                    .iter()
                    .map(|&k| chunk.columns()[k].get(row))
                    .collect();
                let accs = match groups.entry(key.clone()) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        key_order.push(key);
                        e.insert(make_accs())
                    }
                };
                for ((spec, idx), acc) in self.aggs.iter().zip(accs.iter_mut()) {
                    match (spec.func, idx) {
                        (AggFunc::CountStar, _) => acc.update(None),
                        (AggFunc::Count, Some(i)) => {
                            if chunk.columns()[*i].is_valid(row) {
                                acc.update(None);
                            }
                        }
                        (_, Some(i)) => {
                            let v = chunk.columns()[*i].get(row);
                            acc.update(Some(&v));
                        }
                        (_, None) => unreachable!("validated in constructor"),
                    }
                }
            }
        }

        // Global aggregate over empty input still yields one row.
        if self.group_by.is_empty() && groups.is_empty() {
            key_order.push(vec![]);
            groups.insert(vec![], make_accs());
        }

        // Deterministic output order: sorted group keys.
        key_order.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| scalar_cmp(x, y))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });

        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for key in &key_order {
            let accs = &groups[key];
            for (b, v) in builders.iter_mut().zip(key.iter()) {
                b.push(v.clone())?;
            }
            for (b, acc) in builders.iter_mut().skip(key.len()).zip(accs.iter()) {
                b.push(acc.finish())?;
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        let chunk = Chunk::new(self.schema.clone(), columns)?;
        Ok(Box::new(std::iter::once(Ok(chunk))))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        Ok(self.input.bind_params(params)?.map(|input| {
            Arc::new(HashAggregateExec {
                input,
                group_by: self.group_by.clone(),
                aggs: self.aggs.clone(),
                schema: self.schema.clone(),
            }) as Arc<dyn PhysicalOperator>
        }))
    }
}

// ---------------------------------------------------------------------------
// Sort / Limit / Distinct / Union
// ---------------------------------------------------------------------------

/// Total sort by one or more keys.
pub struct SortExec {
    input: Arc<dyn PhysicalOperator>,
    /// `(column index, ascending)`.
    keys: Vec<(usize, bool)>,
}

impl SortExec {
    /// Creates a sort over `(column, ascending)` name pairs.
    pub fn new(input: Arc<dyn PhysicalOperator>, keys: &[(String, bool)]) -> Result<Self> {
        let schema = input.schema();
        let keys = keys
            .iter()
            .map(|(name, asc)| Ok((schema.index_of(name)?, *asc)))
            .collect::<Result<Vec<_>>>()?;
        if keys.is_empty() {
            return Err(Error::InvalidArgument("sort requires keys".into()));
        }
        Ok(SortExec { input, keys })
    }
}

impl PhysicalOperator for SortExec {
    fn name(&self) -> String {
        format!("Sort [{} keys]", self.keys.len())
    }

    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let ctx = QueryContext::current();
        let chunks = self.input.execute()?.collect::<Result<Vec<_>>>()?;
        let all = if chunks.is_empty() {
            Chunk::empty(self.schema())
        } else {
            Chunk::concat(&chunks)?
        };
        ctx.charge(all.memory_bytes());
        // The comparison sort itself is not interruptible; one check
        // before it bounds overshoot to the sort of already-admitted rows.
        ctx.check()?;
        let mut indices: Vec<usize> = (0..all.num_rows()).collect();
        indices.sort_by(|&a, &b| {
            for &(k, asc) in &self.keys {
                let col = &all.columns()[k];
                let ord = scalar_cmp(&col.get(a), &col.get(b));
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable tie-break
        });
        let sorted = all.take(&indices)?;
        Ok(Box::new(std::iter::once(Ok(sorted))))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        Ok(self.input.bind_params(params)?.map(|input| {
            Arc::new(SortExec { input, keys: self.keys.clone() }) as Arc<dyn PhysicalOperator>
        }))
    }
}

/// Emits the first `n` rows. The count may be a prepared-statement
/// parameter ([`LimitCount::Param`]), in which case the operator only
/// executes after [`PhysicalOperator::bind_params`] resolves it.
pub struct LimitExec {
    input: Arc<dyn PhysicalOperator>,
    count: LimitCount,
}

impl LimitExec {
    /// A limit of `n` rows.
    pub fn new(input: Arc<dyn PhysicalOperator>, n: usize) -> Self {
        LimitExec { input, count: LimitCount::Fixed(n) }
    }

    /// A limit whose count is fixed or parameterized.
    pub fn with_count(input: Arc<dyn PhysicalOperator>, count: LimitCount) -> Self {
        LimitExec { input, count }
    }
}

impl PhysicalOperator for LimitExec {
    fn name(&self) -> String {
        format!("Limit [{}]", self.count)
    }

    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let LimitCount::Fixed(n) = self.count else {
            return Err(Error::InvalidArgument(format!(
                "cannot execute limit with unbound parameter {}; bind it first",
                self.count
            )));
        };
        let stream = self.input.execute()?;
        let mut remaining = n;
        Ok(Box::new(stream.map_while(move |chunk| {
            if remaining == 0 {
                return None;
            }
            let chunk = match chunk {
                Ok(c) => c,
                Err(e) => return Some(Err(e)),
            };
            if chunk.num_rows() <= remaining {
                remaining -= chunk.num_rows();
                Some(Ok(chunk))
            } else {
                let sliced = chunk.slice(0, remaining);
                remaining = 0;
                Some(sliced)
            }
        })))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let input = self.input.bind_params(params)?;
        if input.is_none() && matches!(self.count, LimitCount::Fixed(_)) {
            return Ok(None);
        }
        Ok(Some(Arc::new(LimitExec {
            input: input.unwrap_or_else(|| self.input.clone()),
            count: LimitCount::Fixed(self.count.resolve(params)?),
        })))
    }
}

/// Removes duplicate rows (first occurrence wins).
pub struct DistinctExec {
    input: Arc<dyn PhysicalOperator>,
}

impl DistinctExec {
    /// Duplicate elimination over all columns.
    pub fn new(input: Arc<dyn PhysicalOperator>) -> Self {
        DistinctExec { input }
    }
}

impl PhysicalOperator for DistinctExec {
    fn name(&self) -> String {
        "Distinct".to_string()
    }

    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn execute(&self) -> Result<ChunkStream> {
        let ctx = QueryContext::current();
        let mut seen: HashSet<Vec<Scalar>> = HashSet::new();
        let mut out = Vec::new();
        for chunk in self.input.execute()? {
            ctx.check()?;
            let chunk = chunk?;
            let mut keep = Vec::new();
            for row in 0..chunk.num_rows() {
                let key = chunk.row(row)?;
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            if !keep.is_empty() {
                out.push(chunk.take(&keep)?);
            }
        }
        if out.is_empty() {
            out.push(Chunk::empty(self.schema()));
        }
        Ok(Box::new(out.into_iter().map(Ok)))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        Ok(self
            .input
            .bind_params(params)?
            .map(|input| Arc::new(DistinctExec { input }) as Arc<dyn PhysicalOperator>))
    }
}

/// Concatenates same-schema inputs.
pub struct UnionExec {
    inputs: Vec<Arc<dyn PhysicalOperator>>,
}

impl UnionExec {
    /// A union over `inputs` (must be non-empty with matching schemas).
    pub fn new(inputs: Vec<Arc<dyn PhysicalOperator>>) -> Result<Self> {
        let first = inputs
            .first()
            .ok_or_else(|| Error::InvalidArgument("UNION of zero inputs".into()))?;
        for input in &inputs[1..] {
            if input.schema().fields() != first.schema().fields() {
                return Err(Error::InvalidArgument("UNION schema mismatch".into()));
            }
        }
        Ok(UnionExec { inputs })
    }
}

impl PhysicalOperator for UnionExec {
    fn name(&self) -> String {
        format!("Union [{}]", self.inputs.len())
    }

    fn schema(&self) -> Arc<Schema> {
        self.inputs[0].schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        self.inputs.clone()
    }

    fn execute(&self) -> Result<ChunkStream> {
        let mut streams = Vec::with_capacity(self.inputs.len());
        for input in &self.inputs {
            streams.push(input.execute()?);
        }
        Ok(Box::new(streams.into_iter().flatten()))
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let bound: Vec<Option<Arc<dyn PhysicalOperator>>> = self
            .inputs
            .iter()
            .map(|i| i.bind_params(params))
            .collect::<Result<Vec<_>>>()?;
        if bound.iter().all(|b| b.is_none()) {
            return Ok(None);
        }
        Ok(Some(Arc::new(UnionExec {
            inputs: bound
                .into_iter()
                .zip(self.inputs.iter())
                .map(|(b, orig)| b.unwrap_or_else(|| orig.clone()))
                .collect(),
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_storage::Bitmap;
    use crate::physical::collect_table;
    use cx_expr::{col, lit};

    fn products() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "parka", "boots", "mug", "coat"]),
                Column::from_f64(vec![30.0, 80.0, 25.0, 8.0, 60.0]),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    fn categories() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("label", DataType::Utf8),
                Field::new("kind", DataType::Utf8),
            ]),
            vec![
                Column::from_strings(["boots", "parka", "hat"]),
                Column::from_strings(["shoes", "jacket", "headwear"]),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    #[test]
    fn filter_and_project() {
        let filter = Arc::new(FilterExec::new(products(), &col("price").gt(lit(20.0))).unwrap());
        let project = ProjectExec::new(
            filter,
            &[
                (col("name"), "name".to_string()),
                (col("price").mul(lit(2.0)), "double".to_string()),
            ],
        )
        .unwrap();
        let out = collect_table(&project).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.schema().names(), vec!["name", "double"]);
        assert_eq!(out.row(0).unwrap()[1], Scalar::Float64(60.0));
    }

    #[test]
    fn filter_type_check() {
        assert!(FilterExec::new(products(), &col("price").add(lit(1.0))).is_err());
        assert!(FilterExec::new(products(), &col("missing").gt(lit(1.0))).is_err());
    }

    #[test]
    fn hash_join_inner() {
        let join = HashJoinExec::new(
            products(),
            categories(),
            &[("name".to_string(), "label".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let out = collect_table(&join).unwrap();
        // boots matches twice (rows 1 and 3), parka once.
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().len(), 5);
    }

    #[test]
    fn hash_join_left_outer_pads_nulls() {
        let join = HashJoinExec::new(
            products(),
            categories(),
            &[("name".to_string(), "label".to_string())],
            JoinType::Left,
        )
        .unwrap();
        let out = collect_table(&join).unwrap();
        assert_eq!(out.num_rows(), 5);
        let kind = out.column_by_name("kind").unwrap();
        assert_eq!(kind.null_count(), 2); // mug, coat unmatched
    }

    #[test]
    fn hash_join_semi_anti() {
        let semi = HashJoinExec::new(
            products(),
            categories(),
            &[("name".to_string(), "label".to_string())],
            JoinType::LeftSemi,
        )
        .unwrap();
        let out = collect_table(&semi).unwrap();
        assert_eq!(out.num_rows(), 3); // two boots + one parka
        assert_eq!(out.schema().len(), 3);

        let anti = HashJoinExec::new(
            products(),
            categories(),
            &[("name".to_string(), "label".to_string())],
            JoinType::LeftAnti,
        )
        .unwrap();
        let out = collect_table(&anti).unwrap();
        assert_eq!(out.num_rows(), 2); // mug, coat
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let t = Table::from_columns(
            Schema::new(vec![Field::new("k", DataType::Utf8)]),
            vec![Column::Utf8 {
                values: vec!["a".into(), "b".into()],
                validity: Some(Bitmap::from_bools([true, false])),
            }],
        )
        .unwrap();
        let scan: Arc<dyn PhysicalOperator> = Arc::new(TableScanExec::new(Arc::new(t)));
        let join = HashJoinExec::new(
            scan.clone(),
            scan,
            &[("k".to_string(), "k".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        let out = collect_table(&join).unwrap();
        assert_eq!(out.num_rows(), 1); // only "a" = "a"
    }

    #[test]
    fn nested_loop_theta_join() {
        let join = NestedLoopJoinExec::new(
            products(),
            categories(),
            Some(col("name").eq(col("label")).and(col("price").gt(lit(26.0)))),
        )
        .unwrap();
        let out = collect_table(&join).unwrap();
        assert_eq!(out.num_rows(), 2); // boots@30, parka@80
    }

    #[test]
    fn nested_loop_cross_product() {
        let join = NestedLoopJoinExec::new(products(), categories(), None).unwrap();
        let out = collect_table(&join).unwrap();
        assert_eq!(out.num_rows(), 15);
    }

    #[test]
    fn aggregate_grouped() {
        let agg = HashAggregateExec::new(
            products(),
            &["name".to_string()],
            &[
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "price", "total"),
                AggSpec::new(AggFunc::Avg, "price", "avg"),
                AggSpec::new(AggFunc::Min, "price", "lo"),
                AggSpec::new(AggFunc::Max, "price", "hi"),
            ],
        )
        .unwrap();
        let out = collect_table(&agg).unwrap();
        assert_eq!(out.num_rows(), 4);
        // Sorted by key: boots, coat, mug, parka.
        let row = out.row(0).unwrap();
        assert_eq!(row[0], Scalar::from("boots"));
        assert_eq!(row[1], Scalar::Int64(2));
        assert_eq!(row[2], Scalar::Float64(55.0));
        assert_eq!(row[3], Scalar::Float64(27.5));
        assert_eq!(row[4], Scalar::Float64(25.0));
        assert_eq!(row[5], Scalar::Float64(30.0));
    }

    #[test]
    fn aggregate_global_on_empty_input() {
        let empty = Arc::new(FilterExec::new(products(), &lit(false).or(col("price").lt(lit(0.0)))).unwrap());
        let agg = HashAggregateExec::new(
            empty,
            &[],
            &[AggSpec::count_star("n"), AggSpec::new(AggFunc::Sum, "price", "s")],
        )
        .unwrap();
        let out = collect_table(&agg).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0).unwrap()[0], Scalar::Int64(0));
        assert_eq!(out.row(0).unwrap()[1], Scalar::Null);
    }

    #[test]
    fn count_skips_nulls_countstar_does_not() {
        let t = Table::from_columns(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Column::Int64 {
                values: vec![1, 0, 3],
                validity: Some(Bitmap::from_bools([true, false, true])),
            }],
        )
        .unwrap();
        let scan = Arc::new(TableScanExec::new(Arc::new(t)));
        let agg = HashAggregateExec::new(
            scan,
            &[],
            &[
                AggSpec::count_star("all"),
                AggSpec::new(AggFunc::Count, "x", "nonnull"),
            ],
        )
        .unwrap();
        let out = collect_table(&agg).unwrap();
        assert_eq!(out.row(0).unwrap(), vec![Scalar::Int64(3), Scalar::Int64(2)]);
    }

    #[test]
    fn sort_multi_key() {
        let sort = SortExec::new(
            products(),
            &[("name".to_string(), true), ("price".to_string(), false)],
        )
        .unwrap();
        let out = collect_table(&sort).unwrap();
        let names: Vec<Scalar> = (0..5).map(|i| out.row(i).unwrap()[1].clone()).collect();
        assert_eq!(
            names,
            vec![
                Scalar::from("boots"),
                Scalar::from("boots"),
                Scalar::from("coat"),
                Scalar::from("mug"),
                Scalar::from("parka")
            ]
        );
        // boots sorted by price descending: 30 before 25.
        assert_eq!(out.row(0).unwrap()[2], Scalar::Float64(30.0));
    }

    #[test]
    fn limit_across_chunks() {
        let table = Table::from_rows(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            (0..10).map(|i| vec![Scalar::Int64(i)]).collect(),
        )
        .unwrap()
        .rechunk(3)
        .unwrap();
        let scan = Arc::new(TableScanExec::new(Arc::new(table)));
        let limit = LimitExec::new(scan, 7);
        let out = collect_table(&limit).unwrap();
        assert_eq!(out.num_rows(), 7);
        assert_eq!(out.row(6).unwrap()[0], Scalar::Int64(6));
    }

    #[test]
    fn distinct_keeps_first() {
        let distinct = DistinctExec::new(categories());
        let out = collect_table(&distinct).unwrap();
        assert_eq!(out.num_rows(), 3);

        let dup = UnionExec::new(vec![categories(), categories()]).unwrap();
        let distinct = DistinctExec::new(Arc::new(dup));
        let out = collect_table(&distinct).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn union_schema_mismatch_rejected() {
        assert!(UnionExec::new(vec![products(), categories()]).is_err());
        assert!(UnionExec::new(vec![]).is_err());
    }

    #[test]
    fn scalar_cmp_total_order() {
        let mut vals = [
            Scalar::from("b"),
            Scalar::Null,
            Scalar::Int64(5),
            Scalar::Float64(2.5),
            Scalar::from("a"),
            Scalar::Bool(true),
        ];
        vals.sort_by(scalar_cmp);
        assert_eq!(vals[0], Scalar::Null);
        assert_eq!(vals[1], Scalar::Bool(true));
        assert_eq!(vals[2], Scalar::Float64(2.5));
        assert_eq!(vals[3], Scalar::Int64(5));
        assert_eq!(vals[4], Scalar::from("a"));
    }
}

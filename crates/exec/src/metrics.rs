//! Per-operator execution metrics (EXPLAIN ANALYZE-style reporting).

use crate::physical::{ChunkStream, PhysicalOperator};
use cx_obs::Histogram;
use cx_storage::{Chunk, Result, Schema};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counters for one operator.
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    rows_out: AtomicU64,
    chunks_out: AtomicU64,
    elapsed_ns: AtomicU64,
    executions: AtomicU64,
    /// Per-execution wall-time distribution (setup + chunk production),
    /// recorded once per `execute()` when its stream is dropped.
    latency: Histogram,
}

impl OperatorMetrics {
    /// Rows emitted.
    pub fn rows_out(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Chunks emitted.
    pub fn chunks_out(&self) -> u64 {
        self.chunks_out.load(Ordering::Relaxed)
    }

    /// Wall time spent producing output, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns.load(Ordering::Relaxed)
    }

    /// Number of `execute()` calls.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Per-execution wall-time distribution. Quantiles are approximate
    /// (log-linear buckets, ≤ ~3.2% relative error); count/sum/max exact.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Folds one externally driven execution into the counters — for
    /// operators whose work is consumed outside the chunk-stream path
    /// (e.g. a shared sweep read through its outcome rather than its
    /// stream), so they still show up in reports without materializing
    /// a throwaway stream.
    pub fn record(&self, rows: u64, chunks: u64, elapsed: std::time::Duration) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
        self.chunks_out.fetch_add(chunks, Ordering::Relaxed);
        self.elapsed_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency.record_duration(elapsed);
    }
}

/// A registry of operator metrics keyed by operator label.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    operators: RwLock<BTreeMap<String, Arc<OperatorMetrics>>>,
    /// Free-form execution-environment annotation (e.g. the resolved SIMD
    /// kernel dispatch), printed at the top of [`ExecMetrics::report`] so
    /// recorded numbers are self-describing.
    environment: RwLock<Option<String>>,
}

impl ExecMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics handle for `label`, created on first use.
    pub fn handle(&self, label: &str) -> Arc<OperatorMetrics> {
        if let Some(m) = self.operators.read().get(label) {
            return m.clone();
        }
        self.operators
            .write()
            .entry(label.to_string())
            .or_default()
            .clone()
    }

    /// Annotates this registry with the execution environment the numbers
    /// were recorded under (e.g. `simd f32=avx512 f16=f16c+avx512
    /// int8=vnni512`). Shown as the first line of [`ExecMetrics::report`].
    pub fn set_environment(&self, env: impl Into<String>) {
        *self.environment.write() = Some(env.into());
    }

    /// The environment annotation, if one was set.
    pub fn environment(&self) -> Option<String> {
        self.environment.read().clone()
    }

    /// Snapshot of `(label, rows_out, elapsed_ns)` sorted by label.
    pub fn snapshot(&self) -> Vec<(String, u64, u64)> {
        self.operators
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.rows_out(), v.elapsed_ns()))
            .collect()
    }

    /// All `(label, metrics)` handles sorted by label — for exporters
    /// that need the full counters and latency histograms.
    pub fn handles(&self) -> Vec<(String, Arc<OperatorMetrics>)> {
        self.operators
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Human-readable report with per-execution latency quantiles.
    pub fn report(&self) -> String {
        let mut out = String::new();
        if let Some(env) = self.environment() {
            out.push_str(&format!("environment: {env}\n"));
        }
        out.push_str("operator | rows_out | time_ms | p50_ms | p95_ms | p99_ms | max_ms\n");
        for (label, m) in self.handles() {
            let lat = m.latency().snapshot();
            out.push_str(&format!(
                "{label} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3}\n",
                m.rows_out(),
                m.elapsed_ns() as f64 / 1e6,
                lat.p50 as f64 / 1e6,
                lat.p95 as f64 / 1e6,
                lat.p99 as f64 / 1e6,
                lat.max as f64 / 1e6,
            ));
        }
        out
    }
}

/// Wraps an operator, recording produced rows and wall time into a shared
/// [`OperatorMetrics`].
pub struct InstrumentedExec {
    inner: Arc<dyn PhysicalOperator>,
    metrics: Arc<OperatorMetrics>,
}

impl InstrumentedExec {
    /// Instruments `inner`, registering under its `name()` in `registry`.
    pub fn new(inner: Arc<dyn PhysicalOperator>, registry: &ExecMetrics) -> Self {
        let metrics = registry.handle(&inner.name());
        InstrumentedExec { inner, metrics }
    }
}

impl PhysicalOperator for InstrumentedExec {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        self.inner.children()
    }

    fn scan_signature(&self) -> Option<crate::shared::ScanSignature> {
        self.inner.scan_signature()
    }

    fn inject_shared_scan(&self, state: crate::shared::SharedScanState) -> bool {
        self.inner.inject_shared_scan(state)
    }

    fn bind_params(
        &self,
        params: &[cx_storage::Scalar],
    ) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        // The bound tree shares this wrapper's metrics handle: prepared
        // executions of one template aggregate under one label.
        Ok(self.inner.bind_params(params)?.map(|inner| {
            Arc::new(InstrumentedExec { inner, metrics: self.metrics.clone() })
                as Arc<dyn PhysicalOperator>
        }))
    }

    fn execute(&self) -> Result<ChunkStream> {
        self.metrics.executions.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let stream = self.inner.execute()?;
        // Setup cost (eager operators do all work here) is charged upfront.
        let setup_ns = start.elapsed().as_nanos() as u64;
        self.metrics.elapsed_ns.fetch_add(setup_ns, Ordering::Relaxed);
        Ok(Box::new(InstrumentedStream {
            inner: stream,
            metrics: self.metrics.clone(),
            execution_ns: setup_ns,
        }))
    }
}

/// Wraps one execution's chunk stream: accumulates per-chunk wall time
/// into the shared counters as chunks are pulled, and records the
/// execution's total wall time (setup + production) into the operator's
/// latency histogram when the stream is dropped.
struct InstrumentedStream {
    inner: ChunkStream,
    metrics: Arc<OperatorMetrics>,
    execution_ns: u64,
}

impl Iterator for InstrumentedStream {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Result<Chunk>> {
        let t = Instant::now();
        let item = self.inner.next()?;
        let ns = t.elapsed().as_nanos() as u64;
        self.execution_ns += ns;
        self.metrics.elapsed_ns.fetch_add(ns, Ordering::Relaxed);
        if let Ok(chunk) = &item {
            self.metrics.rows_out.fetch_add(chunk.num_rows() as u64, Ordering::Relaxed);
            self.metrics.chunks_out.fetch_add(1, Ordering::Relaxed);
        }
        Some(item)
    }
}

impl Drop for InstrumentedStream {
    fn drop(&mut self) {
        self.metrics.latency.record(self.execution_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::TableScanExec;
    use crate::physical::collect_table;
    use cx_storage::{Column, Field, Table};

    fn scan() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![Field::new("x", cx_storage::DataType::Int64)]),
            vec![Column::from_i64((0..100).collect())],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    #[test]
    fn instrumented_counts_rows() {
        let registry = ExecMetrics::new();
        let op = InstrumentedExec::new(scan(), &registry);
        collect_table(&op).unwrap();
        let m = registry.handle(&op.name());
        assert_eq!(m.rows_out(), 100);
        assert_eq!(m.chunks_out(), 1);
        assert_eq!(m.executions(), 1);
        // Second execution accumulates.
        collect_table(&op).unwrap();
        assert_eq!(m.rows_out(), 200);
        assert_eq!(m.executions(), 2);
    }

    #[test]
    fn report_contains_labels() {
        let registry = ExecMetrics::new();
        let op = InstrumentedExec::new(scan(), &registry);
        collect_table(&op).unwrap();
        let report = registry.report();
        assert!(report.contains("TableScan"));
        assert!(report.contains("100"));
    }

    #[test]
    fn latency_histogram_records_per_execution() {
        let registry = ExecMetrics::new();
        let op = InstrumentedExec::new(scan(), &registry);
        collect_table(&op).unwrap();
        collect_table(&op).unwrap();
        let m = registry.handle(&op.name());
        assert_eq!(m.latency().count(), 2);
        assert!(m.latency().max() > 0);
        // External record() feeds the same histogram.
        m.record(10, 1, std::time::Duration::from_micros(50));
        assert_eq!(m.latency().count(), 3);
        let report = registry.report();
        assert!(report.contains("p99_ms"), "{report}");
    }

    #[test]
    fn handle_is_shared() {
        let registry = ExecMetrics::new();
        let a = registry.handle("op");
        let b = registry.handle("op");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.snapshot().len(), 1);
    }
}

//! Morsel-style parallel chunk processing.
//!
//! The "scale up the execution" rung of Figure 4: chunks are morsels pulled
//! from a shared atomic counter by crossbeam scoped worker threads, with
//! results written back in order (so parallel execution is deterministic).

use cx_storage::{Chunk, Error, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every chunk using `threads` workers, preserving order.
///
/// `threads == 0` or `1` runs inline. Errors from any worker abort the call.
pub fn parallel_map_chunks<F>(chunks: &[Chunk], threads: usize, f: F) -> Result<Vec<Chunk>>
where
    F: Fn(&Chunk) -> Result<Chunk> + Sync,
{
    if threads <= 1 || chunks.len() <= 1 {
        return chunks.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<Chunk>>>> =
        (0..chunks.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(chunks.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let out = f(&chunks[i]);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    })
    .map_err(|_| Error::InvalidArgument("parallel worker panicked".into()))?;

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled by workers")
        })
        .collect()
}

/// Runs `f` over the partitions of `0..n` (at most `parts` contiguous
/// spans, via [`partition_ranges`]) on scoped worker threads, returning
/// results in range order.
///
/// This is the morsel driver for value-level (non-chunk) work — e.g. the
/// semantic join's probe tiles, where each worker scans a span of probe
/// vectors against the build-side arena. `parts <= 1` (or a single
/// partition) runs inline.
pub fn parallel_map_ranges<T, F>(n: usize, parts: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let ranges = partition_ranges(n, parts.max(1));
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                scope.spawn(move |_| f(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel range worker panicked"))
            .collect()
    })
    .expect("scoped workers joined")
}

/// Splits the row range `0..n` into at most `parts` contiguous spans of
/// near-equal size (used to partition build/probe work).
pub fn partition_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || parts == 0 {
        return vec![];
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_expr::{col, eval_predicate, lit};
    use cx_storage::{Column, Field, Schema, Table};

    fn chunks() -> Vec<Chunk> {
        Table::from_columns(
            Schema::new(vec![Field::new("x", cx_storage::DataType::Int64)]),
            vec![Column::from_i64((0..1000).collect())],
        )
        .unwrap()
        .rechunk(100)
        .unwrap()
        .chunks()
        .to_vec()
    }

    #[test]
    fn parallel_matches_serial() {
        let chunks = chunks();
        let schema = Schema::new(chunks[0].schema().fields().to_vec());
        let pred = col("x").gt(lit(500i64)).bind(&schema).unwrap();
        let run = |threads| {
            parallel_map_chunks(&chunks, threads, |c| {
                let mask = eval_predicate(&pred, c)?;
                c.filter(&mask)
            })
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        let rows = |cs: &[Chunk]| cs.iter().map(|c| c.num_rows()).sum::<usize>();
        assert_eq!(rows(&serial), 499);
        assert_eq!(rows(&serial), rows(&parallel));
        // Order preserved.
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s, p);
        }
    }

    #[test]
    fn more_threads_than_chunks() {
        let chunks = chunks();
        let out = parallel_map_chunks(&chunks[..2], 16, |c| Ok(c.clone())).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn error_propagates() {
        let chunks = chunks();
        let res = parallel_map_chunks(&chunks, 4, |c| {
            if c.row(0).unwrap()[0] == cx_storage::Scalar::Int64(500) {
                Err(Error::InvalidArgument("boom".into()))
            } else {
                Ok(c.clone())
            }
        });
        assert!(res.is_err());
    }

    #[test]
    fn map_ranges_matches_serial() {
        let serial: Vec<usize> = parallel_map_ranges(100, 1, |r| r.sum());
        let parallel: Vec<usize> = parallel_map_ranges(100, 7, |r| r.sum());
        assert_eq!(serial.iter().sum::<usize>(), parallel.iter().sum::<usize>());
        assert_eq!(parallel.len(), 7);
        // Order is preserved: first range covers the lowest indices.
        let firsts: Vec<usize> = parallel_map_ranges(100, 7, |r| r.start);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        assert!(parallel_map_ranges(0, 4, |r| r.len()).is_empty());
    }

    #[test]
    fn partition_ranges_cover_exactly() {
        for (n, parts) in [(10, 3), (10, 10), (10, 20), (0, 4), (7, 1)] {
            let ranges = partition_ranges(n, parts);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n, "n={n} parts={parts}");
            // Contiguous and ordered.
            let mut expected = 0;
            for r in &ranges {
                assert_eq!(r.start, expected);
                expected = r.end;
            }
        }
        assert!(partition_ranges(5, 0).is_empty());
    }
}

//! The shared-scan (multi-query) contract.
//!
//! Concurrently queued queries often sweep the *same* candidate panel: a
//! storm of semantic filters over one table's column, or semantic joins
//! that all build against the same right side. The `cx_mqo` subsystem
//! merges such queries into one panel sweep — but to merge scans it must
//! be able to (a) recognize that two physical plans scan the same panel
//! and (b) hand each plan its precomputed slice of the shared score tile.
//! This module is that contract. It deliberately lives in `cx_exec`, next
//! to [`PhysicalOperator`], so any operator crate can opt in without
//! depending on the sharing machinery.
//!
//! ## The contract
//!
//! An operator that can participate overrides two [`PhysicalOperator`]
//! methods (both default to "not shareable"):
//!
//! * [`PhysicalOperator::scan_signature`] returns a [`ScanSignature`]
//!   describing its sweep: which child subtree produces the candidate
//!   panel (identified *semantically* by the logical fingerprint of that
//!   subtree, not by operator identity), which UTF8 column feeds the
//!   panel, the embedding model, the storage tier, the score arithmetic
//!   family ([`ScanKind`]), and the per-query epilogue inputs (probe
//!   source and threshold).
//! * [`PhysicalOperator::inject_shared_scan`] accepts a one-shot
//!   [`SharedScanState`] — the operator's slice of a shared sweep — which
//!   the **next** `execute()` call consumes instead of scanning. The
//!   operator remains fully functional without injection; a state that is
//!   never consumed, or an execution that never received one, both run
//!   the ordinary solo scan.
//!
//! Two signatures may merge iff their [`ScanSignature::group_key`]s are
//! equal: same kind, same candidate subtree fingerprint, same candidate
//! column, same model, same storage tier. Probe and threshold are
//! *excluded* from the key — they are per-query epilogue, applied to each
//! query's row slice of the shared score tile.
//!
//! ## Soundness
//!
//! Sharing is sound because of two invariants upheld elsewhere in the
//! tree and relied on here:
//!
//! 1. **Determinism** — the engine is deterministic, so two subtrees with
//!    equal logical fingerprints (lowered under the same optimizer
//!    configuration, against the same catalog version) produce the same
//!    chunks. The serving layer guarantees the parenthetical by mixing
//!    its config fingerprint into the group key and never grouping
//!    across catalog versions.
//! 2. **Blocked ≡ pairwise** — the blocked kernels (`cx_vector::block`)
//!    are bit-identical to the pairwise kernels, so scoring a *stacked*
//!    probe panel row-by-row against the candidate panel yields exactly
//!    the scores each query's solo scan would have computed. A shared
//!    sweep changes the schedule, never the arithmetic.
//!
//! Operators must preserve invariant 2 when consuming an injected state:
//! the injected scores must be indistinguishable (to the bit) from the
//! scores the solo scan computes.

use crate::physical::PhysicalOperator;
use std::collections::HashMap;
use std::sync::Arc;

/// The score-arithmetic family of a shareable scan. Scans of different
/// kinds never merge, even over the same panel: their sweeps apply
/// different (if mathematically equivalent) floating-point expressions,
/// and bit-identity is part of the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Cosine of a raw probe against raw candidate rows with cached
    /// norms: `dot / (probe_norm * candidate_norm)`, zero norms scoring
    /// 0.0 (the semantic filter's arithmetic).
    CosineFilter,
    /// Raw dot products over prenormalized probe and candidate panels
    /// (the blocked semantic join's arithmetic).
    DotJoin,
}

/// Where a query's probe vectors come from.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSource {
    /// A single literal string (e.g. a semantic filter's target).
    Literal(String),
    /// The distinct valid UTF8 values of `column` in the output of
    /// `children()[child]` (e.g. a semantic join's probe side).
    /// `fingerprint` is the logical fingerprint of that subtree when
    /// known: members of one group whose probe fingerprints match read
    /// the same values, so the group executor materializes the subtree
    /// once for all of them (purely an execution-sharing hint — probe
    /// *rows* dedupe by value regardless).
    Child { child: usize, column: usize, fingerprint: Option<u64> },
}

/// A shareable scan's identity plus its per-query epilogue inputs.
///
/// See the [module docs](self) for the full contract. Everything that
/// determines *which panel is swept and how scores are computed* feeds
/// [`ScanSignature::group_key`]; `probe` and `threshold` are per-query
/// and do not.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSignature {
    /// Score arithmetic family.
    pub kind: ScanKind,
    /// Logical fingerprint ([`crate::logical::LogicalPlan::fingerprint`])
    /// of the subtree producing the candidate panel.
    pub candidate_fingerprint: u64,
    /// Index into `children()` of the candidate-producing subtree.
    pub candidate_child: usize,
    /// UTF8 column index (in the candidate child's output schema) whose
    /// distinct valid values form the candidate panel.
    pub candidate_column: usize,
    /// Embedding model name.
    pub model: String,
    /// Storage-tier discriminant of the sweep (`cx_embed::QuantTier` as
    /// `u8`; 0 = f32). Tiers score different bits, so they never merge.
    pub quant: u8,
    /// This query's probe vectors (epilogue input, not part of the key).
    pub probe: ProbeSource,
    /// This query's match threshold (epilogue input, not part of the key).
    pub threshold: f32,
}

impl ScanSignature {
    /// The key under which scans may merge: a stable FNV-1a hash of
    /// everything *except* the per-query epilogue (`probe`, `threshold`).
    /// Serving layers should additionally mix in their optimizer-config
    /// fingerprint (configuration can change how the candidate subtree
    /// was lowered) and never group across catalog versions.
    pub fn group_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&[
            match self.kind {
                ScanKind::CosineFilter => 1,
                ScanKind::DotJoin => 2,
            },
            self.quant,
        ]);
        eat(&self.candidate_fingerprint.to_le_bytes());
        eat(&(self.candidate_child as u64).to_le_bytes());
        eat(&(self.candidate_column as u64).to_le_bytes());
        eat(self.model.as_bytes());
        h
    }
}

/// One query's slice of a shared sweep, ready for injection.
///
/// Values are keyed by *string* (the embedded text), not by row id: the
/// consuming operator re-derives its own distinct-value numbering at
/// execute time, so injection survives any chunking of the input.
#[derive(Debug, Clone)]
pub enum SharedScanState {
    /// For [`ScanKind::CosineFilter`]: candidate value → score against
    /// this query's probe. Values absent from the map (impossible when
    /// the candidate subtrees really were identical; possible only under
    /// a mis-grouped injection) must be re-scored solo by the consumer.
    FilterScores(HashMap<String, f32>),
    /// For [`ScanKind::DotJoin`]: the complete value-level match list
    /// `(probe value, candidate value, score)` at this query's threshold.
    JoinMatches(Vec<(String, String, f32)>),
}

/// Finds the first (pre-order) shareable scan in `op`'s tree, returning
/// the operator node together with its signature. Plans with several
/// shareable scans share only the topmost one — the others run solo
/// inside the same execution.
pub fn find_shared_scan(
    op: &Arc<dyn PhysicalOperator>,
) -> Option<(Arc<dyn PhysicalOperator>, ScanSignature)> {
    if let Some(sig) = op.scan_signature() {
        return Some((op.clone(), sig));
    }
    for child in op.children() {
        if let Some(found) = find_shared_scan(&child) {
            return Some(found);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(threshold: f32, probe: ProbeSource) -> ScanSignature {
        ScanSignature {
            kind: ScanKind::CosineFilter,
            candidate_fingerprint: 0xfeed,
            candidate_child: 0,
            candidate_column: 1,
            model: "m".into(),
            quant: 0,
            probe,
            threshold,
        }
    }

    #[test]
    fn group_key_ignores_epilogue_inputs() {
        let a = sig(0.8, ProbeSource::Literal("boots".into()));
        let b = sig(0.95, ProbeSource::Literal("parka".into()));
        assert_eq!(a.group_key(), b.group_key());
    }

    #[test]
    fn group_key_separates_panels_models_kinds_tiers() {
        let base = sig(0.8, ProbeSource::Literal("x".into()));
        let mut other_panel = base.clone();
        other_panel.candidate_fingerprint ^= 1;
        let mut other_model = base.clone();
        other_model.model = "m2".into();
        let mut other_kind = base.clone();
        other_kind.kind = ScanKind::DotJoin;
        let mut other_tier = base.clone();
        other_tier.quant = 2;
        let mut other_column = base.clone();
        other_column.candidate_column = 0;
        for s in [other_panel, other_model, other_kind, other_tier, other_column] {
            assert_ne!(base.group_key(), s.group_key(), "{s:?}");
        }
    }
}

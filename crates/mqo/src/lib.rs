//! `cx_mqo` — multi-query scan sharing: one panel sweep answers many
//! queued queries.
//!
//! The rungs below this crate amortize similarity work *within* a query
//! (blocked kernels over `VectorArena` panels) and across queries'
//! *embedding* fills (`cx_serve`'s cross-query batcher). But every
//! admitted query still sweeps its candidate panel alone — a storm of
//! semantic filters over one table re-reads and re-scores the same panel
//! once per query, and a storm of semantic joins re-embeds and re-sweeps
//! the same build side. This crate closes that gap: queries whose scans
//! carry equal [`ScanSignature::group_key`]s (same candidate subtree,
//! column, model, storage tier, score arithmetic — see
//! [`cx_exec::shared`] for the contract) merge into one
//! [`SharedScanExec`], which
//!
//! 1. executes the candidate subtree **once** and embeds its distinct
//!    values into one panel,
//! 2. gathers every member query's probe vectors into one **stacked,
//!    deduplicated probe panel** (a filter contributes its target; a join
//!    contributes its probe side's distinct values — identical probe rows
//!    across queries are swept once),
//! 3. runs **one** blocked sweep — `scores_matrix` tiles for f32,
//!    quantized-panel kernels for f16/int8 — producing the full score
//!    tile, and
//! 4. slices the tile per member into a [`SharedScanState`] that each
//!    query's own operator consumes as its epilogue (threshold masks,
//!    pair expansion, and everything above the scan stay per-query).
//!
//! **Bit-identity.** The sweep applies exactly the member operators' solo
//! arithmetic — raw-dot-over-norms for filters, prenormalized dots for
//! blocked joins, the same quantized-panel kernels per tier — and the
//! blocked kernels are bit-identical to the pairwise rungs by
//! construction. Shared execution changes the schedule, never the
//! arithmetic: results equal solo execution to the bit.
//!
//! The serving layer (`cx_serve`) owns the queueing policy (who waits how
//! long to form a group); this crate owns the shared plan itself.

use cx_embed::{EmbeddingCache, QuantTier};
use cx_exec::shared::{ProbeSource, ScanKind, ScanSignature, SharedScanState};
use cx_exec::{ChunkStream, PhysicalOperator};
use cx_storage::{Chunk, Column, DataType, Error, Field, QueryContext, Result, Schema};
use cx_vector::block::{dot_block_threshold, scores_matrix, TILE};
use cx_vector::{QuantizedArena, VectorArena};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One member query's contribution to a shared scan.
pub struct MemberSpec {
    /// Where this member's probe vectors come from.
    pub probe: MemberProbe,
    /// This member's match threshold (its epilogue applies it to its
    /// slice of the shared score tile).
    pub threshold: f32,
}

/// A member's probe source, resolved to executable form.
pub enum MemberProbe {
    /// One literal probe string (semantic filter target).
    Literal(String),
    /// The distinct valid UTF8 values of `column` in `op`'s output
    /// (semantic join probe side). `fingerprint`, when known, lets the
    /// group materialize identical subtrees once.
    Subtree { op: Arc<dyn PhysicalOperator>, column: usize, fingerprint: Option<u64> },
}

/// Counters describing one shared sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Queries merged into this sweep.
    pub members: usize,
    /// Rows in the shared candidate panel.
    pub candidate_rows: usize,
    /// Distinct probe rows actually swept.
    pub probe_rows_unique: usize,
    /// Probe rows the members would have swept solo (pre-dedup).
    pub probe_rows_total: usize,
    /// Candidate-panel row materializations avoided versus solo
    /// execution: solo, each member embeds/gathers the panel itself;
    /// shared, the group pays once.
    pub panel_rows_saved: u64,
    /// Similarity pairs avoided by cross-query probe deduplication.
    pub pairs_saved: u64,
}

/// Shared score storage, shaped per scan kind.
///
/// Filters have one probe row per member, so the full `probes ×
/// candidates` tile is small and every member needs its whole row —
/// dense is right. Joins stack *many* probe rows per member and their
/// epilogues consume only above-threshold pairs; materializing the dense
/// tile would turn a compute-bound sweep into a memory-bound one
/// (allocate + write + re-scan `p × c` floats several times), so the
/// sweep emits only the pairs clearing the group's lowest threshold.
enum SweepScores {
    /// Row-major `probes.len() × candidates.len()` score tile.
    Dense(Vec<f32>),
    /// `(probe row, candidate row, score)` for every pair at or above
    /// the minimum member threshold.
    Hits(Vec<(u32, u32, f32)>),
}

/// The memoized result of a shared sweep.
pub struct SweepOutcome {
    /// Distinct valid candidate values, first-appearance order.
    pub candidates: Vec<String>,
    /// Distinct probe values across all members, first-appearance order.
    pub probes: Vec<String>,
    /// Per member: its probe rows as indices into `probes`.
    pub member_probe_rows: Vec<Vec<u32>>,
    /// Scores, dense or hit-compacted per kind.
    scores: SweepScores,
    /// Sweep counters.
    pub stats: SweepStats,
}

/// The shared-scan physical plan: one panel sweep answering a whole group
/// of queries. See the [module docs](self) for semantics.
///
/// As a [`PhysicalOperator`] it streams the value-level pairs that clear
/// at least one member's threshold — `(probe, candidate, score)` — which
/// is what EXPLAIN/metrics instrumentation sees; group drivers call
/// [`SharedScanExec::member_states`] for the per-query slices instead.
pub struct SharedScanExec {
    kind: ScanKind,
    candidate: Arc<dyn PhysicalOperator>,
    candidate_column: usize,
    quant: QuantTier,
    cache: Arc<EmbeddingCache>,
    members: Vec<MemberSpec>,
    outcome: Mutex<Option<Arc<SweepOutcome>>>,
    schema: Arc<Schema>,
}

impl SweepOutcome {
    /// Pairs at or above `floor` — what [`SharedScanExec::execute`]
    /// would stream for that floor.
    pub fn emitted_pairs(&self, floor: f32) -> u64 {
        match &self.scores {
            SweepScores::Dense(scores) => {
                scores.iter().filter(|s| **s >= floor).count() as u64
            }
            SweepScores::Hits(hits) => hits.len() as u64,
        }
    }
}

impl SharedScanExec {
    /// Builds the shared plan for a group of `(operator, signature)`
    /// members — the operators previously discovered via
    /// [`cx_exec::find_shared_scan`]. All signatures must agree on
    /// [`ScanSignature::group_key`]; the candidate subtree is taken from
    /// the first member (the keys' fingerprint equality makes them
    /// interchangeable).
    pub fn from_group(
        members: &[(Arc<dyn PhysicalOperator>, ScanSignature)],
        cache: Arc<EmbeddingCache>,
    ) -> Result<Self> {
        let (first_op, first_sig) = members
            .first()
            .ok_or_else(|| Error::InvalidArgument("empty shared-scan group".into()))?;
        let key = first_sig.group_key();
        let quant = QuantTier::from_discriminant(first_sig.quant).ok_or_else(|| {
            Error::InvalidArgument(format!("unknown quant tier {}", first_sig.quant))
        })?;
        let candidate = first_op
            .children()
            .get(first_sig.candidate_child)
            .cloned()
            .ok_or_else(|| Error::InvalidArgument("candidate child out of bounds".into()))?;
        let mut specs = Vec::with_capacity(members.len());
        for (op, sig) in members {
            if sig.group_key() != key {
                return Err(Error::InvalidArgument(
                    "shared-scan group mixes incompatible signatures".into(),
                ));
            }
            let probe = match &sig.probe {
                ProbeSource::Literal(s) => MemberProbe::Literal(s.clone()),
                ProbeSource::Child { child, column, fingerprint } => MemberProbe::Subtree {
                    op: op.children().get(*child).cloned().ok_or_else(|| {
                        Error::InvalidArgument("probe child out of bounds".into())
                    })?,
                    column: *column,
                    fingerprint: *fingerprint,
                },
            };
            specs.push(MemberSpec { probe, threshold: sig.threshold });
        }
        Ok(SharedScanExec {
            kind: first_sig.kind,
            candidate,
            candidate_column: first_sig.candidate_column,
            quant,
            cache,
            members: specs,
            outcome: Mutex::new(None),
            schema: Arc::new(Schema::new(vec![
                Field::new("probe", DataType::Utf8),
                Field::new("candidate", DataType::Utf8),
                Field::new("score", DataType::Float64),
            ])),
        })
    }

    /// Queries merged into this plan.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The lowest member threshold — the floor below which no member's
    /// epilogue can use a pair.
    pub fn min_threshold(&self) -> f32 {
        self.members
            .iter()
            .map(|m| m.threshold)
            .fold(f32::INFINITY, f32::min)
    }

    /// Runs (or returns the memoized) shared sweep: candidate subtree
    /// executed once, probe rows gathered and deduplicated across
    /// members, one blocked pass over the panel.
    pub fn sweep(&self) -> Result<Arc<SweepOutcome>> {
        if let Some(out) = self.outcome.lock().clone() {
            return Ok(out);
        }
        let candidates = {
            let _span = cx_obs::span("candidate_scan");
            distinct_valid_values(&self.candidate, self.candidate_column)?
        };

        // Stacked probe panel with cross-query deduplication: a probe row
        // requested by five members is swept once and sliced five times.
        let mut probes: Vec<String> = Vec::new();
        let mut probe_id: HashMap<String, u32> = HashMap::new();
        let mut member_probe_rows: Vec<Vec<u32>> = Vec::with_capacity(self.members.len());
        let mut probe_rows_total = 0usize;
        // Members with equal probe fingerprints read the same subtree
        // (determinism + fingerprint equality), so its distinct values
        // are materialized once for the whole group.
        let mut subtree_memo: HashMap<(u64, usize), Vec<String>> = HashMap::new();
        let probe_span = cx_obs::span("probe_gather");
        for spec in &self.members {
            let texts = match &spec.probe {
                MemberProbe::Literal(s) => vec![s.clone()],
                MemberProbe::Subtree { op, column, fingerprint } => match fingerprint {
                    Some(fp) => match subtree_memo.get(&(*fp, *column)) {
                        Some(values) => values.clone(),
                        None => {
                            let values = distinct_valid_values(op, *column)?;
                            subtree_memo.insert((*fp, *column), values.clone());
                            values
                        }
                    },
                    None => distinct_valid_values(op, *column)?,
                },
            };
            probe_rows_total += texts.len();
            let rows = texts
                .into_iter()
                .map(|t| {
                    *probe_id.entry(t).or_insert_with_key(|t| {
                        probes.push(t.clone());
                        (probes.len() - 1) as u32
                    })
                })
                .collect();
            member_probe_rows.push(rows);
        }

        drop(probe_span);
        let scores = self.compute_scores(&candidates, &probes)?;
        let stats = SweepStats {
            members: self.members.len(),
            candidate_rows: candidates.len(),
            probe_rows_unique: probes.len(),
            probe_rows_total,
            panel_rows_saved: (self.members.len().saturating_sub(1) * candidates.len()) as u64,
            pairs_saved: ((probe_rows_total - probes.len()) * candidates.len()) as u64,
        };
        let out = Arc::new(SweepOutcome {
            candidates,
            probes,
            member_probe_rows,
            scores,
            stats,
        });
        *self.outcome.lock() = Some(out.clone());
        Ok(out)
    }

    /// Each member's slice of the shared tile, in member order, ready for
    /// [`PhysicalOperator::inject_shared_scan`].
    pub fn member_states(&self) -> Result<Vec<SharedScanState>> {
        let out = self.sweep()?;
        let c = out.candidates.len();
        Ok(self
            .members
            .iter()
            .zip(&out.member_probe_rows)
            .map(|(spec, rows)| match (&out.scores, self.kind) {
                (SweepScores::Dense(scores), ScanKind::CosineFilter) => {
                    let map = match rows.first() {
                        Some(&r) => out
                            .candidates
                            .iter()
                            .enumerate()
                            .map(|(j, v)| (v.clone(), scores[r as usize * c + j]))
                            .collect(),
                        None => HashMap::new(),
                    };
                    SharedScanState::FilterScores(map)
                }
                (SweepScores::Hits(hits), _) => {
                    let mine: HashSet<u32> = rows.iter().copied().collect();
                    let matches = hits
                        .iter()
                        .filter(|(p, _, s)| *s >= spec.threshold && mine.contains(p))
                        .map(|&(p, j, s)| {
                            (out.probes[p as usize].clone(), out.candidates[j as usize].clone(), s)
                        })
                        .collect();
                    SharedScanState::JoinMatches(matches)
                }
                (SweepScores::Dense(_), ScanKind::DotJoin) => {
                    unreachable!("dense scores are only built for filter groups")
                }
            })
            .collect())
    }

    /// One blocked pass of the stacked probe panel over the candidate
    /// panel, applying exactly the member operators' solo arithmetic per
    /// kind and tier (bit-identity is the whole point — see module docs).
    fn compute_scores(&self, candidates: &[String], probes: &[String]) -> Result<SweepScores> {
        let (p, c) = (probes.len(), candidates.len());
        // Joins keep only pairs some member can use.
        let floor = self.min_threshold();
        if p == 0 || c == 0 {
            return Ok(match self.kind {
                ScanKind::CosineFilter => SweepScores::Dense(Vec::new()),
                ScanKind::DotJoin => SweepScores::Hits(Vec::new()),
            });
        }
        let _span = cx_obs::span_with("panel_sweep", || {
            format!(
                "kind={:?} tier={:?} probes={p} candidates={c} simd={}",
                self.kind,
                self.quant,
                cx_vector::simd::KernelDispatch::active().report()
            )
        });
        // Profile attribution: the shared sweep runs on the group
        // leader's thread, so its pairs land in the leader's profile —
        // the same convention shared spans use.
        cx_obs::add_pairs((p * c) as u64);
        cx_obs::add_tiles(1);
        // Sweeps run under the *group* context installed by the server
        // (deadline = max member deadline), so one slow member cannot be
        // killed by another's tighter deadline mid-sweep; per-member
        // deadlines are enforced at the epilogues instead.
        let ctx = QueryContext::current();
        let cand = VectorArena::from_texts(&self.cache, candidates);
        let prob = VectorArena::from_texts(&self.cache, probes);
        ctx.check()?;
        Ok(match (self.kind, self.quant) {
            (ScanKind::CosineFilter, QuantTier::F32) => {
                // Raw dots, then the exact `cosine_with_norms` expression
                // (zero norms score 0.0) — the semantic filter's blocked
                // cosine path to the bit. Dense: one probe row per member.
                let mut scores = vec![0.0f32; p * c];
                let (pv, cv) = (prob.as_block(), cand.as_block());
                scores_matrix(pv.data, pv.stride, p, prob.dim(), cv.data, cv.stride, c, &mut scores);
                for i in 0..p {
                    ctx.check()?;
                    let pn = prob.row_norm(i);
                    for j in 0..c {
                        let s = &mut scores[i * c + j];
                        let cn = cand.row_norm(j);
                        *s = if pn == 0.0 || cn == 0.0 { 0.0 } else { *s / (pn * cn) };
                    }
                }
                SweepScores::Dense(scores)
            }
            (ScanKind::DotJoin, QuantTier::F32) => {
                // Exactly the blocked join's own schedule — build-side
                // tiles stay cache-resident while every probe row streams
                // over them, matches emitted straight from registers — so
                // the shared sweep costs what one solo sweep costs, paid
                // once for the whole group.
                let (pn, cn) = (prob.normalized(), cand.normalized());
                let mut hits: Vec<(u32, u32, f32)> = Vec::new();
                for t0 in (0..c).step_by(TILE) {
                    ctx.check()?;
                    let tile = cn.block(t0..(t0 + TILE).min(c));
                    for i in 0..p {
                        dot_block_threshold(
                            pn.row(i),
                            tile.data,
                            tile.stride,
                            tile.rows,
                            floor,
                            |r, score| hits.push((i as u32, (t0 + r) as u32, score)),
                        );
                    }
                }
                SweepScores::Hits(hits)
            }
            (ScanKind::CosineFilter, tier) => {
                // The quantized filter path: unit-normalized probe scored
                // against the quantized normalized panel; a zero-norm
                // probe scores 0.0 everywhere, as solo.
                let mut scores = vec![0.0f32; p * c];
                let panel = QuantizedArena::from_arena(&cand.normalized(), tier)
                    .map_err(|e| Error::InvalidArgument(e.to_string()))?;
                for i in 0..p {
                    ctx.check()?;
                    let row = &mut scores[i * c..(i + 1) * c];
                    let n = prob.row_norm(i);
                    if n == 0.0 {
                        continue; // already 0.0
                    }
                    let unit: Vec<f32> = prob.row(i).iter().map(|x| x / n).collect();
                    panel.scores_into(&unit, row);
                }
                SweepScores::Dense(scores)
            }
            (ScanKind::DotJoin, tier) => {
                // One quantized panel pass per unique probe row (the solo
                // quantized join's call shape), compacted to hits through
                // a reused row buffer.
                let pn = prob.normalized();
                let panel = QuantizedArena::from_arena(&cand.normalized(), tier)
                    .map_err(|e| Error::InvalidArgument(e.to_string()))?;
                let mut row = vec![0.0f32; c];
                let mut hits: Vec<(u32, u32, f32)> = Vec::new();
                for i in 0..p {
                    ctx.check()?;
                    panel.scores_into(pn.row(i), &mut row);
                    for (j, &score) in row.iter().enumerate() {
                        if score >= floor {
                            hits.push((i as u32, j as u32, score));
                        }
                    }
                }
                SweepScores::Hits(hits)
            }
        })
    }
}

/// Distinct valid UTF8 values of `column` in `op`'s output,
/// first-appearance order (NULL rows dropped, matching the semantic
/// operators' own distinct passes).
fn distinct_valid_values(op: &Arc<dyn PhysicalOperator>, column: usize) -> Result<Vec<String>> {
    let chunks = op.execute()?.collect::<Result<Vec<_>>>()?;
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for chunk in &chunks {
        let col = chunk.column(column)?;
        let values = col.utf8_values()?;
        for (i, v) in values.iter().enumerate() {
            if col.is_valid(i) && seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
    }
    Ok(out)
}

impl PhysicalOperator for SharedScanExec {
    fn name(&self) -> String {
        let quant = match self.quant {
            QuantTier::F32 => String::new(),
            tier => format!(", quant={}", tier.label()),
        };
        format!(
            "SharedScan [kind={}, members={}{}, model={}]",
            match self.kind {
                ScanKind::CosineFilter => "cosine-filter",
                ScanKind::DotJoin => "dot-join",
            },
            self.members.len(),
            quant,
            self.cache.model().name(),
        )
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        let mut out = vec![self.candidate.clone()];
        for spec in &self.members {
            if let MemberProbe::Subtree { op, .. } = &spec.probe {
                out.push(op.clone());
            }
        }
        out
    }

    fn execute(&self) -> Result<ChunkStream> {
        let out = self.sweep()?;
        let floor = self.min_threshold();
        let c = out.candidates.len();
        let mut probe_col: Vec<String> = Vec::new();
        let mut cand_col: Vec<String> = Vec::new();
        let mut score_col: Vec<f64> = Vec::new();
        let mut emit = |i: usize, j: usize, s: f32| {
            probe_col.push(out.probes[i].clone());
            cand_col.push(out.candidates[j].clone());
            score_col.push(s as f64);
        };
        match &out.scores {
            SweepScores::Dense(scores) => {
                for i in 0..out.probes.len() {
                    for j in 0..c {
                        let s = scores[i * c + j];
                        if s >= floor {
                            emit(i, j, s);
                        }
                    }
                }
            }
            SweepScores::Hits(hits) => {
                for &(i, j, s) in hits {
                    emit(i as usize, j as usize, s);
                }
            }
        }
        let chunk = if probe_col.is_empty() {
            Chunk::empty(self.schema.clone())
        } else {
            Chunk::new(
                self.schema.clone(),
                vec![
                    Column::from_strings(probe_col),
                    Column::from_strings(cand_col),
                    Column::from_f64(score_col),
                ],
            )?
        };
        Ok(Box::new(std::iter::once(Ok(chunk))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::HashNGramModel;
    use cx_exec::TableScanExec;
    use cx_storage::Table;
    use cx_vector::kernels::{cosine_with_norms, norm};

    fn cache() -> Arc<EmbeddingCache> {
        Arc::new(EmbeddingCache::new(Arc::new(HashNGramModel::new(7))))
    }

    fn scan(values: &[&str]) -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![Field::new("name", DataType::Utf8)]),
            vec![Column::from_strings(values.iter().copied())],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    /// A fake filter node exposing the shared-scan surface over `scan`.
    struct FakeFilter {
        input: Arc<dyn PhysicalOperator>,
        target: String,
        threshold: f32,
    }

    impl PhysicalOperator for FakeFilter {
        fn name(&self) -> String {
            "FakeFilter".into()
        }
        fn schema(&self) -> Arc<Schema> {
            self.input.schema()
        }
        fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
            vec![self.input.clone()]
        }
        fn execute(&self) -> Result<ChunkStream> {
            self.input.execute()
        }
        fn scan_signature(&self) -> Option<ScanSignature> {
            Some(ScanSignature {
                kind: ScanKind::CosineFilter,
                candidate_fingerprint: 0xc0ffee,
                candidate_child: 0,
                candidate_column: 0,
                model: "hash-ngram".into(),
                quant: 0,
                probe: ProbeSource::Literal(self.target.clone()),
                threshold: self.threshold,
            })
        }
    }

    fn group(targets: &[&str]) -> Vec<(Arc<dyn PhysicalOperator>, ScanSignature)> {
        targets
            .iter()
            .map(|t| {
                let op: Arc<dyn PhysicalOperator> = Arc::new(FakeFilter {
                    input: scan(&["boots", "parka", "boots", "mug"]),
                    target: t.to_string(),
                    threshold: 0.1,
                });
                let sig = op.scan_signature().unwrap();
                (op, sig)
            })
            .collect()
    }

    #[test]
    fn filter_sweep_matches_pairwise_cosine_bit_for_bit() {
        let c = cache();
        let shared = SharedScanExec::from_group(&group(&["shoe", "coat"]), c.clone()).unwrap();
        let states = shared.member_states().unwrap();
        assert_eq!(states.len(), 2);
        for (state, target) in states.iter().zip(["shoe", "coat"]) {
            let SharedScanState::FilterScores(map) = state else {
                panic!("expected filter scores");
            };
            assert_eq!(map.len(), 3); // distinct candidates
            let t = c.get(target);
            let tn = norm(&t);
            for v in ["boots", "parka", "mug"] {
                let e = c.get(v);
                let exact = cosine_with_norms(&t, &e, tn, norm(&e));
                assert_eq!(map[v].to_bits(), exact.to_bits(), "{target} vs {v}");
            }
        }
        let stats = shared.sweep().unwrap().stats;
        assert_eq!(stats.members, 2);
        assert_eq!(stats.candidate_rows, 3);
        assert_eq!(stats.probe_rows_unique, 2);
        assert_eq!(stats.probe_rows_total, 2);
        assert_eq!(stats.panel_rows_saved, 3);
        assert_eq!(stats.pairs_saved, 0);
    }

    #[test]
    fn duplicate_probes_are_swept_once() {
        let shared =
            SharedScanExec::from_group(&group(&["shoe", "shoe", "shoe"]), cache()).unwrap();
        let out = shared.sweep().unwrap();
        assert_eq!(out.probes.len(), 1);
        assert_eq!(out.stats.probe_rows_total, 3);
        assert_eq!(out.stats.pairs_saved, 2 * 3);
        // Every member slices the same row.
        assert_eq!(out.member_probe_rows, vec![vec![0], vec![0], vec![0]]);
    }

    #[test]
    fn execute_streams_pairs_above_min_threshold() {
        let shared = SharedScanExec::from_group(&group(&["boots"]), cache()).unwrap();
        let table = cx_exec::collect_table(&shared).unwrap();
        assert_eq!(table.schema().names(), vec!["probe", "candidate", "score"]);
        // "boots" matches itself with cosine 1.0 at least.
        assert!(table.num_rows() >= 1);
        assert!(shared.name().contains("cosine-filter"));
        assert!(shared.member_count() == 1);
    }

    #[test]
    fn mixed_group_keys_are_rejected() {
        let mut members = group(&["a"]);
        let mut other = group(&["b"]).pop().unwrap();
        other.1.candidate_fingerprint ^= 1;
        members.push(other);
        assert!(SharedScanExec::from_group(&members, cache()).is_err());
        assert!(SharedScanExec::from_group(&[], cache()).is_err());
    }
}

//! Vector similarity infrastructure for semantic operators.
//!
//! The paper's semantic select/join/group-by reduce to distance computations
//! in a latent vector space (Section IV). [`VectorArena`] is the universal
//! vector currency of that path: strings embed straight into padded,
//! kernel-aligned rows, every scorer consumes arena panels, and every
//! index builder builds from `&VectorArena` — no pairwise round-trips:
//!
//! ```text
//!   EmbeddingCache::get_batch_into          (strings → padded rows, 1 copy)
//!                  │
//!                  ▼
//!            VectorArena ───── quantize ────► QuantizedArena (f16 / int8)
//!                  │                                 │
//!        blocked kernels (crate::block)      quantized panel kernels
//!     dot_block / dot_block_threshold /     (cx_embed::quant::dot_block_f16,
//!     cosine_block_threshold / scores_matrix          dot_block_int8)
//!                  │                                 │
//!                  ├────────────────┬────────────────┘
//!                  ▼                ▼
//!        semantic operators    index builders
//!     (SemanticJoin/Filter,  (BruteForceIndex scan,
//!      tier picked by the     IvfIndex k-means + probes,
//!      optimizer per scan)    LshIndex signatures + verify)
//! ```
//!
//! Modules:
//!
//! * [`kernels`] — the pairwise distance-kernel ladder (scalar, unrolled,
//!   norm-precomputed) whose rungs correspond to the "tight code /
//!   CPU-specific instructions" optimizations of Figure 4,
//! * [`block`] — the batched rung above it: one query scored against a
//!   row-major panel of candidates ([`dot_block`]), panels against panels
//!   ([`scores_matrix`]), with threshold-aware early-exit variants,
//! * [`VectorStore`] — a contiguous row-major matrix of embeddings with
//!   cached norms (the "prefetch/materialize" optimization; kept for
//!   serialization-friendly storage, convertible to an arena),
//! * [`VectorArena`] — the padded arena above, fillable straight from an
//!   embedding cache,
//! * [`QuantizedArena`] — its f16/int8 sibling (Section VI's
//!   half-precision opportunity): 2–4× fewer bytes per row at a bounded
//!   score error, scored by the quantized panel kernels,
//! * [`topk`] — bounded top-k collection,
//! * [`BruteForceIndex`] — exact threshold/top-k scan,
//! * [`LshIndex`] — random-hyperplane locality-sensitive hashing (blocked
//!   signature build and probe verification),
//! * [`IvfIndex`] — inverted-file index with a k-means coarse quantizer
//!   trained by blocked assign steps (the "index-based access for
//!   similarity search \[20\]" the optimizer must cost, per Section IV).
//!
//! All indexes implement [`VectorIndex`] so the physical planner can swap
//! them per cost model.

pub mod arena;
pub mod block;
pub mod brute;
pub mod index;
pub mod ivf;
pub mod kernels;
pub mod lsh;
pub mod qarena;
pub mod store;
pub mod topk;

pub use arena::{RowBlock, VectorArena};
/// The explicit-SIMD kernel layer the blocked and pairwise kernels
/// dispatch through (re-exported so operators can surface the active ISA
/// without a direct `cx-simd` dependency).
pub use cx_simd as simd;
pub use cx_embed::quant::QuantTier;
pub use qarena::{QuantizedArena, UnsupportedTier};
pub use block::{cosine_block_threshold, dot_block, dot_block_threshold, scores_matrix};
pub use brute::BruteForceIndex;
pub use index::{IndexStats, SearchResult, VectorIndex};
pub use ivf::IvfIndex;
pub use kernels::{cosine, dot, dot_unrolled, l2_distance, norm};
pub use lsh::LshIndex;
pub use store::VectorStore;
pub use topk::TopK;

//! Vector similarity infrastructure for semantic operators.
//!
//! The paper's semantic select/join/group-by reduce to distance computations
//! in a latent vector space (Section IV), so this crate provides:
//!
//! * [`kernels`] — the distance-kernel ladder (scalar, unrolled, norm-
//!   precomputed, quantized) whose rungs correspond to the "tight code /
//!   CPU-specific instructions" optimizations of Figure 4,
//! * [`VectorStore`] — a contiguous row-major matrix of embeddings with
//!   cached norms (the "prefetch/materialize" optimization),
//! * [`topk`] — bounded top-k collection,
//! * [`BruteForceIndex`] — exact threshold/top-k scan,
//! * [`LshIndex`] — random-hyperplane locality-sensitive hashing,
//! * [`IvfIndex`] — inverted-file index with a k-means coarse quantizer
//!   (the "index-based access for similarity search [20]" the optimizer
//!   must cost, per Section IV).
//!
//! All indexes implement [`VectorIndex`] so the physical planner can swap
//! them per cost model.

pub mod brute;
pub mod index;
pub mod ivf;
pub mod kernels;
pub mod lsh;
pub mod store;
pub mod topk;

pub use brute::BruteForceIndex;
pub use index::{IndexStats, SearchResult, VectorIndex};
pub use ivf::IvfIndex;
pub use kernels::{cosine, dot, dot_unrolled, l2_distance, norm};
pub use lsh::LshIndex;
pub use store::VectorStore;
pub use topk::TopK;

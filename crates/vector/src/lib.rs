//! Vector similarity infrastructure for semantic operators.
//!
//! The paper's semantic select/join/group-by reduce to distance computations
//! in a latent vector space (Section IV), so this crate provides:
//!
//! * [`kernels`] — the pairwise distance-kernel ladder (scalar, unrolled,
//!   norm-precomputed, quantized) whose rungs correspond to the "tight code
//!   / CPU-specific instructions" optimizations of Figure 4,
//! * [`block`] — the batched rung above it: one query scored against a
//!   row-major panel of candidates ([`dot_block`]), panels against panels
//!   ([`scores_matrix`]), with threshold-aware early-exit variants,
//! * [`VectorStore`] — a contiguous row-major matrix of embeddings with
//!   cached norms (the "prefetch/materialize" optimization),
//! * [`VectorArena`] — the padded, kernel-aligned arena the blocked
//!   kernels scan, fillable straight from an embedding cache,
//! * [`topk`] — bounded top-k collection,
//! * [`BruteForceIndex`] — exact threshold/top-k scan,
//! * [`LshIndex`] — random-hyperplane locality-sensitive hashing,
//! * [`IvfIndex`] — inverted-file index with a k-means coarse quantizer
//!   (the "index-based access for similarity search [20]" the optimizer
//!   must cost, per Section IV).
//!
//! All indexes implement [`VectorIndex`] so the physical planner can swap
//! them per cost model.

pub mod arena;
pub mod block;
pub mod brute;
pub mod index;
pub mod ivf;
pub mod kernels;
pub mod lsh;
pub mod store;
pub mod topk;

pub use arena::{RowBlock, VectorArena};
pub use block::{cosine_block_threshold, dot_block, dot_block_threshold, scores_matrix};
pub use brute::BruteForceIndex;
pub use index::{IndexStats, SearchResult, VectorIndex};
pub use ivf::IvfIndex;
pub use kernels::{cosine, dot, dot_unrolled, l2_distance, norm};
pub use lsh::LshIndex;
pub use store::VectorStore;
pub use topk::TopK;

//! Exact brute-force similarity search.

use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::{cosine_prenormalized, norm};
use crate::store::VectorStore;
use crate::topk::TopK;

/// Exact scan over a normalized vector store.
///
/// This is the baseline every approximate index is measured against, and —
/// per the optimizer's cost model — the *right* choice for small
/// cardinalities where index build cost dominates.
pub struct BruteForceIndex {
    store: VectorStore,
    stats: IndexStats,
}

impl BruteForceIndex {
    /// Builds the index (normalizes a copy of the store).
    pub fn build(store: &VectorStore) -> Self {
        BruteForceIndex {
            store: store.normalized(),
            stats: IndexStats::default(),
        }
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

impl VectorIndex for BruteForceIndex {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        self.stats.record_search(self.store.len());
        let mut out = Vec::new();
        for (id, row) in self.store.iter() {
            let score = cosine_prenormalized(&q, row);
            if score >= threshold {
                out.push(SearchResult { id, score });
            }
        }
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        self.stats.record_search(self.store.len());
        let mut topk = TopK::new(k);
        for (id, row) in self.store.iter() {
            topk.push(id, cosine_prenormalized(&q, row));
        }
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    fn is_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VectorStore {
        // Four 4-d vectors: two near e0, one near e1, one diagonal.
        VectorStore::from_flat(
            4,
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.9, 0.1, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.5, 0.5, 0.5, 0.5, //
            ],
        )
    }

    #[test]
    fn threshold_search() {
        let idx = BruteForceIndex::build(&store());
        let out = idx.search_threshold(&[1.0, 0.0, 0.0, 0.0], 0.9);
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert!(out[0].score >= out[1].score);
        assert!(idx.is_exact());
    }

    #[test]
    fn topk_search() {
        let idx = BruteForceIndex::build(&store());
        let out = idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 1);
        // k larger than the store returns everything.
        assert_eq!(idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 10).len(), 4);
    }

    #[test]
    fn unnormalized_inputs_handled() {
        let mut s = VectorStore::new(2);
        s.push(&[10.0, 0.0]);
        s.push(&[0.0, 0.2]);
        let idx = BruteForceIndex::build(&s);
        // Scaled query matches direction, not magnitude.
        let out = idx.search_threshold(&[5.0, 0.0], 0.99);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
        assert!((out[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_count_full_scans() {
        let idx = BruteForceIndex::build(&store());
        idx.search_threshold(&[1.0, 0.0, 0.0, 0.0], 0.5);
        idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(idx.stats().searches(), 2);
        assert_eq!(idx.stats().candidates_examined(), 8);
    }

    #[test]
    fn empty_store() {
        let idx = BruteForceIndex::build(&VectorStore::new(3));
        assert!(idx.is_empty());
        assert!(idx.search_threshold(&[1.0, 0.0, 0.0], 0.5).is_empty());
    }
}

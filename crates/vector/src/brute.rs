//! Exact brute-force similarity search.

use crate::arena::VectorArena;
use crate::block::{dot_block_threshold, TILE};
use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::norm;
use crate::store::VectorStore;
use crate::topk::TopK;

/// Exact scan over a normalized vector arena.
///
/// This is the baseline every approximate index is measured against, and —
/// per the optimizer's cost model — the *right* choice for small
/// cardinalities where index build cost dominates. The scan runs on the
/// blocked kernels: candidates are scored a panel at a time via
/// [`dot_block_threshold`], and top-k scans pass the current heap floor
/// so pruned candidates skip write-back. Scores are bit-identical to the
/// pairwise prenormalized kernel.
pub struct BruteForceIndex {
    arena: VectorArena,
    stats: IndexStats,
}

impl BruteForceIndex {
    /// Builds the index from an arena (normalizes a copy; the input arena
    /// is the universal vector currency and is typically filled straight
    /// from the embedding cache).
    pub fn build(arena: &VectorArena) -> Self {
        BruteForceIndex {
            arena: arena.normalized(),
            stats: IndexStats::default(),
        }
    }

    /// Convenience builder for store-based callers: copies `store` into
    /// arena layout first.
    pub fn build_from_store(store: &VectorStore) -> Self {
        Self::build(&VectorArena::from_store(store))
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.arena.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

impl VectorIndex for BruteForceIndex {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        self.stats.record_search(self.arena.len());
        let view = self.arena.as_block();
        let mut out = Vec::new();
        dot_block_threshold(&q, view.data, view.stride, view.rows, threshold, |id, score| {
            out.push(SearchResult { id, score })
        });
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        self.stats.record_search(self.arena.len());
        let mut topk = TopK::new(k);
        let n = self.arena.len();
        for t0 in (0..n).step_by(TILE) {
            let tile = self.arena.block(t0..(t0 + TILE).min(n));
            // Once the heap is full, its floor skips write-back for the
            // tile's losing candidates.
            let floor = topk.threshold().unwrap_or(f32::NEG_INFINITY);
            dot_block_threshold(&q, tile.data, tile.stride, tile.rows, floor, |r, score| {
                topk.push(t0 + r, score)
            });
        }
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
    }

    fn is_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::cosine_prenormalized;

    fn store() -> VectorStore {
        // Four 4-d vectors: two near e0, one near e1, one diagonal.
        VectorStore::from_flat(
            4,
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.9, 0.1, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.5, 0.5, 0.5, 0.5, //
            ],
        )
    }

    #[test]
    fn threshold_search() {
        let idx = BruteForceIndex::build_from_store(&store());
        let out = idx.search_threshold(&[1.0, 0.0, 0.0, 0.0], 0.9);
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert!(out[0].score >= out[1].score);
        assert!(idx.is_exact());
    }

    #[test]
    fn topk_search() {
        let idx = BruteForceIndex::build_from_store(&store());
        let out = idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 1);
        // k larger than the store returns everything.
        assert_eq!(idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 10).len(), 4);
    }

    #[test]
    fn unnormalized_inputs_handled() {
        let mut s = VectorStore::new(2);
        s.push(&[10.0, 0.0]);
        s.push(&[0.0, 0.2]);
        let idx = BruteForceIndex::build_from_store(&s);
        // Scaled query matches direction, not magnitude.
        let out = idx.search_threshold(&[5.0, 0.0], 0.99);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
        assert!((out[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_count_full_scans() {
        let idx = BruteForceIndex::build_from_store(&store());
        idx.search_threshold(&[1.0, 0.0, 0.0, 0.0], 0.5);
        idx.search_topk(&[1.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(idx.stats().searches(), 2);
        assert_eq!(idx.stats().candidates_examined(), 8);
    }

    #[test]
    fn empty_store() {
        let idx = BruteForceIndex::build_from_store(&VectorStore::new(3));
        assert!(idx.is_empty());
        assert!(idx.search_threshold(&[1.0, 0.0, 0.0], 0.5).is_empty());
    }

    #[test]
    fn blocked_scan_matches_pairwise_scores_bitwise() {
        use cx_embed::rng::SplitMix64;
        let mut rng = SplitMix64::new(17);
        let mut s = VectorStore::new(24);
        // Enough rows to cross several scan tiles.
        for _ in 0..(3 * TILE + 5) {
            s.push(&rng.unit_vector(24));
        }
        let idx = BruteForceIndex::build_from_store(&s);
        let q = rng.unit_vector(24);
        let qn = {
            let n = norm(&q);
            q.iter().map(|x| x / n).collect::<Vec<_>>()
        };
        for r in idx.search_threshold(&q, 0.2) {
            let exact = cosine_prenormalized(&qn, idx.arena.row(r.id));
            assert_eq!(r.score.to_bits(), exact.to_bits(), "id {}", r.id);
        }
        // Top-k with heap pruning returns the same ids as an exhaustive sort.
        let k = 7;
        let got: Vec<usize> = idx.search_topk(&q, k).iter().map(|r| r.id).collect();
        let mut all: Vec<(usize, f32)> = (0..idx.len())
            .map(|i| (i, cosine_prenormalized(&qn, idx.arena.row(i))))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<usize> = all[..k].iter().map(|(i, _)| *i).collect();
        assert_eq!(got, want);
    }
}

//! Random-hyperplane locality-sensitive hashing for cosine similarity.
//!
//! Classic SimHash construction: each table hashes a vector to a `bits`-bit
//! signature of hyperplane sign tests; vectors colliding with the query in
//! *any* table become candidates, which are then verified exactly. For two
//! vectors at angle θ the per-bit collision probability is `1 − θ/π`, so
//! high-similarity pairs collide with high probability while the index
//! prunes the vast dissimilar majority — the index-based access path the
//! paper says the optimizer must cost (Section IV).
//!
//! The index is arena-native end to end. Vectors live in a normalized
//! [`VectorArena`] (no [`VectorStore`] copy); hyperplanes form one padded
//! panel, so build-time signatures come from [`scores_matrix`] tiles (row
//! tile × every plane of every table in one GEMM-shaped call) and a query's
//! signatures from a single [`dot_block`] over the plane panel. Probe-list
//! verification gathers the colliding rows into a contiguous scratch panel
//! and scores them with one [`dot_block`] call per query — never a
//! per-candidate pairwise loop — with scores bit-identical to the pairwise
//! prenormalized kernel.

use crate::arena::{VectorArena, ROW_ALIGN_FLOATS};
use crate::block::{dot_block, scores_matrix, TILE};
use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::norm;
use crate::store::VectorStore;
use crate::topk::TopK;
use cx_embed::rng::SplitMix64;
use std::collections::HashMap;

/// Tuning parameters for [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshParams {
    /// Signature bits per table (higher = fewer, purer candidates).
    pub bits: usize,
    /// Number of independent tables (higher = better recall).
    pub tables: usize,
    /// Seed for hyperplane generation.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams { bits: 12, tables: 8, seed: 0x15AC }
    }
}

/// Multi-table random-hyperplane LSH index.
pub struct LshIndex {
    /// Normalized vectors in padded arena layout.
    arena: VectorArena,
    /// `tables × bits` hyperplanes as one padded panel: plane `p` occupies
    /// `planes[p * pstride .. p * pstride + dim]`.
    planes: Vec<f32>,
    /// Floats between consecutive plane rows.
    pstride: usize,
    params: LshParams,
    /// One bucket map per table: signature → row ids.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    stats: IndexStats,
}

impl LshIndex {
    /// Builds the index over `arena` with `params`.
    pub fn build(arena: &VectorArena, params: LshParams) -> Self {
        assert!(params.bits > 0 && params.bits <= 64, "bits must be in 1..=64");
        assert!(params.tables > 0, "at least one table required");
        let data = arena.normalized();
        let dim = data.dim();
        let pstride = dim.next_multiple_of(ROW_ALIGN_FLOATS);
        let mut rng = SplitMix64::new(params.seed);
        let total_planes = params.tables * params.bits;
        let mut planes = vec![0.0f32; total_planes * pstride];
        for p in 0..total_planes {
            planes[p * pstride..p * pstride + dim].copy_from_slice(&rng.unit_vector(dim));
        }

        // Batched signature build: score row tiles against the whole plane
        // panel at once, then split each row's sign pattern into per-table
        // signatures.
        let mut buckets: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); params.tables];
        let n = data.len();
        let mut scores = vec![0.0f32; TILE * total_planes];
        for t0 in (0..n).step_by(TILE) {
            let tile = data.block(t0..(t0 + TILE).min(n));
            scores_matrix(
                tile.data,
                tile.stride,
                tile.rows,
                dim,
                &planes,
                pstride,
                total_planes,
                &mut scores[..tile.rows * total_planes],
            );
            for r in 0..tile.rows {
                let dots = &scores[r * total_planes..(r + 1) * total_planes];
                for (t, table) in buckets.iter_mut().enumerate() {
                    let sig = signature_from_dots(&dots[t * params.bits..(t + 1) * params.bits]);
                    table.entry(sig).or_default().push((t0 + r) as u32);
                }
            }
        }

        LshIndex {
            arena: data,
            planes,
            pstride,
            params,
            buckets,
            stats: IndexStats::default(),
        }
    }

    /// Builds with default parameters.
    pub fn build_default(arena: &VectorArena) -> Self {
        Self::build(arena, LshParams::default())
    }

    /// Convenience builder for store-based callers: copies `store` into
    /// arena layout first.
    pub fn build_from_store(store: &VectorStore, params: LshParams) -> Self {
        Self::build(&VectorArena::from_store(store), params)
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Collects unique candidate ids colliding with `query` in any table.
    /// All `tables × bits` hyperplane tests run as one blocked call.
    fn candidates(&self, query: &[f32]) -> Vec<u32> {
        let total_planes = self.params.tables * self.params.bits;
        let mut dots = vec![0.0f32; total_planes];
        dot_block(query, &self.planes, self.pstride, &mut dots);
        let mut seen: Vec<u32> = Vec::new();
        for (t, table) in self.buckets.iter().enumerate() {
            let sig =
                signature_from_dots(&dots[t * self.params.bits..(t + 1) * self.params.bits]);
            if let Some(ids) = table.get(&sig) {
                seen.extend_from_slice(ids);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        seen
    }

    /// Gathers the candidate rows into a contiguous scratch panel and
    /// scores them with one blocked call: `out[k] = dot(q, row(ids[k]))`,
    /// bit-identical to the pairwise prenormalized kernel.
    fn score_candidates(&self, q: &[f32], ids: &[u32]) -> Vec<f32> {
        let panel = self.arena.gather_rows(ids);
        let view = panel.as_block();
        let mut scores = vec![0.0f32; ids.len()];
        dot_block(q, view.data, view.stride, &mut scores);
        scores
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.arena.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

/// Packs hyperplane dot signs into a signature (bit `b` set iff
/// `dots[b] >= 0`).
#[inline]
fn signature_from_dots(dots: &[f32]) -> u64 {
    let mut sig = 0u64;
    for (b, &d) in dots.iter().enumerate() {
        if d >= 0.0 {
            sig |= 1 << b;
        }
    }
    sig
}

impl VectorIndex for LshIndex {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let candidates = self.candidates(&q);
        self.stats.record_search(candidates.len());
        let scores = self.score_candidates(&q, &candidates);
        let mut out = Vec::new();
        for (&id, &score) in candidates.iter().zip(&scores) {
            if score >= threshold {
                out.push(SearchResult { id: id as usize, score });
            }
        }
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let candidates = self.candidates(&q);
        self.stats.record_search(candidates.len());
        let scores = self.score_candidates(&q, &candidates);
        let mut topk = TopK::new(k);
        for (&id, &score) in candidates.iter().zip(&scores) {
            topk.push(id as usize, score);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        let buckets: usize = self
            .buckets
            .iter()
            .map(|t| t.values().map(|v| v.len() * 4 + 16).sum::<usize>())
            .sum();
        self.arena.memory_bytes() + self.planes.len() * 4 + buckets
    }

    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    /// An arena of `n` vectors in `c` tight clusters.
    fn clustered_arena(n: usize, c: usize, dim: usize, seed: u64) -> VectorArena {
        let mut rng = SplitMix64::new(seed);
        let centroids: Vec<Vec<f32>> = (0..c).map(|_| rng.unit_vector(dim)).collect();
        let mut arena = VectorArena::new(dim);
        for i in 0..n {
            let centroid = &centroids[i % c];
            let noise = rng.unit_vector(dim);
            let v: Vec<f32> = centroid
                .iter()
                .zip(&noise)
                .map(|(c, n)| c + 0.25 * n)
                .collect();
            arena.push(&v);
        }
        arena
    }

    #[test]
    fn high_recall_on_near_duplicates() {
        let arena = clustered_arena(500, 10, 64, 3);
        let lsh = LshIndex::build_default(&arena);
        let exact = BruteForceIndex::build(&arena);
        let mut found = 0usize;
        let mut expected = 0usize;
        for probe in 0..50 {
            let q = arena.row(probe).to_vec();
            let truth = exact.search_threshold(&q, 0.9);
            let approx = lsh.search_threshold(&q, 0.9);
            let approx_ids: std::collections::HashSet<usize> =
                approx.iter().map(|r| r.id).collect();
            expected += truth.len();
            found += truth.iter().filter(|r| approx_ids.contains(&r.id)).count();
        }
        let recall = found as f64 / expected as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn prunes_candidates() {
        let arena = clustered_arena(1000, 20, 64, 5);
        let lsh = LshIndex::build_default(&arena);
        lsh.search_threshold(arena.row(0), 0.9);
        // Examined far fewer than the full store.
        assert!(
            lsh.stats().candidates_examined() < 600,
            "examined {}",
            lsh.stats().candidates_examined()
        );
    }

    #[test]
    fn no_false_positives_below_threshold() {
        let arena = clustered_arena(200, 5, 32, 9);
        let lsh = LshIndex::build_default(&arena);
        for r in lsh.search_threshold(arena.row(3), 0.95) {
            assert!(r.score >= 0.95);
        }
    }

    #[test]
    fn topk_subset_of_candidates() {
        let arena = clustered_arena(300, 6, 32, 11);
        let lsh = LshIndex::build_default(&arena);
        let out = lsh.search_topk(arena.row(0), 5);
        assert!(out.len() <= 5);
        // Self-match is the best result.
        assert_eq!(out[0].id, 0);
        assert!((out[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_builds() {
        let arena = clustered_arena(100, 4, 16, 1);
        let a = LshIndex::build_default(&arena);
        let b = LshIndex::build_default(&arena);
        assert_eq!(
            a.search_threshold(arena.row(7), 0.8),
            b.search_threshold(arena.row(7), 0.8)
        );
    }

    #[test]
    fn blocked_probe_scores_match_pairwise_kernel_bitwise() {
        use crate::kernels::cosine_prenormalized;
        let arena = clustered_arena(200, 4, 24, 7);
        let lsh = LshIndex::build_default(&arena);
        let q = lsh.normalized_query(arena.row(5));
        for r in lsh.search_threshold(arena.row(5), 0.3) {
            let exact = cosine_prenormalized(&q, lsh.arena.row(r.id));
            assert_eq!(r.score.to_bits(), exact.to_bits(), "id {}", r.id);
        }
    }

    #[test]
    fn store_and_arena_builds_agree() {
        let arena = clustered_arena(120, 4, 16, 2);
        let store = arena.to_store();
        let a = LshIndex::build_default(&arena);
        let b = LshIndex::build_from_store(&store, LshParams::default());
        assert_eq!(
            a.search_threshold(arena.row(3), 0.8),
            b.search_threshold(arena.row(3), 0.8)
        );
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn invalid_bits_panics() {
        LshIndex::build(&VectorArena::new(4), LshParams { bits: 0, tables: 1, seed: 1 });
    }
}

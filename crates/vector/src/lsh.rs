//! Random-hyperplane locality-sensitive hashing for cosine similarity.
//!
//! Classic SimHash construction: each table hashes a vector to a `bits`-bit
//! signature of hyperplane sign tests; vectors colliding with the query in
//! *any* table become candidates, which are then verified exactly. For two
//! vectors at angle θ the per-bit collision probability is `1 − θ/π`, so
//! high-similarity pairs collide with high probability while the index
//! prunes the vast dissimilar majority — the index-based access path the
//! paper says the optimizer must cost (Section IV).

use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::{cosine_prenormalized, dot_unrolled, norm};
use crate::store::VectorStore;
use crate::topk::TopK;
use cx_embed::rng::SplitMix64;
use std::collections::HashMap;

/// Tuning parameters for [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshParams {
    /// Signature bits per table (higher = fewer, purer candidates).
    pub bits: usize,
    /// Number of independent tables (higher = better recall).
    pub tables: usize,
    /// Seed for hyperplane generation.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams { bits: 12, tables: 8, seed: 0x15AC }
    }
}

/// Multi-table random-hyperplane LSH index.
pub struct LshIndex {
    store: VectorStore,
    /// `tables × bits` hyperplanes, each of dimension `dim`, flat.
    planes: Vec<f32>,
    params: LshParams,
    /// One bucket map per table: signature → row ids.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    stats: IndexStats,
}

impl LshIndex {
    /// Builds the index over `store` with `params`.
    pub fn build(store: &VectorStore, params: LshParams) -> Self {
        assert!(params.bits > 0 && params.bits <= 64, "bits must be in 1..=64");
        assert!(params.tables > 0, "at least one table required");
        let store = store.normalized();
        let dim = store.dim();
        let mut rng = SplitMix64::new(params.seed);
        let total_planes = params.tables * params.bits;
        let mut planes = Vec::with_capacity(total_planes * dim);
        for _ in 0..total_planes {
            planes.extend(rng.unit_vector(dim));
        }

        let mut buckets: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); params.tables];
        for (id, row) in store.iter() {
            for (t, table) in buckets.iter_mut().enumerate() {
                let sig = signature(&planes, dim, params.bits, t, row);
                table.entry(sig).or_default().push(id as u32);
            }
        }

        LshIndex {
            store,
            planes,
            params,
            buckets,
            stats: IndexStats::default(),
        }
    }

    /// Builds with default parameters.
    pub fn build_default(store: &VectorStore) -> Self {
        Self::build(store, LshParams::default())
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// Collects unique candidate ids colliding with `query` in any table.
    fn candidates(&self, query: &[f32]) -> Vec<u32> {
        let dim = self.store.dim();
        let mut seen: Vec<u32> = Vec::new();
        for (t, table) in self.buckets.iter().enumerate() {
            let sig = signature(&self.planes, dim, self.params.bits, t, query);
            if let Some(ids) = table.get(&sig) {
                seen.extend_from_slice(ids);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        seen
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

/// Computes the `bits`-bit signature of `v` under table `t`'s hyperplanes.
#[inline]
fn signature(planes: &[f32], dim: usize, bits: usize, table: usize, v: &[f32]) -> u64 {
    let mut sig = 0u64;
    let base = table * bits;
    for b in 0..bits {
        let plane = &planes[(base + b) * dim..(base + b + 1) * dim];
        if dot_unrolled(plane, v) >= 0.0 {
            sig |= 1 << b;
        }
    }
    sig
}

impl VectorIndex for LshIndex {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let candidates = self.candidates(&q);
        self.stats.record_search(candidates.len());
        let mut out = Vec::new();
        for &id in &candidates {
            let score = cosine_prenormalized(&q, self.store.row(id as usize));
            if score >= threshold {
                out.push(SearchResult { id: id as usize, score });
            }
        }
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let candidates = self.candidates(&q);
        self.stats.record_search(candidates.len());
        let mut topk = TopK::new(k);
        for &id in &candidates {
            topk.push(id as usize, cosine_prenormalized(&q, self.store.row(id as usize)));
        }
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        let buckets: usize = self
            .buckets
            .iter()
            .map(|t| t.values().map(|v| v.len() * 4 + 16).sum::<usize>())
            .sum();
        self.store.memory_bytes() + self.planes.len() * 4 + buckets
    }

    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    /// A store of `n` vectors in `c` tight clusters.
    fn clustered_store(n: usize, c: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SplitMix64::new(seed);
        let centroids: Vec<Vec<f32>> = (0..c).map(|_| rng.unit_vector(dim)).collect();
        let mut store = VectorStore::new(dim);
        for i in 0..n {
            let centroid = &centroids[i % c];
            let noise = rng.unit_vector(dim);
            let v: Vec<f32> = centroid
                .iter()
                .zip(&noise)
                .map(|(c, n)| c + 0.25 * n)
                .collect();
            store.push(&v);
        }
        store
    }

    #[test]
    fn high_recall_on_near_duplicates() {
        let store = clustered_store(500, 10, 64, 3);
        let lsh = LshIndex::build_default(&store);
        let exact = BruteForceIndex::build(&store);
        let mut found = 0usize;
        let mut expected = 0usize;
        for probe in 0..50 {
            let q = store.row(probe).to_vec();
            let truth = exact.search_threshold(&q, 0.9);
            let approx = lsh.search_threshold(&q, 0.9);
            let approx_ids: std::collections::HashSet<usize> =
                approx.iter().map(|r| r.id).collect();
            expected += truth.len();
            found += truth.iter().filter(|r| approx_ids.contains(&r.id)).count();
        }
        let recall = found as f64 / expected as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn prunes_candidates() {
        let store = clustered_store(1000, 20, 64, 5);
        let lsh = LshIndex::build_default(&store);
        lsh.search_threshold(store.row(0), 0.9);
        // Examined far fewer than the full store.
        assert!(
            lsh.stats().candidates_examined() < 600,
            "examined {}",
            lsh.stats().candidates_examined()
        );
    }

    #[test]
    fn no_false_positives_below_threshold() {
        let store = clustered_store(200, 5, 32, 9);
        let lsh = LshIndex::build_default(&store);
        for r in lsh.search_threshold(store.row(3), 0.95) {
            assert!(r.score >= 0.95);
        }
    }

    #[test]
    fn topk_subset_of_candidates() {
        let store = clustered_store(300, 6, 32, 11);
        let lsh = LshIndex::build_default(&store);
        let out = lsh.search_topk(store.row(0), 5);
        assert!(out.len() <= 5);
        // Self-match is the best result.
        assert_eq!(out[0].id, 0);
        assert!((out[0].score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_builds() {
        let store = clustered_store(100, 4, 16, 1);
        let a = LshIndex::build_default(&store);
        let b = LshIndex::build_default(&store);
        assert_eq!(
            a.search_threshold(store.row(7), 0.8),
            b.search_threshold(store.row(7), 0.8)
        );
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn invalid_bits_panics() {
        LshIndex::build(&VectorStore::new(4), LshParams { bits: 0, tables: 1, seed: 1 });
    }
}

//! Blocked (batch-at-a-time) similarity kernels: the fourth rung of the
//! Figure 4 optimization ladder.
//!
//! The pairwise kernels in [`crate::kernels`] score one `(query, candidate)`
//! pair per call; every hot path that loops over them pays per-pair call
//! and bookkeeping overhead and reloads the query from memory for each
//! candidate. The kernels here score one query against a *panel* of
//! candidates laid out row-major (see [`crate::VectorArena`]), and panels
//! against panels, in micro-kernel passes that load each query chunk once
//! and reuse it across candidate rows.
//!
//! The panel arithmetic itself lives in `cx_simd`: [`dot_block`] forwards
//! to `cx_simd::dot_block`, which picks an AVX-512 / AVX2+FMA / NEON /
//! scalar implementation at runtime (overridable via `CX_SIMD`). The
//! numerical contract is *per-ISA* bit-identity: under one active path,
//! every row's accumulation order is exactly that of the pairwise
//! [`crate::kernels::dot_unrolled`] on the same path, so blocked scores are
//! bit-identical to the pairwise rungs. Blocking changes the schedule,
//! never the arithmetic. (Across paths, f32 scores may differ in the last
//! bits — FMA and lane width change rounding — which is why both pairwise
//! and blocked rungs share one dispatch.)
//!
//! Layout contract: a block is `(data, stride)` where row `r` occupies
//! `data[r * stride .. r * stride + dim]` and `stride >= dim`. Padding
//! lanes (`dim..stride`) are never read.

/// Candidate rows scored per scalar micro-kernel pass. Eight rows keep
/// eight independent FP chains in flight on the scalar path; the explicit
/// AVX2/AVX-512/NEON paths in `cx_simd` use four rows × two vector
/// accumulators, which saturates the FMA units without spilling registers.
pub const MICRO_ROWS: usize = 8;

/// Default square tile edge for [`scores_matrix`]: 64×64 f32 scores plus a
/// 64-row panel of dim ≤ 768 stays within L2 on every x86/ARM core that
/// matters.
pub const TILE: usize = 64;

/// Scores `query` against `out.len()` candidate rows stored row-major in
/// `block` at `stride` floats per row, writing `out[r] = dot(query, row_r)`.
///
/// Bit-identical to calling [`crate::kernels::dot_unrolled`] per row under
/// the same active SIMD path.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for `out.len()`
/// rows.
#[inline]
pub fn dot_block(query: &[f32], block: &[f32], stride: usize, out: &mut [f32]) {
    cx_simd::dot_block(query, block, stride, out);
}

/// Threshold-aware block scan: scores `query` against `rows` candidate rows
/// and invokes `emit(row, score)` only for rows with `score >= floor` —
/// pruned candidates skip write-back entirely. Pass the current top-k floor
/// (or the filter threshold) to avoid touching losers.
///
/// Scores are bit-identical to [`dot_block`]: rows are scored through the
/// same dispatched panel kernel in [`TILE`]-row strips (a stack buffer),
/// then filtered.
pub fn dot_block_threshold(
    query: &[f32],
    block: &[f32],
    stride: usize,
    rows: usize,
    floor: f32,
    mut emit: impl FnMut(usize, f32),
) {
    let dim = query.len();
    assert!(stride >= dim, "stride {stride} shorter than dim {dim}");
    if rows == 0 {
        return;
    }
    assert!(
        block.len() >= (rows - 1) * stride + dim,
        "block of {} floats too short for {rows} rows at stride {stride}",
        block.len()
    );
    let mut scores = [0.0f32; TILE];
    let mut r = 0;
    while r < rows {
        let strip = TILE.min(rows - r);
        cx_simd::dot_block(query, &block[r * stride..], stride, &mut scores[..strip]);
        for (k, &score) in scores[..strip].iter().enumerate() {
            if score >= floor {
                emit(r + k, score);
            }
        }
        r += strip;
    }
}

/// Cosine variant of [`dot_block_threshold`] with externally cached norms:
/// `score = dot / (query_norm * norms[r])`, the exact expression of
/// [`crate::kernels::cosine_with_norms`] (zero-norm rows score 0.0).
/// `emit(row, score)` fires only for rows at or above `floor`.
#[allow(clippy::too_many_arguments)]
pub fn cosine_block_threshold(
    query: &[f32],
    query_norm: f32,
    block: &[f32],
    stride: usize,
    norms: &[f32],
    floor: f32,
    mut emit: impl FnMut(usize, f32),
) {
    let rows = norms.len();
    if query_norm == 0.0 {
        // cosine_with_norms returns 0.0 for a zero query against anything.
        if 0.0 >= floor {
            for r in 0..rows {
                emit(r, 0.0);
            }
        }
        return;
    }
    dot_block_threshold(query, block, stride, rows, f32::NEG_INFINITY, |r, dot| {
        let score = if norms[r] == 0.0 { 0.0 } else { dot / (query_norm * norms[r]) };
        if score >= floor {
            emit(r, score);
        }
    });
}

/// A GEMM-shaped score matrix: `out[i * build_rows + j] = dot(probe_i,
/// build_j)`, computed in [`TILE`]×[`TILE`] tiles so the build panel stays
/// cache-resident while a tile of probes streams over it.
///
/// `probe`/`build` are row-major blocks with their own strides; `out` must
/// hold `probe_rows * build_rows` floats. Bit-identical to the pairwise
/// loop under the same active SIMD path. Probe-row bases advance
/// incrementally — no per-cell index multiplies in the scalar fallback.
#[allow(clippy::too_many_arguments)]
pub fn scores_matrix(
    probe: &[f32],
    probe_stride: usize,
    probe_rows: usize,
    dim: usize,
    build: &[f32],
    build_stride: usize,
    build_rows: usize,
    out: &mut [f32],
) {
    assert!(probe_stride >= dim && build_stride >= dim, "stride shorter than dim");
    assert_eq!(out.len(), probe_rows * build_rows, "output shape mismatch");
    if probe_rows == 0 || build_rows == 0 {
        return;
    }
    assert!(probe.len() >= (probe_rows - 1) * probe_stride + dim, "probe block too short");
    assert!(build.len() >= (build_rows - 1) * build_stride + dim, "build block too short");
    for i0 in (0..probe_rows).step_by(TILE) {
        let i1 = (i0 + TILE).min(probe_rows);
        for j0 in (0..build_rows).step_by(TILE) {
            let j1 = (j0 + TILE).min(build_rows);
            let tile = &build[j0 * build_stride..(j1 - 1) * build_stride + dim];
            // Hoisted row bases: advance by stride instead of multiplying
            // per (i, j0) pair.
            let mut probe_base = i0 * probe_stride;
            let mut out_base = i0 * build_rows + j0;
            for _ in i0..i1 {
                let q = &probe[probe_base..probe_base + dim];
                dot_block(q, tile, build_stride, &mut out[out_base..out_base + (j1 - j0)]);
                probe_base += probe_stride;
                out_base += build_rows;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{cosine_with_norms, dot_unrolled, norm};
    use cx_embed::rng::SplitMix64;

    fn random_block(rows: usize, dim: usize, stride: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        let mut data = vec![0.0f32; rows * stride];
        for r in 0..rows {
            for x in &mut data[r * stride..r * stride + dim] {
                *x = rng.next_f32_symmetric();
            }
        }
        data
    }

    #[test]
    fn dot_block_is_bit_identical_to_pairwise() {
        for (dim, stride) in [(1, 8), (7, 8), (8, 8), (13, 16), (64, 64), (100, 104)] {
            let mut rng = SplitMix64::new(dim as u64);
            let q: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
            let block = random_block(11, dim, stride, 42 + dim as u64);
            let mut out = vec![0.0f32; 11];
            dot_block(&q, &block, stride, &mut out);
            for r in 0..11 {
                let exact = dot_unrolled(&q, &block[r * stride..r * stride + dim]);
                assert_eq!(out[r].to_bits(), exact.to_bits(), "dim {dim} row {r}");
            }
        }
    }

    #[test]
    fn threshold_variant_prunes_and_matches() {
        let dim = 33;
        let q: Vec<f32> = {
            let mut rng = SplitMix64::new(5);
            (0..dim).map(|_| rng.next_f32_symmetric()).collect()
        };
        // Cross the TILE strip boundary so the strip loop is exercised.
        let rows = TILE + 13;
        let block = random_block(rows, dim, dim, 6);
        let mut full = vec![0.0f32; rows];
        dot_block(&q, &block, dim, &mut full);
        let floor = full[14];
        let mut emitted = Vec::new();
        dot_block_threshold(&q, &block, dim, rows, floor, |r, s| emitted.push((r, s)));
        let expected: Vec<(usize, f32)> = full
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= floor)
            .map(|(r, &s)| (r, s))
            .collect();
        assert_eq!(emitted, expected);
        assert!(emitted.len() < rows);
    }

    #[test]
    fn cosine_threshold_matches_pairwise_kernel() {
        let dim = 20;
        let mut rng = SplitMix64::new(9);
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
        let qn = norm(&q);
        let mut block = random_block(10, dim, dim, 10);
        // Row 3 is a zero vector: cosine_with_norms scores it 0.0.
        block[3 * dim..4 * dim].fill(0.0);
        let norms: Vec<f32> = (0..10).map(|r| norm(&block[r * dim..(r + 1) * dim])).collect();
        let mut got = [f32::NAN; 10];
        cosine_block_threshold(&q, qn, &block, dim, &norms, f32::NEG_INFINITY, |r, s| got[r] = s);
        for r in 0..10 {
            let exact = cosine_with_norms(&q, &block[r * dim..(r + 1) * dim], qn, norms[r]);
            assert_eq!(got[r].to_bits(), exact.to_bits(), "row {r}");
        }
    }

    #[test]
    fn cosine_threshold_zero_query_scores_zero() {
        let block = random_block(4, 8, 8, 11);
        let norms: Vec<f32> = (0..4).map(|r| norm(&block[r * 8..(r + 1) * 8])).collect();
        let mut got = Vec::new();
        cosine_block_threshold(&[0.0; 8], 0.0, &block, 8, &norms, f32::NEG_INFINITY, |r, s| {
            got.push((r, s));
        });
        assert_eq!(got, vec![(0, 0.0), (1, 0.0), (2, 0.0), (3, 0.0)]);
        got.clear();
        cosine_block_threshold(&[0.0; 8], 0.0, &block, 8, &norms, 0.5, |r, s| got.push((r, s)));
        assert!(got.is_empty());
    }

    #[test]
    fn scores_matrix_matches_pairwise_loop() {
        // Cross the tile boundary in both directions, with padded strides.
        let (m, n, dim, ps, bs) = (TILE + 9, TILE + 17, 24, 24, 32);
        let probe = random_block(m, dim, ps, 1);
        let build = random_block(n, dim, bs, 2);
        let mut out = vec![0.0f32; m * n];
        scores_matrix(&probe, ps, m, dim, &build, bs, n, &mut out);
        for i in 0..m {
            for j in 0..n {
                let exact = dot_unrolled(
                    &probe[i * ps..i * ps + dim],
                    &build[j * bs..j * bs + dim],
                );
                assert_eq!(out[i * n + j].to_bits(), exact.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut out = [0.0f32; 0];
        dot_block(&[1.0, 2.0], &[], 2, &mut out);
        dot_block_threshold(&[1.0, 2.0], &[], 2, 0, 0.0, |_, _| panic!("no rows"));
        scores_matrix(&[], 2, 0, 2, &[], 2, 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_block_panics() {
        let mut out = [0.0f32; 3];
        dot_block(&[1.0; 4], &[0.0; 8], 4, &mut out);
    }
}

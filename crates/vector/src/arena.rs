//! Contiguous, padded row-major embedding arena for blocked kernels.
//!
//! [`VectorArena`] is the batch-friendly sibling of
//! [`crate::store::VectorStore`]: rows are padded to a multiple of eight
//! floats ([`ROW_ALIGN_FLOATS`]) so every row starts on a 32-byte-aligned
//! offset within the buffer and the 8-wide kernels never straddle a row
//! boundary; padding lanes are zero and never read. Norms are cached per
//! row, and [`VectorArena::block`] hands out zero-copy `(data, stride)`
//! views the [`crate::block`] kernels consume directly.
//!
//! [`VectorArena::from_texts`] fills the arena straight from an
//! [`EmbeddingCache`] via [`EmbeddingCache::get_batch_into`], so the
//! semantic hot path goes string → arena row without materializing a
//! per-string `Arc<Vec<f32>>`.

use crate::kernels::norm;
use crate::store::VectorStore;
use cx_embed::EmbeddingCache;
use cx_storage::QueryContext;

/// Charges `floats` f32s (plus per-row norm floats) to the ambient
/// query's memory budget. Panel construction is the dominant allocator
/// on the semantic hot path, so arenas account for themselves rather
/// than relying on every caller to remember.
fn charge_floats(floats: usize) {
    QueryContext::current().charge(floats * std::mem::size_of::<f32>());
}

/// Rows are padded to this many floats (32 bytes), the blocked kernels'
/// natural vector width.
pub const ROW_ALIGN_FLOATS: usize = 8;

/// A zero-copy view of consecutive arena (or store) rows, the unit the
/// blocked kernels operate on.
#[derive(Debug, Clone, Copy)]
pub struct RowBlock<'a> {
    /// Row-major floats; row `r` is `data[r * stride .. r * stride + dim]`.
    pub data: &'a [f32],
    /// Floats between consecutive row starts (`>= dim`).
    pub stride: usize,
    /// Logical row width.
    pub dim: usize,
    /// Number of rows in the view.
    pub rows: usize,
    /// Cached L2 norm per row.
    pub norms: &'a [f32],
}

impl<'a> RowBlock<'a> {
    /// Row `r` of the view as a `dim`-length slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.stride..r * self.stride + self.dim]
    }
}

/// A row-major `len × dim` matrix with padded rows and cached norms.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorArena {
    dim: usize,
    stride: usize,
    data: Vec<f32>,
    norms: Vec<f32>,
}

impl VectorArena {
    /// An empty arena of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let stride = dim.next_multiple_of(ROW_ALIGN_FLOATS);
        VectorArena { dim, stride, data: Vec::new(), norms: Vec::new() }
    }

    /// An empty arena with room for `rows` vectors.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        let mut arena = Self::new(dim);
        charge_floats(rows * (arena.stride + 1));
        arena.data.reserve(rows * arena.stride);
        arena.norms.reserve(rows);
        arena
    }

    /// Builds an arena by embedding `texts` through `cache` directly into
    /// the padded row-major buffer — one copy per string, no intermediate
    /// per-string allocation on the batch path.
    pub fn from_texts<S: AsRef<str>>(cache: &EmbeddingCache, texts: &[S]) -> Self {
        let dim = cache.dim();
        let mut arena = Self::new(dim);
        charge_floats(texts.len() * (arena.stride + 1));
        arena.data = vec![0.0f32; texts.len() * arena.stride];
        cache.get_batch_into(texts, arena.stride, &mut arena.data);
        arena.norms = (0..texts.len())
            .map(|r| norm(&arena.data[r * arena.stride..r * arena.stride + dim]))
            .collect();
        arena
    }

    /// Copies a [`VectorStore`] into padded arena layout.
    pub fn from_store(store: &VectorStore) -> Self {
        let mut arena = Self::with_capacity(store.dim(), store.len());
        for (_, row) in store.iter() {
            arena.push(row);
        }
        arena
    }

    /// Appends one vector, returning its row id.
    pub fn push(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector has wrong dimension");
        self.data.extend_from_slice(v);
        self.data.extend(std::iter::repeat_n(0.0, self.stride - self.dim));
        self.norms.push(norm(v));
        self.norms.len() - 1
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Logical dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Floats between consecutive row starts.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` as a `dim`-length slice (padding excluded).
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.stride..i * self.stride + self.dim]
    }

    /// Cached L2 norm of row `i`.
    #[inline]
    pub fn row_norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// All cached norms.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Zero-copy view of rows `range.start..range.end`.
    pub fn block(&self, range: std::ops::Range<usize>) -> RowBlock<'_> {
        assert!(range.end <= self.len(), "block range out of bounds");
        RowBlock {
            data: &self.data[range.start * self.stride..range.end * self.stride],
            stride: self.stride,
            dim: self.dim,
            rows: range.len(),
            norms: &self.norms[range.clone()],
        }
    }

    /// Zero-copy view of the whole arena.
    pub fn as_block(&self) -> RowBlock<'_> {
        self.block(0..self.len())
    }

    /// Gathers `rows` (by id, repeats allowed) into a new contiguous
    /// arena — the gather step that turns an id list (an index probe's
    /// candidates, a shared scan's per-query probe rows) into a
    /// kernel-ready panel. Norms are copied, not recomputed.
    ///
    /// # Panics
    /// Panics if any id is out of bounds.
    pub fn gather_rows(&self, rows: &[u32]) -> VectorArena {
        charge_floats(rows.len() * (self.stride + 1));
        let mut data = vec![0.0f32; rows.len() * self.stride];
        let mut norms = Vec::with_capacity(rows.len());
        for (k, &id) in rows.iter().enumerate() {
            let id = id as usize;
            data[k * self.stride..(k + 1) * self.stride]
                .copy_from_slice(&self.data[id * self.stride..(id + 1) * self.stride]);
            norms.push(self.norms[id]);
        }
        VectorArena { dim: self.dim, stride: self.stride, data, norms }
    }

    /// A copy with every row scaled to unit norm (zero rows left as-is),
    /// enabling prenormalized blocked scoring.
    pub fn normalized(&self) -> VectorArena {
        charge_floats(self.data.len() + self.norms.len());
        let mut data = self.data.clone();
        for (row, &n) in data.chunks_exact_mut(self.stride).zip(&self.norms) {
            if n > 0.0 {
                for x in &mut row[..self.dim] {
                    *x /= n;
                }
            }
        }
        VectorArena {
            dim: self.dim,
            stride: self.stride,
            data,
            norms: self.norms.iter().map(|&n| if n > 0.0 { 1.0 } else { 0.0 }).collect(),
        }
    }

    /// Densifies into an unpadded [`VectorStore`] (for the index builders).
    pub fn to_store(&self) -> VectorStore {
        let mut flat = Vec::with_capacity(self.len() * self.dim);
        for i in 0..self.len() {
            flat.extend_from_slice(self.row(i));
        }
        VectorStore::from_flat(self.dim, flat)
    }

    /// Approximate heap footprint in bytes (data + norms).
    pub fn memory_bytes(&self) -> usize {
        (self.data.len() + self.norms.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::dot_block;
    use crate::kernels::dot_unrolled;
    use cx_embed::HashNGramModel;
    use std::sync::Arc;

    #[test]
    fn padded_stride_and_zero_padding() {
        let mut a = VectorArena::new(5);
        assert_eq!(a.stride(), 8);
        a.push(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Padding lanes are zero.
        assert_eq!(&a.data[5..8], &[0.0, 0.0, 0.0]);
        // Already-aligned dims get no padding.
        assert_eq!(VectorArena::new(16).stride(), 16);
    }

    #[test]
    fn block_views_are_zero_copy_slices() {
        let mut a = VectorArena::new(3);
        for i in 0..6 {
            a.push(&[i as f32, 0.0, 0.0]);
        }
        let b = a.block(2..5);
        assert_eq!(b.rows, 3);
        assert_eq!(b.row(0), &[2.0, 0.0, 0.0]);
        assert_eq!(b.norms, &[2.0, 3.0, 4.0]);
        // Full view covers everything.
        assert_eq!(a.as_block().rows, 6);
    }

    #[test]
    fn from_store_round_trips() {
        let store = VectorStore::from_flat(3, vec![1.0, 0.0, 0.0, 0.0, 3.0, 4.0]);
        let arena = VectorArena::from_store(&store);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.row(1), store.row(1));
        assert_eq!(arena.row_norm(1), store.row_norm(1));
        let back = arena.to_store();
        assert_eq!(back, store);
    }

    #[test]
    fn from_texts_matches_per_string_cache_gets() {
        let cache = EmbeddingCache::new(Arc::new(HashNGramModel::new(1)));
        let texts = ["boots", "parka", "boots", "mug"];
        let arena = VectorArena::from_texts(&cache, &texts);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.dim(), cache.dim());
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(arena.row(i), &cache.get(t)[..], "row {i}");
        }
        // Duplicate strings cost one model invocation each.
        assert_eq!(cache.model().stats().invocations(), 3);
    }

    #[test]
    fn blocked_kernel_over_arena_matches_pairwise() {
        let cache = EmbeddingCache::new(Arc::new(HashNGramModel::new(2)));
        let arena = VectorArena::from_texts(&cache, &["a", "bb", "ccc", "dddd", "eeeee"]);
        let q = cache.get("query");
        let view = arena.as_block();
        let mut out = vec![0.0f32; view.rows];
        dot_block(&q, view.data, view.stride, &mut out);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got.to_bits(), dot_unrolled(&q, arena.row(i)).to_bits());
        }
    }

    #[test]
    fn gather_rows_copies_rows_and_norms() {
        let mut a = VectorArena::new(3);
        for i in 0..5 {
            a.push(&[i as f32, 0.0, 0.0]);
        }
        let g = a.gather_rows(&[4, 1, 1]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.row(0), &[4.0, 0.0, 0.0]);
        assert_eq!(g.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(g.row(2), &[1.0, 0.0, 0.0]);
        assert_eq!(g.norms(), &[4.0, 1.0, 1.0]);
        // Padding lanes stay zero so blocked kernels can run over it.
        let view = g.as_block();
        assert_eq!(view.stride, a.stride());
        assert_eq!(a.gather_rows(&[]).len(), 0);
    }

    #[test]
    fn normalized_rows_are_unit() {
        let mut a = VectorArena::new(2);
        a.push(&[3.0, 4.0]);
        a.push(&[0.0, 0.0]);
        let n = a.normalized();
        assert!((norm(n.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
        assert_eq!(n.row_norm(0), 1.0);
        assert_eq!(n.row_norm(1), 0.0);
    }

    #[test]
    fn memory_accounts_for_padding() {
        let mut a = VectorArena::new(5);
        a.push(&[0.0; 5]);
        assert_eq!(a.memory_bytes(), (8 + 1) * 4);
    }
}

//! Quantized sibling of [`crate::VectorArena`]: padded f16 or int8 panels.
//!
//! A [`QuantizedArena`] holds the same row-major, padded layout as
//! [`VectorArena`] but at a reduced precision tier
//! ([`QuantTier::F16`]/[`QuantTier::Int8`]), shrinking bytes-per-row 2–4×
//! so more candidate rows fit per cache line and panel scans stream less
//! data — the paper's Section VI half-precision opportunity.
//!
//! Scoring goes through the quantized panel kernels
//! ([`cx_embed::quant::dot_block_f16`], [`cx_embed::quant::dot_block_int8`]):
//! one query against the whole panel per call, never a per-candidate loop.
//! Scores carry a bounded absolute error versus the f32 blocked kernels
//! (see the tier docs); int8 scoring is bit-identical to the pairwise
//! [`cx_embed::quant::dot_int8`] kernel because its accumulator is exact.
//!
//! Like [`VectorArena::from_texts`], [`QuantizedArena::from_texts`] fills
//! straight from an [`EmbeddingCache`] batch call, then quantizes row by
//! row — the embed → arena → quantize path never materializes per-string
//! vectors.

use crate::arena::{VectorArena, ROW_ALIGN_FLOATS};
use cx_embed::quant::{
    dot_block_f16, dot_block_int8, f32_to_f16, quantize_query_int8, QuantTier, QuantizedVector,
};
use cx_embed::EmbeddingCache;
use std::fmt;

/// Error for tiers a [`QuantizedArena`] cannot hold ([`QuantTier::F32`]:
/// full precision lives in [`VectorArena`]).
///
/// A typed error — not a panic — so a mis-planned tier degrades to a
/// failed query instead of aborting a long-lived server process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedTier(pub QuantTier);

impl fmt::Display for UnsupportedTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantizedArena holds f16/int8 tiers; tier {:?} belongs in VectorArena",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedTier {}

/// Tier-specific row storage.
#[derive(Debug, Clone, PartialEq)]
enum QuantizedRows {
    /// IEEE binary16 bits, row-major at the arena stride.
    F16(Vec<u16>),
    /// Symmetric int8 rows with one scale per row (`value ≈ data * scale`).
    Int8 { data: Vec<i8>, scales: Vec<f32> },
}

/// A row-major `len × dim` quantized matrix with padded rows.
///
/// Padding lanes are zero and never read; `stride` matches
/// [`VectorArena`]'s ([`ROW_ALIGN_FLOATS`]-aligned) so a quantized panel
/// mirrors its f32 source row for row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedArena {
    dim: usize,
    stride: usize,
    rows: usize,
    data: QuantizedRows,
}

impl QuantizedArena {
    /// Quantizes every row of `arena` to `tier`.
    ///
    /// # Errors
    /// Returns [`UnsupportedTier`] for [`QuantTier::F32`] — full precision
    /// lives in [`VectorArena`]; this type only holds reduced tiers.
    pub fn from_arena(arena: &VectorArena, tier: QuantTier) -> Result<Self, UnsupportedTier> {
        let dim = arena.dim();
        let stride = arena.stride();
        let rows = arena.len();
        let data = match tier {
            QuantTier::F32 => return Err(UnsupportedTier(tier)),
            QuantTier::F16 => {
                cx_storage::QueryContext::current().charge(rows * stride * 2);
                let mut data = vec![0u16; rows * stride];
                for r in 0..rows {
                    for (i, &x) in arena.row(r).iter().enumerate() {
                        data[r * stride + i] = f32_to_f16(x);
                    }
                }
                QuantizedRows::F16(data)
            }
            QuantTier::Int8 => {
                cx_storage::QueryContext::current().charge(rows * (stride + 4));
                let mut data = vec![0i8; rows * stride];
                let mut scales = vec![0.0f32; rows];
                for r in 0..rows {
                    let QuantizedVector::Int8 { data: row, scale } =
                        QuantizedVector::to_int8(arena.row(r))
                    else {
                        unreachable!("to_int8 returns Int8");
                    };
                    data[r * stride..r * stride + dim].copy_from_slice(&row);
                    scales[r] = scale;
                }
                QuantizedRows::Int8 { data, scales }
            }
        };
        Ok(QuantizedArena { dim, stride, rows, data })
    }

    /// Embeds `texts` through `cache` into a padded f32 batch
    /// ([`VectorArena::from_texts`], i.e. [`EmbeddingCache::get_batch_into`])
    /// and quantizes it to `tier`.
    ///
    /// # Errors
    /// Returns [`UnsupportedTier`] for [`QuantTier::F32`], like
    /// [`Self::from_arena`].
    pub fn from_texts<S: AsRef<str>>(
        cache: &EmbeddingCache,
        texts: &[S],
        tier: QuantTier,
    ) -> Result<Self, UnsupportedTier> {
        Self::from_arena(&VectorArena::from_texts(cache, texts), tier)
    }

    /// The precision tier of the stored rows.
    pub fn tier(&self) -> QuantTier {
        match self.data {
            QuantizedRows::F16(_) => QuantTier::F16,
            QuantizedRows::Int8 { .. } => QuantTier::Int8,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Logical dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements between consecutive row starts.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Dequantized copy of row `i` (test/debug path, not the scan path).
    pub fn dequantize_row(&self, i: usize) -> Vec<f32> {
        assert!(i < self.rows, "row out of bounds");
        match &self.data {
            QuantizedRows::F16(d) => d[i * self.stride..i * self.stride + self.dim]
                .iter()
                .map(|&b| cx_embed::f16_to_f32(b))
                .collect(),
            QuantizedRows::Int8 { data, scales } => data
                [i * self.stride..i * self.stride + self.dim]
                .iter()
                .map(|&x| x as f32 * scales[i])
                .collect(),
        }
    }

    /// Scores `query` against every row via the quantized panel kernels:
    /// `out[r] ≈ dot(query, row_r)` within the tier's error bound.
    ///
    /// One kernel call per panel (int8 quantizes the query once, then runs
    /// the exact-integer block kernel and applies scales in
    /// [`cx_embed::quant::dot_int8`]'s multiply order).
    ///
    /// # Panics
    /// Panics if `query.len() != dim` or `out.len() != len()`.
    pub fn scores_into(&self, query: &[f32], out: &mut [f32]) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        match &self.data {
            QuantizedRows::F16(d) => dot_block_f16(query, d, self.stride, out),
            QuantizedRows::Int8 { data, scales } => {
                let (q, q_scale) = quantize_query_int8(query);
                let mut acc = vec![0i32; self.rows];
                dot_block_int8(&q, data, self.stride, &mut acc);
                // Scale application zips the per-row scales directly — no
                // indexed lookup in the inner loop.
                for ((&a, &scale), o) in acc.iter().zip(scales).zip(out.iter_mut()) {
                    *o = a as f32 * q_scale * scale;
                }
            }
        }
    }

    /// Convenience allocation wrapper over [`Self::scores_into`].
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows];
        self.scores_into(query, &mut out);
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match &self.data {
            QuantizedRows::F16(d) => d.len() * 2,
            QuantizedRows::Int8 { data, scales } => data.len() + scales.len() * 4,
        }
    }
}

// Re-exported here so arena callers see the alignment contract in one place.
const _: () = assert!(ROW_ALIGN_FLOATS == 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::dot_block;
    use cx_embed::rng::SplitMix64;
    use cx_embed::HashNGramModel;
    use std::sync::Arc;

    fn random_arena(rows: usize, dim: usize, seed: u64) -> VectorArena {
        let mut rng = SplitMix64::new(seed);
        let mut arena = VectorArena::with_capacity(dim, rows);
        for _ in 0..rows {
            arena.push(&rng.unit_vector(dim));
        }
        arena
    }

    #[test]
    fn mirrors_source_layout_and_shrinks_memory() {
        let arena = random_arena(10, 13, 5);
        let f16 = QuantizedArena::from_arena(&arena, QuantTier::F16).unwrap();
        let i8a = QuantizedArena::from_arena(&arena, QuantTier::Int8).unwrap();
        assert_eq!(f16.len(), 10);
        assert_eq!(f16.dim(), 13);
        assert_eq!(f16.stride(), arena.stride());
        assert_eq!(f16.tier(), QuantTier::F16);
        assert_eq!(i8a.tier(), QuantTier::Int8);
        assert!(f16.memory_bytes() < arena.memory_bytes());
        assert!(i8a.memory_bytes() < f16.memory_bytes());
    }

    #[test]
    fn scores_close_to_f32_blocked_kernel() {
        let arena = random_arena(37, 29, 11).normalized();
        let mut rng = SplitMix64::new(99);
        let q = rng.unit_vector(29);
        let view = arena.as_block();
        let mut exact = vec![0.0f32; arena.len()];
        dot_block(&q, view.data, view.stride, &mut exact);
        for (tier, bound) in [(QuantTier::F16, 1e-3f32), (QuantTier::Int8, 1.2e-2)] {
            let qa = QuantizedArena::from_arena(&arena, tier).unwrap();
            let got = qa.scores(&q);
            for (r, (g, e)) in got.iter().zip(&exact).enumerate() {
                assert!((g - e).abs() <= bound, "{tier:?} row {r}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn int8_scores_match_pairwise_quantized_dot_bitwise() {
        let arena = random_arena(9, 21, 3);
        let qa = QuantizedArena::from_arena(&arena, QuantTier::Int8).unwrap();
        let mut rng = SplitMix64::new(8);
        let q = rng.unit_vector(21);
        let (qi, qs) = quantize_query_int8(&q);
        let got = qa.scores(&q);
        for (r, g) in got.iter().enumerate() {
            let QuantizedVector::Int8 { data, scale } = QuantizedVector::to_int8(arena.row(r))
            else {
                unreachable!()
            };
            let want = cx_embed::dot_int8(&qi, qs, &data, scale);
            assert_eq!(g.to_bits(), want.to_bits(), "row {r}");
        }
    }

    #[test]
    fn zero_rows_score_zero() {
        let mut arena = VectorArena::new(6);
        arena.push(&[0.0; 6]);
        arena.push(&[0.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
        for tier in [QuantTier::F16, QuantTier::Int8] {
            let qa = QuantizedArena::from_arena(&arena, tier).unwrap();
            let s = qa.scores(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
            assert_eq!(s[0], 0.0, "{tier:?}");
            assert!(s[1] > 0.0);
            assert_eq!(qa.dequantize_row(0), vec![0.0; 6]);
        }
    }

    #[test]
    fn from_texts_goes_through_cache_batch() {
        let cache = EmbeddingCache::new(Arc::new(HashNGramModel::new(2)));
        let texts = ["boots", "parka", "boots"];
        let qa = QuantizedArena::from_texts(&cache, &texts, QuantTier::F16).unwrap();
        assert_eq!(qa.len(), 3);
        assert_eq!(qa.dim(), cache.dim());
        // Duplicate strings still cost one model invocation each.
        assert_eq!(cache.model().stats().invocations(), 2);
        // Rows dequantize close to the cached f32 embedding.
        let exact = cache.get("boots");
        for (a, b) in qa.dequantize_row(0).iter().zip(exact.iter()) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn f32_tier_rejected_with_typed_error() {
        let err = QuantizedArena::from_arena(&VectorArena::new(4), QuantTier::F32).unwrap_err();
        assert_eq!(err, UnsupportedTier(QuantTier::F32));
        assert!(err.to_string().contains("f16/int8 tiers"));
        assert!(QuantizedArena::from_texts(
            &EmbeddingCache::new(std::sync::Arc::new(HashNGramModel::new(2))),
            &["x"],
            QuantTier::F32,
        )
        .is_err());
    }

    #[test]
    fn empty_arena_scores_cleanly() {
        let qa = QuantizedArena::from_arena(&VectorArena::new(4), QuantTier::Int8).unwrap();
        assert!(qa.is_empty());
        assert!(qa.scores(&[0.0; 4]).is_empty());
    }
}

//! Contiguous embedding storage with cached norms.

use crate::arena::RowBlock;
use crate::kernels::norm;
use serde::{Deserialize, Serialize};

/// A row-major matrix of `len × dim` embeddings with per-row norms.
///
/// Materializing embeddings contiguously (instead of chasing per-string
/// hash-table entries pair-by-pair) is the "prefetch" rung of Figure 4: it
/// converts the inner join loop into streaming reads the hardware prefetcher
/// can follow, and caches norms so cosine becomes a single dot product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorStore {
    dim: usize,
    data: Vec<f32>,
    norms: Vec<f32>,
}

impl VectorStore {
    /// An empty store of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        VectorStore { dim, data: Vec::new(), norms: Vec::new() }
    }

    /// Builds a store from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "flat buffer not a multiple of dim");
        let norms = data.chunks_exact(dim).map(norm).collect();
        VectorStore { dim, data, norms }
    }

    /// Appends one vector, returning its row id.
    pub fn push(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector has wrong dimension");
        self.data.extend_from_slice(v);
        self.norms.push(norm(v));
        self.norms.len() - 1
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Cached L2 norm of row `i`.
    #[inline]
    pub fn row_norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// The flat row-major buffer.
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Zero-copy view of rows `range.start..range.end` for the blocked
    /// kernels (stride equals `dim`: store rows are unpadded).
    pub fn block(&self, range: std::ops::Range<usize>) -> RowBlock<'_> {
        assert!(range.end <= self.len(), "block range out of bounds");
        RowBlock {
            data: &self.data[range.start * self.dim..range.end * self.dim],
            stride: self.dim,
            dim: self.dim,
            rows: range.len(),
            norms: &self.norms[range],
        }
    }

    /// Zero-copy view of the whole store.
    pub fn as_block(&self) -> RowBlock<'_> {
        self.block(0..self.len())
    }

    /// Iterator over `(id, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.data.chunks_exact(self.dim).enumerate()
    }

    /// A copy with every row scaled to unit norm (zero rows left as-is),
    /// enabling the pre-normalized cosine kernel.
    pub fn normalized(&self) -> VectorStore {
        let mut data = self.data.clone();
        for (row, &n) in data.chunks_exact_mut(self.dim).zip(&self.norms) {
            if n > 0.0 {
                for x in row {
                    *x /= n;
                }
            }
        }
        let norms = vec![1.0; self.norms.len()];
        VectorStore { dim: self.dim, data, norms }
    }

    /// Approximate heap footprint in bytes (data + norms).
    pub fn memory_bytes(&self) -> usize {
        (self.data.len() + self.norms.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_access() {
        let mut s = VectorStore::new(3);
        assert!(s.is_empty());
        let id0 = s.push(&[1.0, 0.0, 0.0]);
        let id1 = s.push(&[0.0, 3.0, 4.0]);
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &[0.0, 3.0, 4.0]);
        assert!((s.row_norm(1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn from_flat_checks_shape() {
        let s = VectorStore::from_flat(2, vec![1.0, 0.0, 0.0, 2.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row_norm(0), 1.0);
        assert_eq!(s.row_norm(1), 2.0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_bad_shape_panics() {
        VectorStore::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_wrong_dim_panics() {
        VectorStore::new(2).push(&[1.0]);
    }

    #[test]
    fn normalized_rows_are_unit() {
        let mut s = VectorStore::new(2);
        s.push(&[3.0, 4.0]);
        s.push(&[0.0, 0.0]);
        let n = s.normalized();
        assert!((crate::kernels::norm(n.row(0)) - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
        assert_eq!(n.row_norm(0), 1.0);
    }

    #[test]
    fn iter_yields_all_rows() {
        let s = VectorStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<(usize, &[f32])> = s.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].1, &[3.0, 4.0]);
    }

    #[test]
    fn memory_accounting() {
        let s = VectorStore::from_flat(4, vec![0.0; 16]);
        assert_eq!(s.memory_bytes(), (16 + 4) * 4);
    }
}

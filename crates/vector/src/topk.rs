//! Bounded top-k collection by similarity score.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the top-k heap: `(score, id)` ordered by score ascending so
/// the heap root is the current worst retained candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f32,
    id: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by score (BinaryHeap is a max-heap, so reverse), with id
        // as tiebreaker for determinism.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Collects the `k` highest-scoring items seen.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// A collector retaining the best `k` items.
    pub fn new(k: usize) -> Self {
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers `(id, score)`; retained only if among the best `k` so far.
    /// NaN scores are ignored.
    #[inline]
    pub fn push(&mut self, id: usize, score: f32) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry { score, id });
        } else if let Some(worst) = self.heap.peek() {
            if score > worst.score {
                self.heap.pop();
                self.heap.push(Entry { score, id });
            }
        }
    }

    /// The score an item must beat to be retained (`None` until `k` items
    /// are held). Useful for early pruning.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finishes into `(id, score)` pairs sorted by descending score
    /// (ties by ascending id).
    pub fn into_sorted(self) -> Vec<(usize, f32)> {
        let mut items: Vec<(usize, f32)> = self.heap.into_iter().map(|e| (e.id, e.score)).collect();
        items.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(3);
        for (i, s) in [0.1, 0.9, 0.5, 0.7, 0.2, 0.8].iter().enumerate() {
            tk.push(i, *s);
        }
        let out = tk.into_sorted();
        assert_eq!(out.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![1, 5, 3]);
        assert_eq!(out[0].1, 0.9);
    }

    #[test]
    fn fewer_than_k() {
        let mut tk = TopK::new(10);
        tk.push(0, 0.5);
        tk.push(1, 0.6);
        assert_eq!(tk.threshold(), None);
        assert_eq!(tk.len(), 2);
        assert_eq!(tk.into_sorted().len(), 2);
    }

    #[test]
    fn threshold_after_saturation() {
        let mut tk = TopK::new(2);
        tk.push(0, 0.3);
        tk.push(1, 0.8);
        assert_eq!(tk.threshold(), Some(0.3));
        tk.push(2, 0.5);
        assert_eq!(tk.threshold(), Some(0.5));
    }

    #[test]
    fn zero_k_and_nan_ignored() {
        let mut tk = TopK::new(0);
        tk.push(0, 1.0);
        assert!(tk.is_empty());
        let mut tk = TopK::new(2);
        tk.push(0, f32::NAN);
        assert!(tk.is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // On equal scores the first-seen entries are retained (a later equal
        // score does not evict), and output order is ascending id — both
        // deterministic for a fixed input order.
        let mut tk = TopK::new(2);
        for id in [5, 3, 9, 1] {
            tk.push(id, 0.5);
        }
        let out = tk.into_sorted();
        assert_eq!(out.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![3, 5]);
    }
}

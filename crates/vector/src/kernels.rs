//! Distance kernels: the optimization ladder of Figure 4.
//!
//! Each function is a rung the experiments compare:
//!
//! 1. [`dot`] — straightforward iterator dot product,
//! 2. [`dot_unrolled`] — the explicit-SIMD rung ("CPU-specific
//!    instructions"): dispatches to `cx_simd::dot`, AVX-512/AVX2/NEON
//!    with a scalar fallback that is the historical 8-wide unrolled
//!    ladder bit-for-bit,
//! 3. [`cosine_prenormalized`] — cosine as a bare dot product once inputs
//!    are unit vectors (norms hoisted out of the O(n²) join loop),
//! 4. [`crate::block`] — the batched rung: one query against a contiguous
//!    panel of candidates ([`crate::block::dot_block`]), panels against
//!    panels ([`crate::block::scores_matrix`]), same per-pair arithmetic
//!    at batch-at-a-time memory traffic,
//! 5. quantized kernels live in [`cx_embed::quant`] and are benchmarked
//!    alongside.
//!
//! Every rung here scores one pair per call; the blocked rung reuses these
//! exact accumulation orders so its scores are bit-identical.

/// L2 norm of `v`.
#[inline]
pub fn norm(v: &[f32]) -> f32 {
    dot_unrolled(v, v).sqrt()
}

/// Straightforward dot product (the scalar rung).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fast dot product on the active SIMD path (see `cx_simd::dispatch`).
///
/// Historically this was the 8-wide unrolled ladder that LLVM
/// auto-vectorizes; it now dispatches to `cx_simd::dot`, whose scalar path
/// (`CX_SIMD=off`) is that exact ladder bit-for-bit and whose AVX2 /
/// AVX-512 / NEON paths use explicit FMA intrinsics. Routing the *pairwise*
/// rung through the same dispatch as the blocked kernels keeps the
/// per-ISA bit-identity contract: under one active path, blocked ≡
/// pairwise to the bit.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    cx_simd::dot(a, b)
}

/// Cosine similarity with norms computed inline (the naive rung: three
/// passes over the data per pair).
///
/// All three passes use the unrolled kernel, so this rung isolates exactly
/// one inefficiency — recomputing norms per pair — rather than mixing in
/// the scalar-vs-unrolled gap as well (which would skew the Figure 4
/// naive baseline two ways at once).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot_unrolled(a, b) / (na * nb)
}

/// Cosine similarity for pre-normalized inputs: just the unrolled dot.
#[inline]
pub fn cosine_prenormalized(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled(a, b)
}

/// Cosine similarity with externally cached norms (one pass per pair).
#[inline]
pub fn cosine_with_norms(a: &[f32], b: &[f32], norm_a: f32, norm_b: f32) -> f32 {
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    dot_unrolled(a, b) / (norm_a * norm_b)
}

/// Squared L2 distance.
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    let (a_main, a_rest) = a.split_at(chunks * 8);
    let (b_main, b_rest) = b.split_at(chunks * 8);
    for (ca, cb) in a_main.chunks_exact(8).zip(b_main.chunks_exact(8)) {
        for i in 0..8 {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (x, y) in a_rest.iter().zip(b_rest) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// L2 distance.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_squared(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| ((i * 31 % 17) as f32 - 8.0) / 10.0).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 13 % 23) as f32 - 11.0) / 10.0).collect();
        (a, b)
    }

    #[test]
    fn unrolled_matches_scalar() {
        // Exercise lengths around the unroll boundary.
        for n in [0, 1, 7, 8, 9, 16, 100, 101] {
            let (a, b) = vecs(n);
            let exact = dot(&a, &b);
            let fast = dot_unrolled(&a, &b);
            assert!((exact - fast).abs() < 1e-3, "n={n}: {exact} vs {fast}");
        }
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let (a, b) = vecs(100);
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        assert!((cosine(&a, &neg) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = vec![0.0; 10];
        let (a, _) = vecs(10);
        assert_eq!(cosine(&z, &a), 0.0);
        assert_eq!(cosine_with_norms(&z, &a, 0.0, norm(&a)), 0.0);
    }

    #[test]
    fn prenormalized_agrees_with_cosine() {
        let (mut a, mut b) = vecs(100);
        let (na, nb) = (norm(&a), norm(&b));
        let expected = cosine(&a, &b);
        assert!((cosine_with_norms(&a, &b, na, nb) - expected).abs() < 1e-5);
        for x in &mut a {
            *x /= na;
        }
        for x in &mut b {
            *x /= nb;
        }
        assert!((cosine_prenormalized(&a, &b) - expected).abs() < 1e-5);
    }

    #[test]
    fn l2_properties() {
        let (a, b) = vecs(64);
        assert_eq!(l2_distance(&a, &a), 0.0);
        let d = l2_distance(&a, &b);
        assert!(d > 0.0);
        assert!((l2_squared(&a, &b) - d * d).abs() < 1e-3);
        // Symmetry.
        assert!((l2_distance(&b, &a) - d).abs() < 1e-6);
    }

    #[test]
    fn norm_is_sqrt_self_dot() {
        let (a, _) = vecs(33);
        assert!((norm(&a) - dot(&a, &a).sqrt()).abs() < 1e-4);
    }
}

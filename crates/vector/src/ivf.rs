//! IVF-Flat: inverted-file index with a k-means coarse quantizer.
//!
//! The billion-scale similarity search systems the paper cites (Johnson et
//! al. [20]) are built on this structure: cluster the vectors into `nlist`
//! cells with k-means, keep an inverted list per cell, and at query time
//! scan only the `nprobe` cells whose centroids are closest to the query.

use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::{cosine_prenormalized, norm};
use crate::store::VectorStore;
use crate::topk::TopK;
use cx_embed::rng::SplitMix64;

/// Tuning parameters for [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfParams {
    /// Number of inverted lists (k-means cells).
    pub nlist: usize,
    /// Cells scanned per query.
    pub nprobe: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams { nlist: 64, nprobe: 8, iterations: 10, seed: 0x1F }
    }
}

/// IVF-Flat index over normalized vectors, cosine metric.
pub struct IvfIndex {
    store: VectorStore,
    /// `nlist × dim` centroid matrix (unit-normalized).
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
    params: IvfParams,
    stats: IndexStats,
}

impl IvfIndex {
    /// Builds the index over `store` with `params`. `nlist` is capped at
    /// the number of vectors.
    pub fn build(store: &VectorStore, params: IvfParams) -> Self {
        assert!(params.nlist > 0, "nlist must be positive");
        assert!(params.nprobe > 0, "nprobe must be positive");
        let store = store.normalized();
        let dim = store.dim();
        let n = store.len();
        let nlist = params.nlist.min(n.max(1));

        // Deterministic k-means++-lite init: evenly strided picks, which is
        // reproducible and good enough for a coarse quantizer.
        let mut centroids = vec![0.0f32; nlist * dim];
        if n > 0 {
            let stride = (n / nlist).max(1);
            for c in 0..nlist {
                let src = store.row((c * stride) % n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(src);
            }
        }
        let mut rng = SplitMix64::new(params.seed);

        let mut assignment = vec![0u32; n];
        let iterations = if n == 0 { 0 } else { params.iterations };
        for _ in 0..iterations {
            // Assign.
            for (i, row) in store.iter() {
                assignment[i] = nearest_centroid(&centroids, dim, nlist, row) as u32;
            }
            // Update.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0u32; nlist];
            for (i, row) in store.iter() {
                let c = assignment[i] as usize;
                counts[c] += 1;
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row) {
                    *s += x as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    // Re-seed empty cells with a random existing vector.
                    let pick = rng.next_range(n.max(1) as u64) as usize;
                    centroids[c * dim..(c + 1) * dim].copy_from_slice(store.row(pick));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let dst = &mut centroids[c * dim..(c + 1) * dim];
                for (d, s) in dst.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *d = (*s * inv) as f32;
                }
                // Normalize centroid for the cosine metric.
                let cn = norm(dst);
                if cn > 0.0 {
                    for x in dst.iter_mut() {
                        *x /= cn;
                    }
                }
            }
        }

        // Final assignment into inverted lists.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (i, row) in store.iter() {
            let c = nearest_centroid(&centroids, dim, nlist, row);
            lists[c].push(i as u32);
        }

        IvfIndex {
            store,
            centroids,
            lists,
            params: IvfParams { nlist, ..params },
            stats: IndexStats::default(),
        }
    }

    /// Builds with default parameters.
    pub fn build_default(store: &VectorStore) -> Self {
        Self::build(store, IvfParams::default())
    }

    /// The parameters the index was built with (nlist possibly capped).
    pub fn params(&self) -> IvfParams {
        self.params
    }

    /// The `nprobe` cells nearest to `q`, by centroid cosine.
    fn probe_cells(&self, q: &[f32]) -> Vec<usize> {
        let dim = self.store.dim();
        let nlist = self.lists.len();
        let mut topk = TopK::new(self.params.nprobe.min(nlist));
        for c in 0..nlist {
            let score = cosine_prenormalized(q, &self.centroids[c * dim..(c + 1) * dim]);
            topk.push(c, score);
        }
        topk.into_sorted().into_iter().map(|(c, _)| c).collect()
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.store.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

#[inline]
fn nearest_centroid(centroids: &[f32], dim: usize, nlist: usize, v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for c in 0..nlist {
        let score = cosine_prenormalized(v, &centroids[c * dim..(c + 1) * dim]);
        if score > best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

impl VectorIndex for IvfIndex {
    fn name(&self) -> &'static str {
        "ivf-flat"
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let cells = self.probe_cells(&q);
        let mut examined = 0usize;
        let mut out = Vec::new();
        for c in cells {
            for &id in &self.lists[c] {
                examined += 1;
                let score = cosine_prenormalized(&q, self.store.row(id as usize));
                if score >= threshold {
                    out.push(SearchResult { id: id as usize, score });
                }
            }
        }
        self.stats.record_search(examined);
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let cells = self.probe_cells(&q);
        let mut examined = 0usize;
        let mut topk = TopK::new(k);
        for c in cells {
            for &id in &self.lists[c] {
                examined += 1;
                topk.push(id as usize, cosine_prenormalized(&q, self.store.row(id as usize)));
            }
        }
        self.stats.record_search(examined);
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        let lists: usize = self.lists.iter().map(|l| l.len() * 4 + 24).sum();
        self.store.memory_bytes() + self.centroids.len() * 4 + lists
    }

    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    fn clustered_store(n: usize, c: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = SplitMix64::new(seed);
        let centroids: Vec<Vec<f32>> = (0..c).map(|_| rng.unit_vector(dim)).collect();
        let mut store = VectorStore::new(dim);
        for i in 0..n {
            let centroid = &centroids[i % c];
            let noise = rng.unit_vector(dim);
            let v: Vec<f32> = centroid
                .iter()
                .zip(&noise)
                .map(|(c, n)| c + 0.25 * n)
                .collect();
            store.push(&v);
        }
        store
    }

    #[test]
    fn recall_against_brute_force() {
        let store = clustered_store(600, 12, 48, 21);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 24, nprobe: 6, iterations: 8, seed: 5 },
        );
        let exact = BruteForceIndex::build(&store);
        let mut found = 0usize;
        let mut expected = 0usize;
        for probe in 0..40 {
            let q = store.row(probe).to_vec();
            let truth = exact.search_threshold(&q, 0.9);
            let ids: std::collections::HashSet<usize> = ivf
                .search_threshold(&q, 0.9)
                .iter()
                .map(|r| r.id)
                .collect();
            expected += truth.len();
            found += truth.iter().filter(|r| ids.contains(&r.id)).count();
        }
        let recall = found as f64 / expected as f64;
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn probes_fewer_than_full_scan() {
        let store = clustered_store(1000, 20, 48, 33);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 32, nprobe: 4, iterations: 6, seed: 5 },
        );
        ivf.search_threshold(store.row(0), 0.9);
        let examined = ivf.stats().candidates_examined();
        assert!(examined < 500, "examined {examined}");
        assert!(examined > 0);
    }

    #[test]
    fn nlist_capped_by_store_size() {
        let store = clustered_store(10, 2, 16, 1);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 100, nprobe: 100, iterations: 3, seed: 1 },
        );
        assert_eq!(ivf.params().nlist, 10);
        // With nprobe == nlist the search is exhaustive: exact results.
        let out = ivf.search_topk(store.row(0), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn every_vector_lands_in_exactly_one_list() {
        let store = clustered_store(200, 4, 16, 9);
        let ivf = IvfIndex::build_default(&store);
        let mut all: Vec<u32> = ivf.lists.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_builds() {
        let store = clustered_store(150, 5, 24, 13);
        let a = IvfIndex::build_default(&store);
        let b = IvfIndex::build_default(&store);
        assert_eq!(
            a.search_topk(store.row(3), 5),
            b.search_topk(store.row(3), 5)
        );
    }

    #[test]
    fn empty_store_searches_cleanly() {
        let ivf = IvfIndex::build_default(&VectorStore::new(8));
        assert!(ivf.search_threshold(&[0.5; 8], 0.5).is_empty());
        assert!(ivf.search_topk(&[0.5; 8], 3).is_empty());
    }
}

//! IVF-Flat: inverted-file index with a k-means coarse quantizer.
//!
//! The billion-scale similarity search systems the paper cites (Johnson et
//! al. \[20\]) are built on this structure: cluster the vectors into `nlist`
//! cells with k-means, keep an inverted list per cell, and at query time
//! scan only the `nprobe` cells whose centroids are closest to the query.
//!
//! Storage is *cell-contiguous*: after clustering, vectors are regrouped so
//! each inverted list occupies one contiguous arena block. A probe then
//! scores its whole cell with one blocked-kernel call
//! ([`dot_block_threshold`]) instead of chasing ids row by row — the same
//! batch-at-a-time shape as the rest of the semantic hot path. The k-means
//! build loop is blocked too: each assign step scores row tiles against
//! the padded centroid panel with [`scores_matrix`], so training is a
//! sequence of GEMM-shaped scans rather than per-pair kernel calls.

use crate::arena::{VectorArena, ROW_ALIGN_FLOATS};
use crate::block::{dot_block, dot_block_threshold, scores_matrix, TILE};
use crate::index::{sort_results, IndexStats, SearchResult, VectorIndex};
use crate::kernels::norm;
use crate::store::VectorStore;
use crate::topk::TopK;
use cx_embed::rng::SplitMix64;

/// Tuning parameters for [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfParams {
    /// Number of inverted lists (k-means cells).
    pub nlist: usize,
    /// Cells scanned per query.
    pub nprobe: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams { nlist: 64, nprobe: 8, iterations: 10, seed: 0x1F }
    }
}

/// IVF-Flat index over normalized vectors, cosine metric.
pub struct IvfIndex {
    /// Normalized vectors regrouped cell-contiguously: cell `c` is arena
    /// rows `offsets[c]..offsets[c + 1]`.
    arena: VectorArena,
    /// Original vector id for each arena row.
    ids: Vec<u32>,
    /// `nlist + 1` prefix offsets into `arena`/`ids`.
    offsets: Vec<usize>,
    /// `nlist × cstride` centroid matrix (unit-normalized, row-major,
    /// kernel-padded like arena rows).
    centroids: Vec<f32>,
    /// Floats between consecutive centroid rows.
    cstride: usize,
    params: IvfParams,
    stats: IndexStats,
}

/// Writes the nearest-centroid id of every `data` row into `out`, scoring
/// row tiles against the whole centroid panel with [`scores_matrix`] —
/// the k-means assign step as one GEMM-shaped blocked scan per tile
/// instead of a per-(row, centroid) pairwise loop. Scores (and therefore
/// argmax ties, broken toward the lower cell id) are bit-identical to the
/// pairwise kernel.
fn assign_cells(data: &VectorArena, centroids: &[f32], cstride: usize, nlist: usize, out: &mut [u32]) {
    let n = data.len();
    let dim = data.dim();
    let mut scores = vec![0.0f32; TILE * nlist];
    for t0 in (0..n).step_by(TILE) {
        let tile = data.block(t0..(t0 + TILE).min(n));
        scores_matrix(
            tile.data,
            tile.stride,
            tile.rows,
            dim,
            centroids,
            cstride,
            nlist,
            &mut scores[..tile.rows * nlist],
        );
        for r in 0..tile.rows {
            let row_scores = &scores[r * nlist..(r + 1) * nlist];
            let mut best = 0usize;
            let mut best_score = f32::NEG_INFINITY;
            for (c, &s) in row_scores.iter().enumerate() {
                if s > best_score {
                    best_score = s;
                    best = c;
                }
            }
            out[t0 + r] = best as u32;
        }
    }
}

impl IvfIndex {
    /// Builds the index over `arena` with `params`. `nlist` is capped at
    /// the number of vectors.
    pub fn build(arena: &VectorArena, params: IvfParams) -> Self {
        assert!(params.nlist > 0, "nlist must be positive");
        assert!(params.nprobe > 0, "nprobe must be positive");
        let data = arena.normalized();
        let dim = data.dim();
        let n = data.len();
        let nlist = params.nlist.min(n.max(1));
        let cstride = dim.next_multiple_of(ROW_ALIGN_FLOATS);

        // Deterministic k-means++-lite init: evenly strided picks, which is
        // reproducible and good enough for a coarse quantizer.
        let mut centroids = vec![0.0f32; nlist * cstride];
        if n > 0 {
            let pick_stride = (n / nlist).max(1);
            for c in 0..nlist {
                let src = data.row((c * pick_stride) % n);
                centroids[c * cstride..c * cstride + dim].copy_from_slice(src);
            }
        }
        let mut rng = SplitMix64::new(params.seed);

        let mut assignment = vec![0u32; n];
        let iterations = if n == 0 { 0 } else { params.iterations };
        for _ in 0..iterations {
            // Assign: tiled blocked scan over the centroid panel.
            assign_cells(&data, &centroids, cstride, nlist, &mut assignment);
            // Update.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0u32; nlist];
            for (i, &cell) in assignment.iter().enumerate() {
                let c = cell as usize;
                counts[c] += 1;
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(data.row(i)) {
                    *s += x as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    // Re-seed empty cells with a random existing vector.
                    let pick = rng.next_range(n.max(1) as u64) as usize;
                    centroids[c * cstride..c * cstride + dim].copy_from_slice(data.row(pick));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let dst = &mut centroids[c * cstride..c * cstride + dim];
                for (d, s) in dst.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *d = (*s * inv) as f32;
                }
                // Normalize centroid for the cosine metric.
                let cn = norm(dst);
                if cn > 0.0 {
                    for x in dst.iter_mut() {
                        *x /= cn;
                    }
                }
            }
        }

        // Final assignment, then regroup vectors cell-contiguously so each
        // inverted list is one blocked-kernel scan.
        let mut cell_of = vec![0u32; n];
        assign_cells(&data, &centroids, cstride, nlist, &mut cell_of);
        let mut counts = vec![0usize; nlist];
        for &c in &cell_of {
            counts[c as usize] += 1;
        }
        let mut offsets = vec![0usize; nlist + 1];
        for c in 0..nlist {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut ids = vec![0u32; n];
        let mut arena = VectorArena::with_capacity(dim, n);
        let mut cursor = offsets.clone();
        // Two passes keep ids and rows aligned: ids first (ordered by id
        // within each cell because rows are visited in id order)…
        for i in 0..n {
            let slot = cursor[cell_of[i] as usize];
            ids[slot] = i as u32;
            cursor[cell_of[i] as usize] += 1;
        }
        // …then rows pushed in final arena order.
        for &id in &ids {
            arena.push(data.row(id as usize));
        }

        IvfIndex {
            arena,
            ids,
            offsets,
            centroids,
            cstride,
            params: IvfParams { nlist, ..params },
            stats: IndexStats::default(),
        }
    }

    /// Builds with default parameters.
    pub fn build_default(arena: &VectorArena) -> Self {
        Self::build(arena, IvfParams::default())
    }

    /// Convenience builder for store-based callers: copies `store` into
    /// arena layout first.
    pub fn build_from_store(store: &VectorStore, params: IvfParams) -> Self {
        Self::build(&VectorArena::from_store(store), params)
    }

    /// The parameters the index was built with (nlist possibly capped).
    pub fn params(&self) -> IvfParams {
        self.params
    }

    /// Number of inverted lists.
    pub fn num_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Original vector ids stored in cell `c`.
    pub fn cell_ids(&self, c: usize) -> &[u32] {
        &self.ids[self.offsets[c]..self.offsets[c + 1]]
    }

    /// The `nprobe` cells nearest to `q`, by centroid cosine — itself a
    /// blocked scan over the contiguous (padded) centroid matrix.
    fn probe_cells(&self, q: &[f32]) -> Vec<usize> {
        let nlist = self.num_cells();
        let mut topk = TopK::new(self.params.nprobe.min(nlist));
        let mut scores = [0.0f32; TILE];
        for c0 in (0..nlist).step_by(TILE) {
            let c1 = (c0 + TILE).min(nlist);
            dot_block(q, &self.centroids[c0 * self.cstride..], self.cstride, &mut scores[..c1 - c0]);
            for (k, &score) in scores[..c1 - c0].iter().enumerate() {
                topk.push(c0 + k, score);
            }
        }
        topk.into_sorted().into_iter().map(|(c, _)| c).collect()
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.arena.dim(), "query dimension mismatch");
        let n = norm(query);
        if n == 0.0 {
            return query.to_vec();
        }
        query.iter().map(|x| x / n).collect()
    }
}

impl VectorIndex for IvfIndex {
    fn name(&self) -> &'static str {
        "ivf-flat"
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let cells = self.probe_cells(&q);
        let mut examined = 0usize;
        let mut out = Vec::new();
        for c in cells {
            let block = self.arena.block(self.offsets[c]..self.offsets[c + 1]);
            examined += block.rows;
            let base = self.offsets[c];
            dot_block_threshold(&q, block.data, block.stride, block.rows, threshold, |r, score| {
                out.push(SearchResult { id: self.ids[base + r] as usize, score })
            });
        }
        self.stats.record_search(examined);
        sort_results(&mut out);
        out
    }

    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        let q = self.normalized_query(query);
        let cells = self.probe_cells(&q);
        let mut examined = 0usize;
        let mut topk = TopK::new(k);
        for c in cells {
            let block = self.arena.block(self.offsets[c]..self.offsets[c + 1]);
            examined += block.rows;
            let base = self.offsets[c];
            // The current heap floor prunes write-back within each cell.
            let floor = topk.threshold().unwrap_or(f32::NEG_INFINITY);
            dot_block_threshold(&q, block.data, block.stride, block.rows, floor, |r, score| {
                topk.push(self.ids[base + r] as usize, score)
            });
        }
        self.stats.record_search(examined);
        topk.into_sorted()
            .into_iter()
            .map(|(id, score)| SearchResult { id, score })
            .collect()
    }

    fn stats(&self) -> &IndexStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
            + self.centroids.len() * 4
            + self.ids.len() * 4
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    fn is_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    fn clustered_arena(n: usize, c: usize, dim: usize, seed: u64) -> VectorArena {
        let mut rng = SplitMix64::new(seed);
        let centroids: Vec<Vec<f32>> = (0..c).map(|_| rng.unit_vector(dim)).collect();
        let mut store = VectorArena::new(dim);
        for i in 0..n {
            let centroid = &centroids[i % c];
            let noise = rng.unit_vector(dim);
            let v: Vec<f32> = centroid
                .iter()
                .zip(&noise)
                .map(|(c, n)| c + 0.25 * n)
                .collect();
            store.push(&v);
        }
        store
    }

    #[test]
    fn recall_against_brute_force() {
        let store = clustered_arena(600, 12, 48, 21);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 24, nprobe: 6, iterations: 8, seed: 5 },
        );
        let exact = BruteForceIndex::build(&store);
        let mut found = 0usize;
        let mut expected = 0usize;
        for probe in 0..40 {
            let q = store.row(probe).to_vec();
            let truth = exact.search_threshold(&q, 0.9);
            let ids: std::collections::HashSet<usize> = ivf
                .search_threshold(&q, 0.9)
                .iter()
                .map(|r| r.id)
                .collect();
            expected += truth.len();
            found += truth.iter().filter(|r| ids.contains(&r.id)).count();
        }
        let recall = found as f64 / expected as f64;
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn probes_fewer_than_full_scan() {
        let store = clustered_arena(1000, 20, 48, 33);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 32, nprobe: 4, iterations: 6, seed: 5 },
        );
        ivf.search_threshold(store.row(0), 0.9);
        let examined = ivf.stats().candidates_examined();
        assert!(examined < 500, "examined {examined}");
        assert!(examined > 0);
    }

    #[test]
    fn nlist_capped_by_store_size() {
        let store = clustered_arena(10, 2, 16, 1);
        let ivf = IvfIndex::build(
            &store,
            IvfParams { nlist: 100, nprobe: 100, iterations: 3, seed: 1 },
        );
        assert_eq!(ivf.params().nlist, 10);
        // With nprobe == nlist the search is exhaustive: exact results.
        let out = ivf.search_topk(store.row(0), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn every_vector_lands_in_exactly_one_cell() {
        let store = clustered_arena(200, 4, 16, 9);
        let ivf = IvfIndex::build_default(&store);
        let mut all: Vec<u32> = (0..ivf.num_cells())
            .flat_map(|c| ivf.cell_ids(c).iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn cell_storage_is_contiguous_and_aligned_with_ids() {
        let store = clustered_arena(150, 6, 24, 2);
        let ivf = IvfIndex::build_default(&store);
        let normalized = store.normalized();
        for c in 0..ivf.num_cells() {
            for (k, &id) in ivf.cell_ids(c).iter().enumerate() {
                let row = ivf.arena.row(ivf.offsets[c] + k);
                assert_eq!(row, normalized.row(id as usize), "cell {c} slot {k}");
            }
        }
    }

    #[test]
    fn deterministic_builds() {
        let store = clustered_arena(150, 5, 24, 13);
        let a = IvfIndex::build_default(&store);
        let b = IvfIndex::build_default(&store);
        assert_eq!(
            a.search_topk(store.row(3), 5),
            b.search_topk(store.row(3), 5)
        );
    }

    #[test]
    fn empty_store_searches_cleanly() {
        let ivf = IvfIndex::build_default(&VectorArena::new(8));
        assert!(ivf.search_threshold(&[0.5; 8], 0.5).is_empty());
        assert!(ivf.search_topk(&[0.5; 8], 3).is_empty());
    }
}

//! The common interface over exact and approximate similarity indexes.

use std::sync::atomic::{AtomicU64, Ordering};

/// One match: row id and cosine similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    pub id: usize,
    pub score: f32,
}

/// Cumulative probe counters, exposed so the optimizer's cost model can be
/// validated against observed work (Section V: index structures "have to be
/// included in the optimization process equally as relational indexes").
#[derive(Debug, Default)]
pub struct IndexStats {
    searches: AtomicU64,
    candidates_examined: AtomicU64,
}

impl IndexStats {
    /// Records one search that examined `candidates` vectors exactly.
    pub fn record_search(&self, candidates: usize) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.candidates_examined
            .fetch_add(candidates as u64, Ordering::Relaxed);
    }

    /// Number of searches issued.
    pub fn searches(&self) -> u64 {
        self.searches.load(Ordering::Relaxed)
    }

    /// Total candidates exactly evaluated across searches.
    pub fn candidates_examined(&self) -> u64 {
        self.candidates_examined.load(Ordering::Relaxed)
    }

    /// Mean candidates per search (0 when unused).
    pub fn mean_candidates(&self) -> f64 {
        let s = self.searches();
        if s == 0 {
            0.0
        } else {
            self.candidates_examined() as f64 / s as f64
        }
    }

    /// Resets counters (between experiment runs).
    pub fn reset(&self) {
        self.searches.store(0, Ordering::Relaxed);
        self.candidates_examined.store(0, Ordering::Relaxed);
    }
}

/// A similarity index over a fixed set of vectors, searched by cosine.
///
/// Implementations normalize their stored vectors at build time; queries
/// are normalized per call. Returned results are sorted by descending
/// score with ascending-id tie-breaks, so results are deterministic.
pub trait VectorIndex: Send + Sync {
    /// Index kind name (for EXPLAIN output).
    fn name(&self) -> &'static str;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All vectors with cosine similarity ≥ `threshold` to `query`.
    fn search_threshold(&self, query: &[f32], threshold: f32) -> Vec<SearchResult>;

    /// The `k` most similar vectors to `query`.
    fn search_topk(&self, query: &[f32], k: usize) -> Vec<SearchResult>;

    /// Cumulative probe counters.
    fn stats(&self) -> &IndexStats;

    /// Approximate index memory footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Whether results are exact (brute force) or approximate (LSH/IVF).
    fn is_exact(&self) -> bool;
}

/// Sorts results canonically: descending score, ascending id.
pub fn sort_results(results: &mut [SearchResult]) {
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_reset() {
        let s = IndexStats::default();
        s.record_search(10);
        s.record_search(20);
        assert_eq!(s.searches(), 2);
        assert_eq!(s.candidates_examined(), 30);
        assert!((s.mean_candidates() - 15.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.searches(), 0);
        assert_eq!(s.mean_candidates(), 0.0);
    }

    #[test]
    fn canonical_sort() {
        let mut r = vec![
            SearchResult { id: 2, score: 0.5 },
            SearchResult { id: 1, score: 0.9 },
            SearchResult { id: 0, score: 0.5 },
        ];
        sort_results(&mut r);
        assert_eq!(r.iter().map(|x| x.id).collect::<Vec<_>>(), vec![1, 0, 2]);
    }
}

//! Tracing-on integration tests: span nesting and ordering across the
//! MQO group-drain path, shared-span attribution to every member, fault
//! events in victim traces under a seeded storm, and the Prometheus
//! export surface round-tripping through the in-tree parser.

use context_engine::{Engine, EngineConfig};
use cx_embed::ClusteredTextModel;
use cx_obs::{promparse, QueryTrace, SpanRecord};
use cx_serve::{FaultPlan, ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn build_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
        "blazer", "canine", "feline", "lace-ups",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 10.0 + 3.0 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();
    // Ballast for the storm tests: a pure-relational table big enough
    // that sorting it takes real wall time (see `Ballast`).
    let n = 300_000usize;
    let shuffled: Vec<i64> = (0..n as i64).map(|k| (k * 48271) % n as i64).collect();
    let ballast = Table::from_columns(
        Schema::new(vec![Field::new("x", DataType::Int64)]),
        vec![Column::from_i64(shuffled)],
    )
    .unwrap();
    engine.register_table("ballast", ballast).unwrap();
    engine
}

/// Keeps one slow, non-shareable relational query in flight for a
/// storm's whole duration. On a single core a barrier storm of tiny
/// queries can fully serialize — each query finishes inside its thread's
/// timeslice, so no scan-queue leader ever observes a second in-flight
/// query and nobody lingers. The ballast makes every leader check
/// contended, the leader lingers, and the runnable siblings pile into
/// its group. Relational-only: no scan signature, so it never enters
/// the scan queue or the sharing stats itself.
struct Ballast {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Ballast {
    fn start(server: &Arc<Server>) -> Ballast {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let server = Arc::clone(server);
        let handle = std::thread::spawn(move || {
            let mut lap = 0usize;
            while !flag.load(Ordering::Relaxed) {
                // A distinct limit per lap defeats the plan cache and the
                // result memo, so every lap genuinely re-sorts.
                let q = server
                    .table("ballast")
                    .unwrap()
                    .sort(&[("x", true)])
                    .limit(400_000 + lap);
                server.execute(&q).unwrap();
                lap += 1;
            }
        });
        Ballast { stop, handle: Some(handle) }
    }
}

impl Drop for Ballast {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn span_names(spans: &[SpanRecord]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = spans.iter().map(|s| s.name).collect();
    names.sort_unstable();
    names.dedup();
    names
}

/// Runs a storm of prepared executions with distinct bindings through a
/// tracing server sized so the leader lingers a real window and the
/// whole storm coalesces into shared groups; returns the traces of the
/// results that were answered by a shared sweep.
fn coalesced_prepared_traces(threads: usize) -> Vec<QueryTrace> {
    let server = Server::new(
        build_engine(),
        ServeConfig {
            tracing: true,
            // group_max above the thread count: the group seals on
            // linger expiry, so queue waits dominate the timeline and
            // the span sum vs. total assertion is timing-robust.
            scan_group_max: threads * 2,
            scan_linger: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let targets = ["boots", "parka", "kitten", "sneakers", "coat", "puppy"];
    assert!(threads <= targets.len());
    // Contention backstop (see `Ballast`), plus each thread runs a
    // *sequence* of executions with fresh bindings: a one-shot barrier
    // storm can degenerate into sequential solo runs when thread wakeups
    // stagger (each tiny query finishes before the next thread even
    // wakes, so nobody ever looks contended), but sustained sequences
    // keep the in-flight count up — and the first leader that lingers
    // pulls every concurrent sibling into its group.
    let _ballast = Ballast::start(&server);
    let mut traces: Vec<QueryTrace> = Vec::new();
    for attempt in 0..5 {
        let rounds = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let storm_traces: Vec<QueryTrace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let server = server.clone();
                    let barrier = barrier.clone();
                    let target = targets[i];
                    s.spawn(move || {
                        let session = server.session();
                        let template = session
                            .table("products")
                            .unwrap()
                            .semantic_filter_param("name", 0, "m", 0.75)
                            .sort(&[("product_id", true)]);
                        let prepared = session.prepare(&template).unwrap();
                        barrier.wait();
                        (0..rounds)
                            .filter_map(|round| {
                                let binding = format!("{target} {attempt} {round}");
                                let r = prepared
                                    .execute(&[Scalar::from(binding.as_str())])
                                    .unwrap();
                                r.shared_scan.then(|| r.trace.expect("tracing is on"))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        traces.extend(storm_traces);
        if traces.len() >= 2 {
            break;
        }
    }
    assert!(
        traces.len() >= 2,
        "storm failed to coalesce in 5 attempts: {:?}",
        server.scan_sharing_stats()
    );
    assert!(server.sweep_histogram().snapshot().count >= 1);
    traces
}

#[test]
fn coalesced_prepared_trace_covers_the_lifecycle() {
    for trace in coalesced_prepared_traces(6) {
        let spans = trace.spans();
        let names = span_names(&spans);
        // The acceptance bar: at least six distinct lifecycle spans.
        assert!(
            names.len() >= 6,
            "expected >= 6 distinct spans, got {names:?}\n{}",
            trace.render()
        );
        for required in ["plan_cache", "scan_queue_wait", "admission", "shared_sweep", "execute"] {
            assert!(names.contains(&required), "missing {required}: {names:?}");
        }
        // Top-level spans are built non-overlapping, so their sum must
        // land within 10% of the end-to-end latency.
        let total = trace.total_ns();
        let attributed = trace.attributed_ns();
        assert!(total > 0);
        let gap = total.abs_diff(attributed);
        assert!(
            gap <= total / 10,
            "attributed {attributed} ns vs total {total} ns (gap {gap})\n{}",
            trace.render()
        );
        assert!(trace.outcome().as_deref() == Some("ok (shared scan)"), "{:?}", trace.outcome());
    }
}

#[test]
fn drain_spans_nest_order_and_tag_shared_work() {
    let traces = coalesced_prepared_traces(6);
    let mut saw_follower = false;
    for trace in &traces {
        let spans = trace.spans();
        let find = |name: &str| spans.iter().find(|s| s.name == name);

        // The shared sweep is attributed to *every* member, tagged.
        let sweep = find("shared_sweep").expect("every member gets the sweep span");
        assert!(sweep.shared, "shared_sweep must carry shared=true");
        assert_eq!(sweep.depth, 0);
        if sweep.detail.starts_with("follower") {
            saw_follower = true;
        }

        // The group admission permit is shared work too.
        let admission = find("admission").expect("admission span");
        assert!(admission.shared);
        assert_eq!(admission.detail, "group");

        // Ordering: plan resolution, then the scan-queue linger, then
        // admission, then the sweep, then this member's epilogue.
        let pc = find("plan_cache").unwrap();
        let wait = find("scan_queue_wait").unwrap();
        let epi = find("epilogue").expect("group members run epilogues");
        assert!(pc.start_ns <= wait.start_ns);
        assert!(wait.start_ns <= admission.start_ns);
        assert!(admission.start_ns <= sweep.start_ns);
        assert!(sweep.start_ns + sweep.dur_ns <= epi.start_ns + epi.dur_ns);

        // Nesting: the member's execute runs inside its epilogue.
        let exec = find("execute").unwrap();
        assert_eq!(epi.depth, 0);
        assert_eq!(exec.depth, 1);
        assert!(exec.start_ns >= epi.start_ns);
        assert!(exec.start_ns + exec.dur_ns <= epi.start_ns + epi.dur_ns + 1_000_000);
    }
    assert!(saw_follower, "no follower-attributed sweep span seen");

    // The leader's trace additionally hosts the sweep's internal spans,
    // nested one level down (panel sweep instrumentation in cx_mqo).
    let nested_panel = traces.iter().any(|t| {
        t.spans()
            .iter()
            .any(|s| s.name == "panel_sweep" && s.depth >= 1)
    });
    assert!(nested_panel, "leader trace missing nested panel_sweep span");
}

#[test]
fn fault_storm_victims_record_fault_events() {
    let server = Server::new(
        build_engine(),
        ServeConfig {
            tracing: true,
            trace_ring_capacity: 256,
            cache_results: false,
            mqo: false,
            ..ServeConfig::default()
        },
    );
    server.set_fault_plan(Some(Arc::new(
        FaultPlan::new(7, 0.5).with_delay(Duration::ZERO),
    )));

    // Serial storm: distinct thresholds defeat the plan cache so the
    // embed site keeps getting consulted; admission strikes every run.
    // Drawing order is deterministic, so seed 7 replays exactly.
    for i in 0..30 {
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "boots", "m", 0.70 + 0.005 * i as f32);
        let _ = server.execute(&q);
    }

    let faults = server.fault_stats().expect("plan installed");
    assert!(faults.total() > 0, "storm injected nothing: {faults:?}");

    let traces = server.traces();
    assert!(!traces.is_empty());
    let fault_traces: Vec<&QueryTrace> = traces
        .iter()
        .filter(|t| t.events().iter().any(|e| e.name == "fault"))
        .collect();
    assert!(!fault_traces.is_empty(), "no trace recorded a fault event");
    // Transient strikes trigger the solo retry policy; the retry is an
    // event on the same trace.
    assert!(
        traces
            .iter()
            .any(|t| t.events().iter().any(|e| e.name == "retry")),
        "no retry event recorded"
    );
    // A trace that ended in an error says so in its outcome; the render
    // carries the event line either way.
    for t in &fault_traces {
        let rendered = t.render();
        assert!(rendered.contains("! fault"), "{rendered}");
    }
}

#[test]
fn prometheus_snapshot_roundtrips_with_every_counter() {
    let server = Server::new(
        build_engine(),
        ServeConfig { tracing: true, ..ServeConfig::default() },
    );
    // Touch every subsystem so per-model and per-operator families exist.
    server.set_fault_plan(Some(Arc::new(FaultPlan::new(3, 0.0))));
    let q = server
        .table("products")
        .unwrap()
        .semantic_filter("name", "boots", "m", 0.8);
    server.execute(&q).unwrap();
    server.execute(&q).unwrap();
    let session = server.session();
    let template = session
        .table("products")
        .unwrap()
        .semantic_filter_param("name", 0, "m", 0.8);
    let prepared = session.prepare(&template).unwrap();
    prepared.execute(&[Scalar::from("parka")]).unwrap();

    let text = server.prometheus();
    let parsed = promparse::parse(&text).expect("server exposition must parse");

    // Every ServerStats / LifecycleStats / FaultStats counter, the cache
    // rates, the histogram summaries, and the per-model batcher family.
    for name in [
        "cx_serve_queries_total",
        "cx_serve_sessions_total",
        "cx_serve_prepared_queries_total",
        "cx_serve_result_cache_hits_total",
        "cx_serve_plan_cache_hits_total",
        "cx_serve_plan_cache_misses_total",
        "cx_serve_plan_cache_invalidations_total",
        "cx_serve_plan_cache_evictions_total",
        "cx_serve_plan_cache_len",
        "cx_serve_plan_cache_hit_rate",
        "cx_serve_admission_admitted_total",
        "cx_serve_admission_waited_total",
        "cx_serve_admission_shed_total",
        "cx_serve_admission_abandoned_total",
        "cx_serve_admission_in_use",
        "cx_serve_admission_active",
        "cx_serve_admission_capacity",
        "cx_serve_scan_submitted_total",
        "cx_serve_scan_groups_total",
        "cx_serve_scan_grouped_queries_total",
        "cx_serve_scan_shared_groups_total",
        "cx_serve_scan_shared_queries_total",
        "cx_serve_scan_max_group",
        "cx_serve_scan_panel_rows_saved_total",
        "cx_serve_scan_pairs_saved_total",
        "cx_serve_scan_sweep_fallbacks_total",
        "cx_serve_deadline_exceeded_total",
        "cx_serve_cancelled_total",
        "cx_serve_budget_exceeded_total",
        "cx_serve_transient_failures_total",
        "cx_serve_retries_total",
        "cx_serve_contained_panics_total",
        "cx_serve_faults_injected_total",
        "cx_serve_batcher_requests_total",
        "cx_serve_batcher_texts_requested_total",
        "cx_serve_batcher_texts_enqueued_total",
        "cx_serve_batcher_texts_already_cached_total",
        "cx_serve_batcher_texts_coalesced_total",
        "cx_serve_batcher_batches_total",
        "cx_serve_batcher_batched_texts_total",
        "cx_serve_batcher_coalesced_batches_total",
        "cx_serve_batcher_max_batch_size",
        "cx_serve_batcher_max_batch_submitters",
        "cx_serve_batcher_failed_batches_total",
        "cx_serve_query_latency_ns",
        "cx_serve_query_latency_ns_max",
        "cx_serve_queue_wait_ns",
        "cx_serve_sweep_ns",
        "cx_exec_operator_rows_total",
        "cx_exec_operator_latency_ns",
        "cx_obs_trace_ring_len",
        "cx_serve_simd_info",
    ] {
        assert!(parsed.contains(name), "metric missing from exposition: {name}");
    }

    // Values survive the round trip.
    let stats = server.stats();
    assert_eq!(
        parsed.value("cx_serve_queries_total", &[]),
        Some(stats.queries as f64)
    );
    assert_eq!(
        parsed.value("cx_serve_prepared_queries_total", &[]),
        Some(stats.prepared_queries as f64)
    );
    // One fault site counter per site label.
    for site in ["embed", "admission", "sweep", "drain", "epilogue"] {
        assert_eq!(
            parsed.value("cx_serve_faults_injected_total", &[("site", site)]),
            Some(0.0),
            "{site}"
        );
    }
    // Latency quantiles are present and ordered.
    let p50 = parsed
        .value("cx_serve_query_latency_ns", &[("quantile", "0.5")])
        .unwrap();
    let p99 = parsed
        .value("cx_serve_query_latency_ns", &[("quantile", "0.99")])
        .unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");

    // JSON rendering exists and carries the same counters.
    let json = server.metrics_json();
    assert!(json.contains("\"cx_serve_queries_total\""));
    assert!(json.contains("\"p99\""));
}

//! Query-lifecycle and fault-injection integration tests.
//!
//! Covers the robustness contract end to end:
//!
//! * typed lifecycle failures — deadline, cancellation, memory budget,
//!   queue-full shedding — each observed through the public serving API;
//! * degradation policy — a deadline-expired member exits its shared-scan
//!   group alone while survivors get bit-identical-to-solo results;
//! * the chaos harness — a seeded fault storm (panics, delays, transient
//!   errors at every [`FaultSite`]) through which every *successful*
//!   query stays bit-identical to solo execution and the server keeps
//!   serving afterwards.

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_serve::{FaultPlan, QueryOptions, ServeConfig, Server};
use cx_storage::{CancelToken, Column, DataType, Error, Field, QueryError, Schema, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A fresh engine over `n` product rows plus a label relation.
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(30, 8, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));

    let vocab = cx_datagen::vocab::all_words(&clusters);
    let names = generate_corpus(
        &vocab,
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();

    let labels = generate_corpus(
        &vocab,
        CorpusConfig { size: n.max(128), zipf_s: 0.6, max_words: 2, seed: 23 },
    );
    let label_table = Table::from_columns(
        Schema::new(vec![Field::new("label", DataType::Utf8)]),
        vec![Column::from_strings(labels)],
    )
    .unwrap();
    engine.register_table("labels", label_table).unwrap();
    engine
}

fn vocab() -> Vec<String> {
    cx_datagen::vocab::all_words(&synthetic_clusters(30, 8, 0x5E21))
}

/// A heavy query: a full semantic join sweep (panel × probes).
fn heavy_join(engine: &Engine, threshold: f32) -> Query {
    engine
        .table("products")
        .unwrap()
        .semantic_join(engine.table("labels").unwrap(), "name", "label", "m", threshold)
        .sort(&[("product_id", true)])
        .limit(50)
}

fn as_query_error(e: &Error) -> Option<&QueryError> {
    e.as_query()
}

fn assert_tables_equal(got: &Table, want: &Table, tag: &str) {
    assert_eq!(got.num_rows(), want.num_rows(), "{tag}: row count");
    for r in 0..want.num_rows() {
        assert_eq!(got.row(r).unwrap(), want.row(r).unwrap(), "{tag}: row {r}");
    }
}

#[test]
fn deadline_expires_solo_query_with_bounded_overshoot() {
    let engine = build_engine(600);
    let server = Server::new(engine.clone(), ServeConfig::default());
    // Warm the plan so the deadline budget is spent in execution, not
    // optimization.
    let q = heavy_join(&engine, 0.93);
    server.execute(&q).unwrap();

    let q2 = heavy_join(&engine, 0.931); // distinct literal: no memo replay
    let options = QueryOptions { timeout: Some(Duration::from_millis(5)), ..Default::default() };
    let started = Instant::now();
    let err = server.execute_with_options(&q2, &options).unwrap_err();
    assert_eq!(as_query_error(&err), Some(&QueryError::DeadlineExceeded), "{err}");
    // Cooperative checks run per tile/chunk: the query must die well
    // before a full sweep would finish, not at some unbounded point.
    assert!(started.elapsed() < Duration::from_secs(5), "query outlived its deadline");
    assert_eq!(server.lifecycle_stats().deadline_exceeded, 1);
    // The server keeps serving.
    assert!(server.execute(&q).is_ok());
}

#[test]
fn cancellation_stops_query_mid_flight() {
    let engine = build_engine(600);
    let server = Server::new(engine.clone(), ServeConfig::default());
    server.execute(&heavy_join(&engine, 0.93)).unwrap(); // warm plan

    let token = CancelToken::new();
    let options = QueryOptions { cancel: Some(token.clone()), ..Default::default() };
    let q = heavy_join(&engine, 0.9312);
    let handle = {
        let server = server.clone();
        std::thread::spawn(move || server.execute_with_options(&q, &options))
    };
    std::thread::sleep(Duration::from_millis(5));
    token.cancel();
    let result = handle.join().unwrap();
    match result {
        Err(e) => assert_eq!(as_query_error(&e), Some(&QueryError::Cancelled), "{e}"),
        // The query may legitimately have finished before the cancel
        // landed; rerun deterministically with a pre-tripped token.
        Ok(_) => {
            let token = CancelToken::new();
            token.cancel();
            let options = QueryOptions { cancel: Some(token), ..Default::default() };
            let err = server
                .execute_with_options(&heavy_join(&engine, 0.9313), &options)
                .unwrap_err();
            assert_eq!(as_query_error(&err), Some(&QueryError::Cancelled), "{err}");
        }
    }
    assert_eq!(server.lifecycle_stats().cancelled, 1);
}

#[test]
fn memory_budget_stops_oversized_query() {
    let engine = build_engine(600);
    let server = Server::new(engine.clone(), ServeConfig::default());
    let q = heavy_join(&engine, 0.93);
    // A few hundred bytes cannot hold the arena panels this sweep builds.
    let options = QueryOptions { memory_budget: Some(512), ..Default::default() };
    let err = server.execute_with_options(&q, &options).unwrap_err();
    match as_query_error(&err) {
        Some(QueryError::MemoryBudget { allocated, limit }) => {
            assert_eq!(*limit, 512);
            assert!(*allocated > 512, "budget tripped below its limit");
        }
        other => panic!("expected MemoryBudget, got {other:?}"),
    }
    assert_eq!(server.lifecycle_stats().budget_exceeded, 1);
    // The same query unconstrained succeeds — the budget was the only
    // reason to die.
    assert!(server.execute(&q).is_ok());
}

#[test]
fn server_default_timeout_applies_when_options_are_silent() {
    let engine = build_engine(600);
    let server = Server::new(
        engine.clone(),
        ServeConfig { default_timeout: Some(Duration::from_millis(2)), ..ServeConfig::default() },
    );
    let err = server.execute(&heavy_join(&engine, 0.93)).unwrap_err();
    assert_eq!(as_query_error(&err), Some(&QueryError::DeadlineExceeded), "{err}");
    // An explicit per-query timeout overrides the default.
    let options = QueryOptions { timeout: Some(Duration::from_secs(600)), ..Default::default() };
    assert!(server.execute_with_options(&heavy_join(&engine, 0.93), &options).is_ok());
}

#[test]
fn bounded_queue_sheds_with_queue_full() {
    let engine = build_engine(300);
    // One query at a time, one queue slot: a simultaneous burst must shed.
    let server = Server::new(
        engine.clone(),
        ServeConfig {
            admission_capacity: 1.0,
            max_queued: 1,
            mqo: false,
            cache_results: false,
            ..ServeConfig::default()
        },
    );
    let q = heavy_join(&engine, 0.93);
    server.execute(&q).unwrap(); // warm the plan (and the gate releases)

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let server = server.clone();
                let barrier = barrier.clone();
                let q = q.clone();
                s.spawn(move || {
                    barrier.wait();
                    server.execute(&q)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let shed: Vec<_> = results
        .iter()
        .filter_map(|r| match r {
            Err(e) => match as_query_error(e) {
                Some(QueryError::QueueFull { queued, max }) => Some((*queued, *max)),
                other => panic!("only QueueFull errors expected, got {other:?}"),
            },
            Ok(_) => None,
        })
        .collect();
    let succeeded = results.iter().filter(|r| r.is_ok()).count();
    assert!(succeeded >= 1, "at least the gate holder must finish");
    assert!(!shed.is_empty(), "a 6-client burst over a 1-slot queue must shed");
    for (queued, max) in shed {
        assert_eq!(max, 1);
        assert!(queued >= 1);
    }
    assert_eq!(server.admission_stats().shed as usize, results.len() - succeeded);
    // Shedding is backpressure, not damage: the next query is served.
    assert!(server.execute(&q).is_ok());
}

#[test]
fn expired_member_exits_group_without_killing_it() {
    let engine = build_engine(400);
    // Ballast: one slow, non-shareable relational query kept in flight
    // for the storm's whole duration. On a single core the three-way
    // barrier storm can fully serialize — each query finishes inside its
    // thread's timeslice, so no scan-queue leader ever observes a second
    // in-flight query, nobody lingers, and the doomed member sweeps solo
    // before its deadline. The ballast makes every leader check
    // contended; the leader lingers and the runnable siblings join its
    // group. Relational-only: no scan signature, so it never appears in
    // the sharing stats itself.
    let ballast_rows = 300_000usize;
    engine
        .register_table(
            "ballast",
            Table::from_columns(
                Schema::new(vec![Field::new("x", DataType::Int64)]),
                vec![Column::from_i64(
                    (0..ballast_rows as i64).map(|k| (k * 48271) % ballast_rows as i64).collect(),
                )],
            )
            .unwrap(),
        )
        .unwrap();
    let server = Server::new(
        engine.clone(),
        ServeConfig {
            cache_results: false, // every member really executes
            scan_linger: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    // Three shareable sweeps over the same panel, distinct thresholds.
    // Three members make grouping robust: the first to dispatch may see
    // itself alone and sweep solo, but the remaining two always find
    // each other inside the 300 ms linger window.
    let doomed = heavy_join(&engine, 0.93);
    let survivors = [heavy_join(&engine, 0.94), heavy_join(&engine, 0.95)];
    // Warm all plans so the grouped run starts sweeping immediately,
    // and capture the survivors' solo truth.
    server.execute(&doomed).unwrap();
    let solo: Vec<_> = survivors.iter().map(|q| server.execute(q).unwrap()).collect();

    // Ballast starts after the warm-ups so they run uncontended (fast).
    let ballast_stop = Arc::new(AtomicBool::new(false));
    let ballast_thread = {
        let server = server.clone();
        let stop = ballast_stop.clone();
        std::thread::spawn(move || {
            let mut lap = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // A distinct limit per lap defeats the plan cache, so
                // every lap genuinely re-sorts.
                let q = server
                    .table("ballast")
                    .unwrap()
                    .sort(&[("x", true)])
                    .limit(400_000 + lap);
                server.execute(&q).unwrap();
                lap += 1;
            }
        })
    };

    let barrier = Arc::new(Barrier::new(3));
    let (doomed_result, survivor_results) = std::thread::scope(|s| {
        let doomed_handle = {
            let server = server.clone();
            let barrier = barrier.clone();
            let q = doomed.clone();
            s.spawn(move || {
                barrier.wait();
                // The deadline passes inside the group's linger window:
                // by epilogue time this member is dead.
                let options =
                    QueryOptions { timeout: Some(Duration::from_millis(20)), ..Default::default() };
                server.execute_with_options(&q, &options)
            })
        };
        let survivor_handles: Vec<_> = survivors
            .iter()
            .map(|q| {
                let server = server.clone();
                let barrier = barrier.clone();
                let q = q.clone();
                s.spawn(move || {
                    barrier.wait();
                    server.execute(&q)
                })
            })
            .collect();
        (
            doomed_handle.join().unwrap(),
            survivor_handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>(),
        )
    });

    ballast_stop.store(true, Ordering::Relaxed);
    ballast_thread.join().unwrap();

    let err = doomed_result.expect_err("20ms deadline under a 300ms linger must expire");
    assert_eq!(as_query_error(&err), Some(&QueryError::DeadlineExceeded), "{err}");
    for (i, r) in survivor_results.into_iter().enumerate() {
        let survived = r.expect("survivor must be served");
        assert_tables_equal(&survived.table, &solo[i].table, &format!("survivor {i} vs solo"));
    }
    // Queries really did group — dying members don't disable sharing.
    let sharing = server.scan_sharing_stats();
    assert!(sharing.shared_groups >= 1, "queries failed to group: {sharing:?}");
    assert_eq!(server.lifecycle_stats().deadline_exceeded, 1);
}

#[test]
fn seeded_fault_storm_preserves_correctness_and_service() {
    let engine = build_engine(300);
    let server = Server::new(
        engine.clone(),
        ServeConfig {
            cache_results: false, // replays must really execute
            scan_linger: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let words = vocab();

    // Ground truth, computed fault-free through the engine directly.
    let queries: Vec<Query> = (0..10)
        .map(|i| {
            if i % 2 == 0 {
                heavy_join(&engine, 0.93 + 1e-4 * i as f32)
            } else {
                engine
                    .table("products")
                    .unwrap()
                    .semantic_filter("name", &words[i * 13 % words.len()], "m", 0.85)
                    .sort(&[("product_id", true)])
            }
        })
        .collect();
    let truth: Vec<Arc<Table>> =
        queries.iter().map(|q| Arc::new(engine.execute(q).unwrap().table)).collect();

    // A 5% seeded storm: panics, delays, and transient errors at every
    // site. Replayable: same seed, same schedule.
    let plan = Arc::new(FaultPlan::new(0xC0FFEE, 0.05).with_delay(Duration::from_millis(1)));
    server.set_fault_plan(Some(plan.clone()));

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut served = 0usize;
    let mut failed = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let server = server.clone();
                let barrier = barrier.clone();
                let queries = queries.clone();
                let truth = truth.clone();
                s.spawn(move || {
                    barrier.wait();
                    let mut ok = 0usize;
                    let mut err = 0usize;
                    for round in 0..ROUNDS {
                        for (i, q) in queries.iter().enumerate() {
                            match server.execute(q) {
                                Ok(result) => {
                                    // THE contract: a query the storm did
                                    // not kill is indistinguishable from a
                                    // fault-free solo run.
                                    assert_tables_equal(
                                        &result.table,
                                        &truth[i],
                                        &format!("round {round} query {i}"),
                                    );
                                    ok += 1;
                                }
                                Err(e) => {
                                    // Faulted queries die with *typed*
                                    // errors, not unwinding threads.
                                    assert!(
                                        e.is_transient(),
                                        "storm produced a non-transient failure: {e}"
                                    );
                                    err += 1;
                                }
                            }
                        }
                    }
                    (ok, err)
                })
            })
            .collect();
        for h in handles {
            let (ok, err) = h.join().expect("client thread must not unwind");
            served += ok;
            failed += err;
        }
    });

    let stats = server.stats();
    let faults = server.fault_stats().unwrap();
    assert_eq!(served + failed, CLIENTS * ROUNDS * queries.len());
    assert!(faults.total() > 0, "storm injected nothing; widen it");
    assert!(served > 0, "storm killed every query");
    // The retry-once policy recovered at least some transient faults
    // (first-attempt transients = retries; only double faults fail).
    assert!(
        stats.lifecycle.retries as usize >= failed,
        "every final failure implies a failed retry: {:?}",
        stats.lifecycle
    );

    // Determinism: a fresh plan with the same seed replays the exact
    // same decision stream.
    let replay = FaultPlan::new(0xC0FFEE, 0.05);
    let original = FaultPlan::new(0xC0FFEE, 0.05);
    for site in cx_serve::FaultSite::ALL {
        for _ in 0..100 {
            assert_eq!(replay.roll(site), original.roll(site));
        }
    }

    // The server outlives the storm: plan removed, service is clean.
    server.set_fault_plan(None);
    let after = server.execute(&queries[0]).expect("post-storm query must succeed");
    assert_tables_equal(&after.table, &truth[0], "post-storm");
}

#[test]
fn transient_drain_failure_retries_solo() {
    // Rate 1.0 at a tiny delay: every strike faults, so the first grouped
    // drain is guaranteed to die (panic or transient) and every member
    // must either recover through the solo retry or fail *typed*.
    let engine = build_engine(200);
    let server = Server::new(
        engine.clone(),
        ServeConfig {
            cache_results: false,
            scan_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let a = heavy_join(&engine, 0.93);
    let b = heavy_join(&engine, 0.94);
    server.execute(&a).unwrap();
    let b_solo = server.execute(&b).unwrap();

    let plan = Arc::new(FaultPlan::new(7, 1.0).with_delay(Duration::from_micros(100)));
    server.set_fault_plan(Some(plan));
    let barrier = Arc::new(Barrier::new(2));
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = [a.clone(), b.clone()]
            .into_iter()
            .map(|q| {
                let server = server.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    barrier.wait();
                    server.execute(&q)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    server.set_fault_plan(None);

    // With every site faulting, results may fail — but only with typed
    // transient errors, and the server must still serve afterwards.
    for r in &results {
        if let Err(e) = r {
            assert!(e.is_transient(), "non-transient failure under full-rate storm: {e}");
        }
    }
    let after = server.execute(&b).expect("server must serve after the storm");
    assert_tables_equal(&after.table, &b_solo.table, "post-storm solo");
    let lifecycle = server.lifecycle_stats();
    assert!(
        lifecycle.retries > 0 || lifecycle.transient_failures > 0 || results.iter().all(|r| r.is_ok()),
        "full-rate storm left no trace: {lifecycle:?}"
    );
}

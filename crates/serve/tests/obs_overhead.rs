//! Tracing-off overhead regression.
//!
//! This file is its own test binary (own process) on purpose: nothing in
//! here ever creates a `TracingSession`, so `cx_obs::span_allocations()`
//! observing zero growth proves every instrumentation site on the
//! serving path — plan cache, embed warm, admission, scan-queue drain,
//! shared sweep, epilogue, execute, the `cx_mqo` / `cx_semantic` kernel
//! sites — really does reduce to one relaxed atomic load when tracing is
//! disabled. Do not add tracing-enabled tests to this file; they belong
//! in `obs_trace.rs`.

use context_engine::{Engine, EngineConfig};
use cx_embed::ClusteredTextModel;
use cx_serve::{ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn build_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();
    engine
}

#[test]
fn tracing_off_allocates_no_spans() {
    assert!(
        !cx_obs::tracing_enabled(),
        "this test binary must never enable tracing"
    );
    let before = cx_obs::span_allocations();

    // Default config: tracing off. Exercise the solo path, the plan
    // cache (hit and miss), prepared statements, and a coalescing storm
    // so every span site on the serving path actually executes.
    let server = Server::new(
        build_engine(),
        ServeConfig {
            scan_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let q = server
        .table("products")
        .unwrap()
        .semantic_filter("name", "boots", "m", 0.8)
        .sort(&[("product_id", true)]);
    let first = server.execute(&q).unwrap();
    let replay = server.execute(&q).unwrap();
    assert!(first.trace.is_none() && replay.trace.is_none());

    let session = server.session();
    let template = session
        .table("products")
        .unwrap()
        .semantic_filter_param("name", 0, "m", 0.8);
    let prepared = session.prepare(&template).unwrap();
    prepared.execute(&[Scalar::from("parka")]).unwrap();

    // Coalescing storm: distinct literals per thread so the group path
    // (drain, shared sweep, epilogues) runs for real.
    let threads = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let targets = ["boots", "parka", "kitten", "sneakers"];
    std::thread::scope(|s| {
        for target in targets.iter().take(threads) {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let q = server
                    .table("products")
                    .unwrap()
                    .semantic_filter("name", target, "m", 0.75);
                barrier.wait();
                server.execute(&q).unwrap();
            });
        }
    });

    assert_eq!(
        cx_obs::span_allocations(),
        before,
        "span sites allocated with tracing off"
    );
    assert!(server.last_trace().is_none());
    assert!(server.traces().is_empty());
    assert!(server.slow_queries().is_empty());

    // Histograms are always on regardless of tracing: cheap atomics.
    let lat = server.latency_histogram().snapshot();
    assert!(lat.count >= 7, "latency histogram missed queries: {lat:?}");
    assert!(server.queue_wait_histogram().snapshot().count >= 1);
}

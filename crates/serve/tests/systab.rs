//! Introspection integration tests: `cx.*` system tables agree with the
//! server's own counters while traffic is in flight, system-table scans
//! are never memoized, `explain_analyze` forces a trace without
//! retention, the profiler populates `cx.queries`, the watchdog files
//! incidents under a fault storm (and stays silent on a clean run), and
//! an 8-client storm with a continuous introspection scanner is
//! deadlock-free and bit-identical to the same storm without it.

use context_engine::{Engine, EngineConfig};
use cx_embed::ClusteredTextModel;
use cx_serve::{FaultPlan, ServeConfig, Server, WatchdogConfig};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn build_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
        "blazer", "canine", "feline", "lace-ups",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 10.0 + 3.0 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();
    engine
}

/// Scans one `cx.*` table through the full serving path.
fn scan(server: &Arc<Server>, table: &str) -> Arc<Table> {
    let q = server.table(table).expect("system table registered");
    server.execute(&q).expect("system table scan").table
}

/// The value of an unlabelled metric row in a `cx.metrics` snapshot.
fn metric_value(metrics: &Table, name: &str) -> Option<f64> {
    let chunk = metrics.to_chunk().unwrap();
    let names = chunk.column_by_name("name").unwrap();
    let names = names.utf8_values().unwrap();
    let labels = chunk.column_by_name("labels").unwrap();
    let labels = labels.utf8_values().unwrap();
    let values = chunk.column_by_name("value").unwrap();
    let values = values.f64_values().unwrap();
    (0..names.len()).find(|&i| names[i] == name && labels[i].is_empty()).map(|i| values[i])
}

fn semantic_query(server: &Arc<Server>, target: &str) -> context_engine::Query {
    server
        .table("products")
        .unwrap()
        .semantic_filter("name", target, "m", 0.75)
        .sort(&[("product_id", true)])
}

#[test]
fn cx_tables_agree_with_server_counters_under_traffic() {
    let server = Server::new(
        build_engine(),
        ServeConfig { tracing: true, profiling: true, ..ServeConfig::default() },
    );
    for target in ["boots", "parka", "kitten", "sneakers", "coat", "puppy"] {
        server.execute(&semantic_query(&server, target)).unwrap();
    }

    // Scans while traffic is in flight: every snapshot must be readable
    // and internally consistent (counter values bounded by the counter's
    // value before and after the scan).
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let traffic_server = server.clone();
        let flag = stop.clone();
        s.spawn(move || {
            let mut lap = 0usize;
            while !flag.load(Ordering::Relaxed) {
                let target = ["boots", "parka", "kitten"][lap % 3];
                traffic_server.execute(&semantic_query(&traffic_server, target)).unwrap();
                lap += 1;
            }
        });
        for _ in 0..10 {
            let before = server.stats().queries;
            let metrics = scan(&server, "cx.metrics");
            let after = server.stats().queries;
            let served = metric_value(&metrics, "cx_serve_queries_total").unwrap();
            assert!(
                served >= before as f64 && served <= after as f64,
                "cx_serve_queries_total {served} outside [{before}, {after}]"
            );
            let queries = scan(&server, "cx.queries");
            assert!(queries.num_rows() > 0, "trace ring visible through cx.queries");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiescent: exact agreement. The scanning query's own trace only
    // lands in the ring after it finishes, so a cx.queries scan sees
    // exactly the traces that existed when it started.
    let traces = server.traces().len();
    let queries = scan(&server, "cx.queries");
    assert_eq!(queries.num_rows(), traces);

    let latency_count = server.latency_histogram().snapshot().count;
    let hists = scan(&server, "cx.histograms");
    let chunk = hists.to_chunk().unwrap();
    let which = chunk.column_by_name("histogram").unwrap();
    let which = which.utf8_values().unwrap().to_vec();
    let counts = chunk.column_by_name("count").unwrap();
    let counts = counts.i64_values().unwrap().to_vec();
    let bucket_sum: i64 =
        which.iter().zip(&counts).filter(|(h, _)| h.as_str() == "latency").map(|(_, c)| c).sum();
    assert_eq!(bucket_sum as u64, latency_count, "latency buckets sum to the histogram count");

    // Every outcome in the quiescent ring is a success.
    let outcomes = queries.to_chunk().unwrap();
    let outcomes = outcomes.column_by_name("outcome").unwrap();
    for outcome in outcomes.utf8_values().unwrap() {
        assert!(outcome.starts_with("ok"), "unexpected outcome {outcome:?}");
    }
}

#[test]
fn system_table_scans_are_volatile_and_never_memoized() {
    let server = Server::new(build_engine(), ServeConfig::default());
    let q = server.table("cx.metrics").unwrap();
    let first = server.execute(&q).unwrap();
    let v1 = metric_value(&first.table, "cx_serve_queries_total").unwrap();

    server.execute(&semantic_query(&server, "boots")).unwrap();

    let second = server.execute(&q).unwrap();
    assert!(!second.result_cache_hit, "cx.* results must never come from the memo");
    let v2 = metric_value(&second.table, "cx_serve_queries_total").unwrap();
    assert!(v2 > v1, "second scan must observe fresh counters ({v1} -> {v2})");

    // The plan itself is still cached — only the result memo is skipped —
    // and the cached entry is flagged volatile (visible via cx.plan_cache
    // too).
    assert!(server.plan_cache_entries().iter().any(|e| e.volatile));
    let plans = scan(&server, "cx.plan_cache");
    let chunk = plans.to_chunk().unwrap();
    let volatile = chunk.column_by_name("volatile").unwrap();
    assert!(volatile.bool_values().unwrap().iter().any(|&v| v));
}

#[test]
fn explain_analyze_forces_one_trace_without_retention() {
    let server = Server::new(build_engine(), ServeConfig::default());
    assert!(!server.config().tracing);
    let session = server.session();
    let q = semantic_query(&server, "boots");
    let rendered = session.explain_analyze(&q).unwrap();
    for required in ["plan_cache", "execute"] {
        assert!(rendered.contains(required), "missing {required} in:\n{rendered}");
    }
    // Forced traces are rendered and dropped: nothing is retained in the
    // (capacity-zero) ring, and the global tracing flag never flipped.
    assert!(server.last_trace().is_none());
    assert!(server.traces().is_empty());
    assert_eq!(server.stats().queries, 1);
}

#[test]
fn profiler_populates_cx_queries_and_totals() {
    let server = Server::new(
        build_engine(),
        ServeConfig { tracing: true, profiling: true, ..ServeConfig::default() },
    );
    server.execute(&semantic_query(&server, "kitten")).unwrap();

    let totals = server.profile_totals();
    assert_eq!(totals.profiled_queries, 1);
    assert!(totals.pairs_scored > 0, "semantic sweep must attribute pairs: {totals:?}");
    assert!(totals.panel_tiles > 0);

    let trace = server.last_trace().expect("tracing on");
    let profile = trace.profile().expect("profiled query carries its profile");
    assert_eq!(profile.pairs_scored, totals.pairs_scored);

    let queries = scan(&server, "cx.queries");
    let chunk = queries.to_chunk().unwrap();
    let pairs = chunk.column_by_name("pairs_scored").unwrap();
    let pairs = pairs.i64_values().unwrap().to_vec();
    assert!(pairs.iter().any(|&p| p > 0), "cx.queries surfaces pairs_scored: {pairs:?}");
    let tier = chunk.column_by_name("quant_tier").unwrap();
    assert!(
        tier.utf8_values().unwrap().iter().any(|t| !t.is_empty()),
        "panel sweep tier parsed from span detail"
    );
}

#[test]
fn watchdog_fires_on_fault_storm_and_is_queryable() {
    let server = Server::new(
        build_engine(),
        ServeConfig {
            watchdog: Some(WatchdogConfig {
                interval: Duration::from_millis(2),
                // Only the fault detector is armed; everything else off so
                // the test is deterministic.
                p99_regression_factor: 0.0,
                min_samples: u64::MAX,
                queue_depth_threshold: 0,
                shed_burst: 0,
                fault_burst: 1,
                window: 0,
                incident_capacity: 64,
            }),
            ..ServeConfig::default()
        },
    );
    server.set_fault_plan(Some(Arc::new(
        FaultPlan::new(0xBAD, 1.0).with_delay(Duration::from_micros(50)),
    )));

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.incidents().total() == 0 {
        assert!(std::time::Instant::now() < deadline, "watchdog never fired under fault storm");
        // Keep faulting; injected transient failures are expected.
        let _ = server.execute(&semantic_query(&server, "boots"));
        std::thread::sleep(Duration::from_millis(1));
    }
    server.set_fault_plan(None);

    let incidents = scan(&server, "cx.incidents");
    assert!(incidents.num_rows() > 0);
    let chunk = incidents.to_chunk().unwrap();
    let kinds = chunk.column_by_name("kind").unwrap();
    assert!(
        kinds.utf8_values().unwrap().iter().any(|k| k == "fault_burst"),
        "expected a fault_burst incident"
    );
    let report = server.report();
    assert!(report.contains("incidents"), "report surfaces the incident log:\n{report}");
}

#[test]
fn watchdog_stays_silent_on_clean_run() {
    let server = Server::new(
        build_engine(),
        ServeConfig {
            watchdog: Some(WatchdogConfig {
                interval: Duration::from_millis(2),
                min_samples: u64::MAX,
                ..WatchdogConfig::default()
            }),
            ..ServeConfig::default()
        },
    );
    for target in ["boots", "parka", "kitten", "sneakers"] {
        server.execute(&semantic_query(&server, target)).unwrap();
    }
    // Plenty of ticks over healthy traffic.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.incidents().total(), 0, "{:?}", server.incidents().recent());
}

#[test]
fn injected_timestamp_makes_snapshots_deterministic() {
    let server = Server::new(build_engine(), ServeConfig::default());
    server.set_timestamp_source(Some(Arc::new(|| 1_234_567)));

    let first = server.metrics_snapshot();
    let second = server.metrics_snapshot();
    assert_eq!(first.timestamp_ms(), Some(1_234_567));
    assert_eq!(second.timestamp_ms(), Some(1_234_567));
    let (s1, s2) = (first.sequence().unwrap(), second.sequence().unwrap());
    assert!(s2 > s1, "sequence must order snapshots ({s1} vs {s2})");
    assert!(server.metrics_json().contains("\"timestamp_ms\": 1234567"));
    assert!(server.prometheus().contains("cx_obs_snapshot_timestamp_ms 1234567"));

    let metrics = scan(&server, "cx.metrics");
    assert_eq!(metric_value(&metrics, "cx_obs_snapshot_timestamp_ms"), Some(1_234_567.0));

    server.set_timestamp_source(None);
    assert!(server.now_ms() > 1_234_567, "back on the wall clock");
}

/// One storm run: 8 clients, fixed per-client targets, `rounds`
/// executions each; returns every result table rendered row-by-row, in
/// client/round order.
fn run_storm(server: &Arc<Server>, rounds: usize, introspect: bool) -> Vec<String> {
    const CLIENTS: usize = 8;
    let targets =
        ["boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker"];
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    std::thread::scope(|s| {
        let scanner = introspect.then(|| {
            let server = server.clone();
            let flag = stop.clone();
            s.spawn(move || {
                let mut laps = 0u64;
                while !flag.load(Ordering::Relaxed) {
                    scan(&server, "cx.queries");
                    scan(&server, "cx.metrics");
                    laps += 1;
                }
                laps
            })
        });
        let clients: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let server = server.clone();
                let barrier = barrier.clone();
                let target = targets[i];
                s.spawn(move || {
                    barrier.wait();
                    (0..rounds)
                        .flat_map(|_| {
                            let r = server.execute(&semantic_query(&server, target)).unwrap();
                            (0..r.table.num_rows())
                                .map(|row| format!("{:?}", r.table.row(row).unwrap()))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let rows: Vec<String> =
            clients.into_iter().flat_map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        if let Some(handle) = scanner {
            assert!(handle.join().unwrap() > 0, "introspection client never completed a scan");
        }
        rows
    })
}

#[test]
fn introspection_storm_is_deadlock_free_and_bit_identical() {
    let config = ServeConfig { tracing: true, profiling: true, ..ServeConfig::default() };
    let with = Server::new(build_engine(), config);
    let observed = run_storm(&with, 6, true);

    let without = Server::new(build_engine(), config);
    let plain = run_storm(&without, 6, false);

    assert_eq!(observed, plain, "introspection must not perturb traffic results");
    assert!(with.stats().queries > without.stats().queries, "scanner queries were served too");
}

//! The self-watchdog: a background sampler that turns the server's own
//! telemetry into structured incidents.
//!
//! When [`crate::ServeConfig::watchdog`] is set, [`crate::Server::new`]
//! spawns one `cx-watchdog` thread holding a `Weak<Server>`. Every
//! [`WatchdogConfig::interval`] it:
//!
//! 1. diffs the end-to-end latency histogram against its previous tick
//!    (bucket-by-bucket, so the quantile is over *this tick's* samples,
//!    not the cumulative distribution) and compares the windowed p99 to
//!    the median of a trailing window of tick p99s,
//! 2. diffs the admission counters for queue saturation and shed bursts,
//! 3. diffs the fault/lifecycle counters for fault bursts,
//!
//! appending a [`cx_obs::IncidentRecord`] to the server's bounded
//! incident log (queryable as `cx.incidents`) for each detector that
//! trips. Detection is threshold-on-delta, never timing-on-wall-clock,
//! so tests drive it deterministically with injected fault storms.
//!
//! The thread takes no lock the serving path holds: every read goes
//! through the same snapshot accessors `cx.*` scans use. With no
//! watchdog configured, no thread exists and nothing is sampled.

use crate::server::Server;
use cx_obs::BucketCount;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::{JoinHandle, ThreadId};
use std::time::Duration;

/// Watchdog thresholds and cadence (see the module docs). All detectors
/// compare a per-tick *delta* against a threshold; a threshold of 0
/// disables its detector.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Sampling cadence.
    pub interval: Duration,
    /// Fire `latency_p99_regression` when a tick's windowed p99 is at
    /// least this factor over the trailing window's median tick p99.
    pub p99_regression_factor: f64,
    /// Minimum samples landing within one tick for its p99 to count at
    /// all — high enough that an idle or lightly loaded server never
    /// produces a statistically meaningless regression.
    pub min_samples: u64,
    /// Fire `queue_saturation` when at least this many admissions were
    /// forced to wait within one tick.
    pub queue_depth_threshold: u64,
    /// Fire `shed_burst` when at least this many queries were shed
    /// (`QueueFull`) within one tick.
    pub shed_burst: u64,
    /// Fire `fault_burst` when at least this many faults landed within
    /// one tick (injected faults + transient failures + contained
    /// panics).
    pub fault_burst: u64,
    /// Trailing ticks of p99 history the regression detector compares
    /// against.
    pub window: usize,
    /// Incident records retained (older records fall off; the total
    /// counter keeps counting).
    pub incident_capacity: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval: Duration::from_millis(100),
            p99_regression_factor: 4.0,
            min_samples: 50,
            queue_depth_threshold: 64,
            shed_burst: 16,
            fault_burst: 3,
            window: 8,
            incident_capacity: 256,
        }
    }
}

/// A handle on the spawned watchdog thread: signal + join on drop of the
/// owning [`Server`].
pub(crate) struct WatchdogHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    join: Option<JoinHandle<()>>,
    thread_id: ThreadId,
}

impl WatchdogHandle {
    /// Signals the thread to stop and joins it — unless called *on* the
    /// watchdog thread itself (the tick's upgraded `Arc` was the last
    /// strong handle, so `Server::drop` runs there), in which case the
    /// thread is detached; it observes the stop flag and exits on its
    /// own.
    pub(crate) fn stop(mut self) {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        if let Some(join) = self.join.take() {
            if std::thread::current().id() != self.thread_id {
                let _ = join.join();
            }
        }
    }
}

/// Per-thread detector state carried across ticks.
struct WatchdogState {
    config: WatchdogConfig,
    prev_latency: Vec<BucketCount>,
    p99_window: VecDeque<u64>,
    prev_waited: u64,
    prev_shed: u64,
    prev_faults: u64,
}

impl WatchdogState {
    fn new(config: WatchdogConfig) -> Self {
        WatchdogState {
            config,
            prev_latency: Vec::new(),
            p99_window: VecDeque::new(),
            prev_waited: 0,
            prev_shed: 0,
            prev_faults: 0,
        }
    }
}

/// Spawns the watchdog thread over a weak server handle. The thread
/// exits when the server drops (upgrade fails) or the handle signals
/// stop.
pub(crate) fn spawn(server: Weak<Server>, config: WatchdogConfig) -> WatchdogHandle {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let stop_thread = stop.clone();
    let join = std::thread::Builder::new()
        .name("cx-watchdog".into())
        .spawn(move || {
            let mut state = WatchdogState::new(config);
            loop {
                {
                    let (lock, cvar) = &*stop_thread;
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    while !*stopped {
                        let (guard, timeout) = cvar
                            .wait_timeout(stopped, config.interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        break;
                    }
                }
                let Some(server) = server.upgrade() else { break };
                tick(&server, &mut state);
                // `server` drops here; if it was the last strong handle,
                // `Server::drop` runs on this thread and the handle
                // detaches instead of self-joining.
            }
        })
        .expect("spawn cx-watchdog thread");
    let thread_id = join.thread().id();
    WatchdogHandle { stop, join: Some(join), thread_id }
}

/// One sampling tick: diff, detect, append incidents.
fn tick(server: &Server, state: &mut WatchdogState) {
    let cfg = state.config;
    let at_ms = server.now_ms();
    let incidents = server.incidents();

    // Latency p99 regression over this tick's own samples.
    let buckets = server.latency_histogram().nonzero_buckets();
    let delta = diff_buckets(&state.prev_latency, &buckets);
    state.prev_latency = buckets;
    let tick_count: u64 = delta.iter().map(|b| b.count).sum();
    if tick_count >= cfg.min_samples.max(1) {
        let p99 = percentile(&delta, 0.99);
        if cfg.window > 0
            && cfg.p99_regression_factor > 0.0
            && state.p99_window.len() >= cfg.window
        {
            let mut sorted: Vec<u64> = state.p99_window.iter().copied().collect();
            sorted.sort_unstable();
            let baseline = sorted[sorted.len() / 2];
            let threshold = cfg.p99_regression_factor * baseline as f64;
            if baseline > 0 && p99 as f64 >= threshold {
                incidents.append(
                    "latency_p99_regression",
                    format!(
                        "tick p99 {:.3} ms vs trailing median {:.3} ms over {} samples",
                        p99 as f64 / 1e6,
                        baseline as f64 / 1e6,
                        tick_count
                    ),
                    p99 as f64,
                    threshold,
                    at_ms,
                );
            }
        }
        while state.p99_window.len() >= cfg.window.max(1) {
            state.p99_window.pop_front();
        }
        state.p99_window.push_back(p99);
    }

    // Admission-line saturation and shed bursts.
    let a = server.admission_stats();
    let waited_delta = a.waited.saturating_sub(state.prev_waited);
    state.prev_waited = a.waited;
    if cfg.queue_depth_threshold > 0 && waited_delta >= cfg.queue_depth_threshold {
        incidents.append(
            "queue_saturation",
            format!("{waited_delta} admissions forced to wait in one tick"),
            waited_delta as f64,
            cfg.queue_depth_threshold as f64,
            at_ms,
        );
    }
    let shed_delta = a.shed.saturating_sub(state.prev_shed);
    state.prev_shed = a.shed;
    if cfg.shed_burst > 0 && shed_delta >= cfg.shed_burst {
        incidents.append(
            "shed_burst",
            format!("{shed_delta} queries shed at the admission gate in one tick"),
            shed_delta as f64,
            cfg.shed_burst as f64,
            at_ms,
        );
    }

    // Fault bursts: injected faults plus transient failures plus
    // contained panics, whoever's counting.
    let l = server.lifecycle_stats();
    let faults_now = server.fault_stats().map_or(0, |f| f.total())
        + l.transient_failures
        + l.contained_panics;
    let fault_delta = faults_now.saturating_sub(state.prev_faults);
    state.prev_faults = faults_now;
    if cfg.fault_burst > 0 && fault_delta >= cfg.fault_burst {
        incidents.append(
            "fault_burst",
            format!("{fault_delta} faults/transients/panics in one tick"),
            fault_delta as f64,
            cfg.fault_burst as f64,
            at_ms,
        );
    }
}

/// Per-bucket difference `cur - prev`. Both inputs come from
/// [`cx_obs::Histogram::nonzero_buckets`], so they are sorted ascending
/// by bucket midpoint and counts only grow.
fn diff_buckets(prev: &[BucketCount], cur: &[BucketCount]) -> Vec<BucketCount> {
    let mut out = Vec::new();
    let mut pi = 0;
    for b in cur {
        while pi < prev.len() && prev[pi].mid < b.mid {
            pi += 1;
        }
        let old = if pi < prev.len() && prev[pi].mid == b.mid { prev[pi].count } else { 0 };
        if b.count > old {
            out.push(BucketCount { count: b.count - old, ..*b });
        }
    }
    out
}

/// Quantile over a (sorted-by-mid) delta-bucket vector: the midpoint of
/// the bucket where the cumulative count crosses `q`.
fn percentile(buckets: &[BucketCount], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for b in buckets {
        seen += b.count;
        if seen >= target {
            return b.mid;
        }
    }
    buckets.last().map_or(0, |b| b.mid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(mid: u64, count: u64) -> BucketCount {
        BucketCount { low: mid, mid, count }
    }

    #[test]
    fn diff_is_per_bucket_and_skips_unchanged() {
        let prev = vec![b(10, 3), b(20, 5)];
        let cur = vec![b(10, 3), b(20, 9), b(40, 2)];
        let d = diff_buckets(&prev, &cur);
        assert_eq!(d, vec![b(20, 4), b(40, 2)]);
        // First tick: everything is new.
        assert_eq!(diff_buckets(&[], &cur), cur);
    }

    #[test]
    fn percentile_crosses_cumulative_count() {
        let d = vec![b(10, 98), b(1000, 2)];
        assert_eq!(percentile(&d, 0.5), 10);
        assert_eq!(percentile(&d, 0.99), 1000);
        assert_eq!(percentile(&[], 0.99), 0);
    }
}

//! The plan cache: optimized + lowered plans keyed by query fingerprint.
//!
//! Optimization is real work for context-rich queries — rule rewrites to
//! fixpoint plus sampling-based selectivity probes that *embed sample
//! values*. A server replaying the same (or parameterized-identical)
//! queries should pay that once. Entries are keyed by
//! [`LogicalPlan::fingerprint`] ⊕ a fingerprint of the
//! [`OptimizerConfig`], and each entry pins the catalog version it was
//! built against: any registration (table, KB, image store, model) bumps
//! the version and lazily invalidates every older entry on its next
//! lookup.
//!
//! The cached unit is the *lowered* physical operator tree (re-executable,
//! `Send + Sync`) plus the optimizer by-products, so a hit skips both
//! optimization and physical planning.
//!
//! [`LogicalPlan::fingerprint`]: cx_exec::logical::LogicalPlan::fingerprint

use cx_exec::logical::LogicalPlan;
use cx_exec::PhysicalOperator;
use cx_optimizer::OptimizerConfig;
use cx_storage::{Scalar, Table};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most distinct binding vectors memoized per cached plan. Past this the
/// per-binding memo stops growing (new bindings execute normally); it is a
/// replay accelerator, not a completeness guarantee.
pub const MAX_BOUND_RESULTS: usize = 1024;

/// A hashable, bit-exact key for one prepared-statement binding vector.
///
/// Scalars are encoded with type tags and length prefixes, so two binding
/// vectors key equal iff they are identical value-for-value (floats by
/// bit pattern — the same discipline as `LogicalPlan::fingerprint`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BindingKey(Vec<u8>);

impl BindingKey {
    /// Encodes `params` into a key.
    pub fn new(params: &[Scalar]) -> Self {
        let mut out = Vec::with_capacity(params.len() * 9);
        for p in params {
            match p {
                Scalar::Null => out.push(0),
                Scalar::Bool(b) => {
                    out.push(1);
                    out.push(*b as u8);
                }
                Scalar::Int64(v) => {
                    out.push(2);
                    out.extend(v.to_le_bytes());
                }
                Scalar::Float64(v) => {
                    out.push(3);
                    out.extend(v.to_bits().to_le_bytes());
                }
                Scalar::Utf8(s) => {
                    out.push(4);
                    out.extend((s.len() as u64).to_le_bytes());
                    out.extend(s.as_bytes());
                }
                Scalar::Timestamp(v) => {
                    out.push(5);
                    out.extend(v.to_le_bytes());
                }
            }
        }
        BindingKey(out)
    }
}

/// One cached, ready-to-execute plan.
pub struct CachedPlan {
    /// The lowered operator tree (re-executable; every `execute()` re-runs
    /// it against the tables captured at lowering time). Prepared
    /// executions bind their parameters into a copy of this tree
    /// (`PhysicalOperator::bind_params`) — the cached tree itself is never
    /// mutated.
    pub physical: Arc<dyn PhysicalOperator>,
    /// The optimized logical plan (EXPLAIN / debugging; also the tree the
    /// prepared path re-costs with bound literals for admission).
    pub optimized: LogicalPlan,
    /// Optimizer rule trace.
    pub rules_fired: Vec<String>,
    /// Optimizer row estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate (admission-control weight).
    pub estimated_cost: f64,
    /// Catalog version this plan was built against.
    pub catalog_version: u64,
    /// The exact [`LogicalPlan::fingerprint`] of the plan this entry was
    /// built from. Ad-hoc lookups key the cache by this exact hash, so the
    /// field is redundant there; prepared statements key by
    /// [`LogicalPlan::shape_fingerprint`], which erases unparameterized
    /// literal values, and must validate a shape hit against this field
    /// before reuse (two templates may share a shape yet differ in a
    /// baked-in literal).
    pub exact_fingerprint: u64,
    /// The plan's shareable scan, discovered at build time
    /// (`cx_exec::find_shared_scan`): the operator node inside
    /// `physical` plus its signature. `None` for plans with no mergeable
    /// sweep (including templates whose probe is an unbound parameter —
    /// the prepared path re-discovers the scan on the bound tree); such
    /// plans execute solo.
    pub shared_scan: Option<(Arc<dyn PhysicalOperator>, cx_exec::ScanSignature)>,
    /// Memoized result of executing this plan. Sound because the engine is
    /// deterministic and the plan is pinned to one catalog version: the
    /// same fingerprint over the same catalog produces the same table, so
    /// replayed traffic is served without re-executing. Lives and dies
    /// with the plan entry (LRU eviction, version invalidation). `None`
    /// until the first execution completes, or always when the server
    /// disables result caching.
    pub result: Mutex<Option<Arc<Table>>>,
    /// Per-binding result memo for prepared executions: binding vector →
    /// memoized table, under the same soundness argument as `result`
    /// (determinism ⊕ catalog pinning — the binding vector simply joins
    /// the key). Bounded to [`MAX_BOUND_RESULTS`] distinct bindings.
    pub bound_results: Mutex<HashMap<BindingKey, Arc<Table>>>,
    /// True when the plan scans any reserved `cx.*` system table. The
    /// determinism argument behind `result` / `bound_results` does not
    /// hold for such plans — their scans observe live state that changes
    /// without a catalog-version bump — so the serving layer must never
    /// read *or* write the result memo for a volatile plan. (Caching the
    /// plan itself stays sound: only the data is live, not the shape.)
    pub volatile: bool,
}

impl CachedPlan {
    /// Memoizes `table` for `binding`, respecting the size bound (replays
    /// of already-memoized bindings always update).
    pub fn memoize_binding(&self, binding: &BindingKey, table: Arc<Table>) {
        let mut map = self.bound_results.lock();
        if map.len() < MAX_BOUND_RESULTS || map.contains_key(binding) {
            map.insert(binding.clone(), table);
        }
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a current-version entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries dropped because the catalog moved past them.
    pub invalidations: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
}

impl PlanCacheStats {
    /// Hits over lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

/// One row of the `cx.plan_cache` introspection snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntryInfo {
    /// The cache key (`fingerprint ^ config_fingerprint`).
    pub key: u64,
    /// Catalog version the plan was built against.
    pub catalog_version: u64,
    /// Optimizer row estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate.
    pub estimated_cost: f64,
    /// Number of optimizer rules that fired.
    pub rules_fired: usize,
    /// Whether the plan advertises a mergeable shared scan.
    pub shared_scan: bool,
    /// Whether the plan scans live `cx.*` state (result memo disabled).
    pub volatile: bool,
    /// Whether a memoized result is pinned.
    pub has_result: bool,
    /// Number of memoized prepared bindings.
    pub bound_results: usize,
    /// LRU tick of the last use (higher = more recent).
    pub last_used: u64,
}

/// A bounded, version-checked map from plan fingerprints to cached plans.
pub struct PlanCache {
    capacity: usize,
    state: Mutex<(HashMap<u64, Slot>, u64)>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache bounded to `capacity` plans (clamped to at least 1);
    /// least-recently-used plans are evicted past that.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            state: Mutex::new((HashMap::new(), 0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, treating entries from a catalog version other than
    /// `catalog_version` as stale (dropped and counted as invalidations).
    pub fn get(&self, key: u64, catalog_version: u64) -> Option<Arc<CachedPlan>> {
        let mut state = self.state.lock();
        let (map, tick) = &mut *state;
        match map.get_mut(&key) {
            Some(slot) if slot.plan.catalog_version == catalog_version => {
                *tick += 1;
                slot.last_used = *tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot.plan.clone())
            }
            Some(_) => {
                map.remove(&key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) the plan under `key`, evicting the
    /// least-recently-used entry if full. Concurrent misses may race to
    /// insert the same key; last writer wins, which is harmless — both
    /// plans are equivalent by construction.
    pub fn insert(&self, key: u64, plan: Arc<CachedPlan>) {
        let mut state = self.state.lock();
        let (map, tick) = &mut *state;
        *tick += 1;
        let replaced = map.insert(key, Slot { plan, last_used: *tick }).is_some();
        if !replaced && map.len() > self.capacity {
            // O(len) victim scan: plan caches hold dozens-to-hundreds of
            // entries and eviction only runs when full, so a linked-list
            // LRU would be complexity without a win.
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-entry snapshot for introspection (`cx.plan_cache`). Collects
    /// the entry list under the state lock, then reads each entry's memo
    /// size with no other lock held — system-table lock discipline.
    pub fn entries(&self) -> Vec<PlanEntryInfo> {
        let entries: Vec<(u64, u64, Arc<CachedPlan>)> = {
            let state = self.state.lock();
            state.0.iter().map(|(k, s)| (*k, s.last_used, s.plan.clone())).collect()
        };
        entries
            .into_iter()
            .map(|(key, last_used, plan)| PlanEntryInfo {
                key,
                catalog_version: plan.catalog_version,
                estimated_rows: plan.estimated_rows,
                estimated_cost: plan.estimated_cost,
                rules_fired: plan.rules_fired.len(),
                shared_scan: plan.shared_scan.is_some(),
                volatile: plan.volatile,
                has_result: plan.result.lock().is_some(),
                bound_results: plan.bound_results.lock().len(),
                last_used,
            })
            .collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.state.lock().0.len(),
        }
    }
}

/// A stable fingerprint of the optimizer configuration. Two engines whose
/// configs fingerprint equal produce the same plan for the same query, so
/// the plan-cache key is `plan.fingerprint() ^ config_fingerprint(...)`.
pub fn config_fingerprint(config: &OptimizerConfig) -> u64 {
    // FNV-1a over the feature switches and numeric knobs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let flags = [
        config.constant_folding,
        config.filter_pushdown,
        config.predicate_cascade,
        config.projection_pruning,
        config.equijoin_extraction,
        config.data_induced_predicates,
        config.semantic_dip,
        config.semantic_index_selection,
        config.quantization,
    ];
    let mut packed = 0u64;
    for (i, f) in flags.iter().enumerate() {
        packed |= (*f as u64) << i;
    }
    eat(packed);
    eat(config.recall_tolerance.to_bits());
    eat(config.parallelism as u64);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::TableScanExec;
    use cx_storage::{Column, DataType, Field, Schema, Table};

    fn plan(version: u64) -> Arc<CachedPlan> {
        let table = Table::from_columns(
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            vec![Column::from_i64(vec![1])],
        )
        .unwrap();
        Arc::new(CachedPlan {
            physical: Arc::new(TableScanExec::new(Arc::new(table))),
            optimized: LogicalPlan::Scan {
                source: "t".into(),
                schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)])),
            },
            rules_fired: vec![],
            estimated_rows: 1.0,
            estimated_cost: 2.0,
            catalog_version: version,
            exact_fingerprint: 0,
            shared_scan: None,
            result: Mutex::new(None),
            bound_results: Mutex::new(HashMap::new()),
            volatile: false,
        })
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let cache = PlanCache::new(8);
        assert!(cache.get(1, 0).is_none());
        cache.insert(1, plan(0));
        assert!(cache.get(1, 0).is_some());
        // Catalog moved: the entry is stale.
        assert!(cache.get(1, 1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert_eq!(s.len, 0);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_past_capacity() {
        let cache = PlanCache::new(2);
        cache.insert(1, plan(0));
        cache.insert(2, plan(0));
        cache.get(1, 0); // 1 is now more recently used than 2
        cache.insert(3, plan(0));
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(2, 0).is_none(), "LRU entry should be the victim");
        assert!(cache.get(3, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn entries_snapshot_reflects_state() {
        let cache = PlanCache::new(8);
        cache.insert(1, plan(3));
        cache.insert(2, plan(3));
        cache.get(2, 3);
        let mut entries = cache.entries();
        entries.sort_by_key(|e| e.key);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].catalog_version, 3);
        assert!(!entries[0].volatile);
        assert!(!entries[0].has_result);
        assert!(entries[1].last_used > entries[0].last_used, "key 2 used more recently");
    }

    #[test]
    fn binding_keys_are_bit_exact() {
        use cx_storage::Scalar;
        let a = BindingKey::new(&[Scalar::from("boots"), Scalar::Int64(2)]);
        let b = BindingKey::new(&[Scalar::from("boots"), Scalar::Int64(2)]);
        assert_eq!(a, b);
        // Value, type, and split differences all separate keys.
        assert_ne!(a, BindingKey::new(&[Scalar::from("boots"), Scalar::Int64(3)]));
        assert_ne!(a, BindingKey::new(&[Scalar::from("boots"), Scalar::Float64(2.0)]));
        assert_ne!(
            BindingKey::new(&[Scalar::from("ab"), Scalar::from("c")]),
            BindingKey::new(&[Scalar::from("a"), Scalar::from("bc")])
        );
    }

    #[test]
    fn bound_memo_respects_capacity() {
        use cx_storage::Scalar;
        let p = plan(0);
        let table = Arc::new(
            Table::from_columns(
                Schema::new(vec![Field::new("x", DataType::Int64)]),
                vec![Column::from_i64(vec![1])],
            )
            .unwrap(),
        );
        for i in 0..(MAX_BOUND_RESULTS as i64 + 10) {
            p.memoize_binding(&BindingKey::new(&[Scalar::Int64(i)]), table.clone());
        }
        assert_eq!(p.bound_results.lock().len(), MAX_BOUND_RESULTS);
        // An already-memoized binding still updates at capacity.
        p.memoize_binding(&BindingKey::new(&[Scalar::Int64(0)]), table.clone());
        assert_eq!(p.bound_results.lock().len(), MAX_BOUND_RESULTS);
    }

    #[test]
    fn config_fingerprint_distinguishes_configs() {
        let all = OptimizerConfig::all();
        let none = OptimizerConfig::none();
        assert_eq!(config_fingerprint(&all), config_fingerprint(&all));
        assert_ne!(config_fingerprint(&all), config_fingerprint(&none));
        let mut tol = all;
        tol.recall_tolerance = 5e-2;
        assert_ne!(config_fingerprint(&all), config_fingerprint(&tol));
    }
}

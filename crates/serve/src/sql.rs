//! SQL entry point: [`Session::sql`] — parse, bind against the live
//! catalog, and serve, with ad-hoc statements auto-parameterized into
//! prepared shapes.
//!
//! The front-end itself (lexer, parser, binder, the semantic grammar
//! extensions) lives in `cx_sql`; this module is the glue that makes SQL
//! text a first-class client of the serving stack:
//!
//! * **Binding sees everything the engine sees** — user tables, `cx.*`
//!   system tables, and the model registry, through a thin
//!   [`cx_sql::SchemaProvider`] over the shared [`Engine`].
//! * **Auto-parameterization** ([`ServeConfig::sql_auto_param`](crate::ServeConfig::sql_auto_param), on by
//!   default) — every literal in an ad-hoc statement is lifted into a
//!   parameter slot, the lifted template is prepared (one plan-cache
//!   entry per statement *shape*, via `LogicalPlan::shape_fingerprint`),
//!   and the literals are bound back transparently. A dashboard firing
//!   `price > 10`, `price > 20`, `price > 30` optimizes once and binds
//!   three times — prepared-statement throughput for plain text, results
//!   bit-identical to exact planning (binding re-infers expression types
//!   per value). Statements with nothing to lift fall back to the exact
//!   plan cache; both paths still coalesce into shared scans and are
//!   admission-weighed like any other query.
//! * **`PREPARE` / `EXECUTE`** — session-scoped named statements backed
//!   by the same [`Prepared`] handles the programmatic API returns.
//! * **`EXPLAIN [ANALYZE]`** — the optimizer's plan rendering, or the
//!   served query's rendered lifecycle span tree.
//! * **Observability** — `sql_parse` / `sql_bind` spans attached to the
//!   query trace (when tracing is on), and `cx_serve_sql_*` counters in
//!   [`Server::metrics_snapshot`] / [`Server::report`].

use crate::prepared::Prepared;
use crate::server::{ServeResult, Server, Session};
use context_engine::{Engine, Query};
use cx_exec::logical::LogicalPlan;
use cx_sql::{Bound, SqlError};
use cx_storage::{Error, Result, Scalar, Schema};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of one SQL statement ([`Session::sql`]).
#[derive(Debug)]
pub enum SqlResponse {
    /// A query (`SELECT ...` or `EXECUTE name (...)`) produced rows.
    Rows(ServeResult),
    /// `EXPLAIN` rendered the optimized plan; `EXPLAIN ANALYZE` executed
    /// the query and rendered its lifecycle span tree.
    Explain(String),
    /// `PREPARE name AS ...` registered a named statement on this
    /// session.
    Prepared {
        /// The statement name `EXECUTE` refers to.
        name: String,
        /// Binding values every `EXECUTE` must supply.
        param_count: usize,
    },
}

/// SQL front-end counters (server-wide, all sessions).
#[derive(Default)]
pub(crate) struct SqlCounters {
    pub(crate) statements: AtomicU64,
    pub(crate) auto_param: AtomicU64,
    pub(crate) auto_param_shape_hits: AtomicU64,
    pub(crate) exact_fallback: AtomicU64,
    pub(crate) errors: AtomicU64,
}

impl SqlCounters {
    pub(crate) fn snapshot(&self) -> SqlStats {
        SqlStats {
            statements: self.statements.load(Ordering::Relaxed),
            auto_param: self.auto_param.load(Ordering::Relaxed),
            auto_param_shape_hits: self.auto_param_shape_hits.load(Ordering::Relaxed),
            exact_fallback: self.exact_fallback.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// SQL front-end counters, snapshotted ([`Server::sql_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqlStats {
    /// SQL statements accepted (parse attempts, all sessions).
    pub statements: u64,
    /// Ad-hoc statements auto-parameterized into prepared shapes.
    pub auto_param: u64,
    /// Auto-parameterized statements whose shape was already cached
    /// (no re-optimization, no re-lowering).
    pub auto_param_shape_hits: u64,
    /// Ad-hoc statements with no liftable literal, planned exactly.
    pub exact_fallback: u64,
    /// Statements rejected at parse or bind.
    pub errors: u64,
}

impl SqlStats {
    /// Fraction of auto-parameterized statements served from an
    /// already-cached shape (1.0 when none ran).
    pub fn shape_hit_rate(&self) -> f64 {
        if self.auto_param == 0 {
            1.0
        } else {
            self.auto_param_shape_hits as f64 / self.auto_param as f64
        }
    }
}

impl Server {
    /// SQL front-end counters (statements, auto-parameterization, shape
    /// hits, errors) across every session.
    pub fn sql_stats(&self) -> SqlStats {
        self.sql.snapshot()
    }
}

/// The binder's view of the live engine: user tables, `cx.*` system
/// tables, and the model registry.
struct EngineProvider<'a> {
    engine: &'a Engine,
}

impl cx_sql::SchemaProvider for EngineProvider<'_> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.engine.table(name).ok().and_then(|q| q.plan().schema().ok())
    }

    fn model_names(&self) -> Vec<String> {
        self.engine.catalog().models().names()
    }
}

fn sql_error(e: &SqlError) -> Error {
    Error::Parse(e.to_string())
}

impl Session {
    /// Parses, binds, and serves one SQL statement.
    ///
    /// `SELECT` (including the semantic extensions — `SEMANTIC LIKE`,
    /// `SEMANTIC JOIN ... ON SIM(..)`, `GROUP BY SEMANTIC`) returns
    /// [`SqlResponse::Rows`]; `PREPARE name AS ...` registers a named
    /// statement on this session and `EXECUTE name (...)` binds and runs
    /// it; `EXPLAIN [ANALYZE]` returns [`SqlResponse::Explain`]. Results
    /// are bit-identical to the equivalent hand-built [`Query`] served
    /// through [`Session::execute`].
    ///
    /// With [`ServeConfig::sql_auto_param`](crate::ServeConfig::sql_auto_param) on (the default), ad-hoc
    /// statements are auto-parameterized: literals are lifted into
    /// parameter slots so every statement with the same shape resolves
    /// to one cached prepared plan, then the literals are bound back.
    /// Statements carrying explicit `$n` placeholders must go through
    /// `PREPARE`/`EXECUTE` (there is nothing to bind them with here).
    ///
    /// Parse and bind failures return [`Error::Parse`] with the
    /// `cx_sql` position (`line`/`column`) in the message.
    ///
    /// ```
    /// use context_engine::{Engine, EngineConfig};
    /// use cx_embed::HashNGramModel;
    /// use cx_serve::{ServeConfig, Server, SqlResponse};
    /// use cx_storage::{Column, DataType, Field, Schema, Table};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(Engine::new(EngineConfig::default()));
    /// engine.register_model(Arc::new(HashNGramModel::new(42)));
    /// let products = Table::from_columns(
    ///     Schema::new(vec![
    ///         Field::new("name", DataType::Utf8),
    ///         Field::new("price", DataType::Float64),
    ///     ]),
    ///     vec![
    ///         Column::from_strings(["boots", "mug", "parka"]),
    ///         Column::from_f64(vec![30.0, 8.0, 80.0]),
    ///     ],
    /// ).unwrap();
    /// engine.register_table("products", products).unwrap();
    ///
    /// let server = Server::new(engine, ServeConfig::default());
    /// let session = server.session();
    /// let SqlResponse::Rows(r) =
    ///     session.sql("SELECT name FROM products WHERE price > 20.0 ORDER BY name").unwrap()
    /// else { panic!() };
    /// assert_eq!(r.table.num_rows(), 2); // boots, parka
    /// // Same shape, different literal: the lifted template is already
    /// // cached, so this statement skips optimization entirely.
    /// let SqlResponse::Rows(r) =
    ///     session.sql("SELECT name FROM products WHERE price > 50.0 ORDER BY name").unwrap()
    /// else { panic!() };
    /// assert_eq!(r.table.num_rows(), 1); // parka
    /// assert!(r.plan_cache_hit);
    /// assert_eq!(server.sql_stats().auto_param_shape_hits, 1);
    /// ```
    pub fn sql(&self, text: &str) -> Result<SqlResponse> {
        let server = self.server().clone();
        server.sql.statements.fetch_add(1, Ordering::Relaxed);
        let parse_start = Instant::now();
        let stmt = cx_sql::parse(text).map_err(|e| {
            server.sql.errors.fetch_add(1, Ordering::Relaxed);
            sql_error(&e)
        })?;
        let parse_dur = parse_start.elapsed();
        let bind_start = Instant::now();
        let provider = EngineProvider { engine: server.engine() };
        let bound = cx_sql::bind(&stmt, &provider).map_err(|e| {
            server.sql.errors.fetch_add(1, Ordering::Relaxed);
            sql_error(&e)
        })?;
        let bind_dur = bind_start.elapsed();
        match bound {
            Bound::Query(q) => {
                if q.param_count > 0 {
                    server.sql.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::Parse(format!(
                        "statement expects {} parameter(s); PREPARE it and \
                         EXECUTE with bindings",
                        q.param_count
                    )));
                }
                let result = self.serve_sql_plan(&server, q.plan)?;
                attach_sql_spans(&result, text, parse_start, parse_dur, bind_start, bind_dur);
                Ok(SqlResponse::Rows(result))
            }
            Bound::Explain { analyze, query } => {
                if query.param_count > 0 {
                    server.sql.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::Parse(format!(
                        "cannot EXPLAIN a statement with {} unbound parameter(s)",
                        query.param_count
                    )));
                }
                let q = Query::from_plan(query.plan);
                let rendered = if analyze {
                    self.explain_analyze(&q)?
                } else {
                    server.engine().explain(&q)?
                };
                Ok(SqlResponse::Explain(rendered))
            }
            Bound::Prepare { name, query } => {
                let prepared = Arc::new(self.prepare(&Query::from_plan(query.plan))?);
                let param_count = prepared.param_count();
                self.statements.lock().insert(name.clone(), prepared);
                Ok(SqlResponse::Prepared { name, param_count })
            }
            Bound::Execute { name, args } => {
                let prepared = self.statements.lock().get(&name).cloned().ok_or_else(|| {
                    server.sql.errors.fetch_add(1, Ordering::Relaxed);
                    Error::Parse(format!(
                        "unknown prepared statement `{name}`; PREPARE it on this \
                         session first"
                    ))
                })?;
                let result = prepared.execute(&args)?;
                attach_sql_spans(&result, text, parse_start, parse_dur, bind_start, bind_dur);
                Ok(SqlResponse::Rows(result))
            }
        }
    }

    /// Serves a bound, parameter-free SELECT: auto-parameterized through
    /// the prepared machinery when enabled and the statement has
    /// liftable literals, exact ad-hoc planning otherwise.
    fn serve_sql_plan(&self, server: &Arc<Server>, plan: LogicalPlan) -> Result<ServeResult> {
        if server.config().sql_auto_param {
            let (template, literals) = plan.lift_literals();
            if !literals.is_empty() {
                return self.execute_auto_param(server, template, &literals);
            }
            server.sql.exact_fallback.fetch_add(1, Ordering::Relaxed);
        }
        self.execute(&Query::from_plan(plan))
    }

    fn execute_auto_param(
        &self,
        server: &Arc<Server>,
        template: LogicalPlan,
        literals: &[Scalar],
    ) -> Result<ServeResult> {
        server.sql.auto_param.fetch_add(1, Ordering::Relaxed);
        // A fresh handle per statement: on a shape hit, `Prepared::new`
        // is a plan-cache lookup, not an optimization. (The server must
        // not retain handles itself — `Prepared` holds an `Arc<Server>`.)
        let prepared = Prepared::new(
            server.clone(),
            Query::from_plan(template),
            self.optimizer_config(),
        )?;
        if prepared.shape_cache_hit() {
            server.sql.auto_param_shape_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        prepared.execute(literals)
    }
}

/// Attaches the front-end's parse/bind timings to the query's lifecycle
/// trace (no-op when tracing is off). The spans predate the trace clock,
/// whose offsets saturate at zero — they render first, at depth 0.
fn attach_sql_spans(
    result: &ServeResult,
    text: &str,
    parse_start: Instant,
    parse_dur: Duration,
    bind_start: Instant,
    bind_dur: Duration,
) {
    if let Some(trace) = &result.trace {
        let detail: String = text.chars().take(80).collect();
        trace.add_span("sql_parse", detail.clone(), parse_start, parse_dur, 0, false);
        trace.add_span("sql_bind", detail, bind_start, bind_dur, 0, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use context_engine::EngineConfig;
    use cx_embed::ClusteredTextModel;
    use cx_storage::{Column, DataType, Field, Table};

    fn server_with_data(config: ServeConfig) -> Arc<Server> {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let specs = cx_datagen::table1_clusters();
        let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
        engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
        let products = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "parka", "kitten", "sneakers", "coat"]),
                Column::from_f64(vec![30.0, 80.0, 10.0, 55.0, 25.0]),
            ],
        )
        .unwrap();
        engine.register_table("products", products).unwrap();
        Server::new(engine, config)
    }

    fn rows(resp: SqlResponse) -> ServeResult {
        match resp {
            SqlResponse::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn sql_matches_builder_twin() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        let sql = rows(
            session
                .sql("SELECT name, price FROM products WHERE price > 20.0 ORDER BY name")
                .unwrap(),
        );
        let twin = session
            .table("products")
            .unwrap()
            .filter(cx_expr::col("price").gt(cx_expr::lit(20.0)))
            .select(vec![
                (cx_expr::col("name"), "name"),
                (cx_expr::col("price"), "price"),
            ])
            .sort(&[("name", true)]);
        let direct = server.engine().execute(&twin).unwrap();
        assert_eq!(sql.table.num_rows(), direct.table.num_rows());
        for r in 0..direct.table.num_rows() {
            assert_eq!(sql.table.row(r).unwrap(), direct.table.row(r).unwrap());
        }
    }

    #[test]
    fn auto_param_unifies_shapes_across_literals() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        for price in ["10.0", "20.0", "30.0", "40.0"] {
            rows(
                session
                    .sql(&format!("SELECT name FROM products WHERE price > {price}"))
                    .unwrap(),
            );
        }
        let stats = server.sql_stats();
        assert_eq!(stats.auto_param, 4);
        assert_eq!(stats.auto_param_shape_hits, 3, "{stats:?}");
        // One optimization for four distinct statements.
        assert_eq!(server.plan_cache_stats().misses, 1);
    }

    #[test]
    fn auto_param_off_plans_exactly() {
        let config = ServeConfig { sql_auto_param: false, ..ServeConfig::default() };
        let server = server_with_data(config);
        let session = server.session();
        rows(session.sql("SELECT name FROM products WHERE price > 10.0").unwrap());
        rows(session.sql("SELECT name FROM products WHERE price > 20.0").unwrap());
        let stats = server.sql_stats();
        assert_eq!(stats.auto_param, 0);
        // Distinct literals are distinct exact fingerprints: two misses.
        assert_eq!(server.plan_cache_stats().misses, 2);
    }

    #[test]
    fn literal_free_statement_falls_back_to_exact() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        rows(session.sql("SELECT * FROM products").unwrap());
        let stats = server.sql_stats();
        assert_eq!(stats.exact_fallback, 1);
        assert_eq!(stats.auto_param, 0);
    }

    #[test]
    fn prepare_execute_roundtrip() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        let SqlResponse::Prepared { name, param_count } = session
            .sql("PREPARE cheap AS SELECT name FROM products WHERE price < $0 ORDER BY name")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!((name.as_str(), param_count), ("cheap", 1));
        let r = rows(session.sql("EXECUTE cheap (20.0)").unwrap());
        assert_eq!(r.table.num_rows(), 1); // kitten
        let r = rows(session.sql("EXECUTE cheap (60.0)").unwrap());
        assert_eq!(r.table.num_rows(), 4);
        // Unknown names and unbound ad-hoc parameters are typed errors.
        assert!(session.sql("EXECUTE nope (1)").is_err());
        assert!(session.sql("SELECT * FROM products WHERE price > $0").is_err());
    }

    #[test]
    fn semantic_sql_serves_rows() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        let r = rows(
            session
                .sql(
                    "SELECT name FROM products \
                     WHERE name SEMANTIC LIKE 'clothes' (0.75) ORDER BY name",
                )
                .unwrap(),
        );
        assert_eq!(r.table.num_rows(), 4); // everything but kitten
    }

    #[test]
    fn explain_and_analyze_render() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        let SqlResponse::Explain(plan) =
            session.sql("EXPLAIN SELECT name FROM products WHERE price > 10.0").unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("products"), "{plan}");
        let SqlResponse::Explain(spans) = session
            .sql("EXPLAIN ANALYZE SELECT name FROM products WHERE price > 10.0")
            .unwrap()
        else {
            panic!()
        };
        assert!(spans.contains("execute"), "{spans}");
    }

    #[test]
    fn traces_carry_parse_and_bind_spans() {
        let config = ServeConfig { tracing: true, ..ServeConfig::default() };
        let server = server_with_data(config);
        let session = server.session();
        let r = rows(session.sql("SELECT name FROM products WHERE price > 10.0").unwrap());
        let rendered = r.trace.as_ref().expect("tracing on").render();
        assert!(rendered.contains("sql_parse"), "{rendered}");
        assert!(rendered.contains("sql_bind"), "{rendered}");
    }

    #[test]
    fn errors_are_positioned_and_counted() {
        let server = server_with_data(ServeConfig::default());
        let session = server.session();
        let e = session.sql("SELEC name FROM products").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = session.sql("SELECT nope FROM products").unwrap_err();
        assert!(e.to_string().contains("unknown column"), "{e}");
        assert_eq!(server.sql_stats().errors, 2);
        assert!(server.report().contains("sql: 2 statements"));
    }
}

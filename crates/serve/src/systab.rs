//! Live `cx.*` system tables: the server's telemetry as scannable
//! relations.
//!
//! Each provider here implements [`cx_storage::SystemTableSource`] over a
//! `Weak<Server>` and registers into the engine's catalog at
//! [`Server::new`], so normal relational operators (filter, project,
//! sort, aggregate, join) run over the server's own state:
//!
//! | table           | contents                                          |
//! |-----------------|---------------------------------------------------|
//! | `cx.queries`    | one row per retained trace: outcome, latency, queue wait, plan-cache verdict, MQO group size, quant tier, SIMD path, resource profile |
//! | `cx.spans`      | every span of every retained trace, flattened      |
//! | `cx.histograms` | nonzero buckets of every server histogram          |
//! | `cx.metrics`    | the full metrics snapshot as rows                  |
//! | `cx.plan_cache` | one row per cached plan                            |
//! | `cx.incidents`  | the watchdog's structured incident log             |
//!
//! **Lock discipline** (what makes a traced query scanning `cx.*` safe):
//! every snapshot takes at most one internal lock at a time, clones out
//! quickly, and never calls back into a serving path. The scanning
//! query's own trace is not yet in the ring (traces land at
//! `finish_query`, after execution), so no provider ever locks state the
//! scan is concurrently writing. A dropped server scans as empty rather
//! than dangling.

use crate::server::Server;
use cx_storage::{Chunk, Column, DataType, Field, Result, Schema, SystemTableSource};
use std::sync::{Arc, Weak};

/// Registers all six providers into the server's engine catalog.
/// Re-registration replaces: the last server constructed over an engine
/// owns its telemetry tables.
pub(crate) fn register_all(server: &Arc<Server>) {
    let catalog = server.engine().catalog();
    let weak = || Arc::downgrade(server);
    let sources: Vec<Arc<dyn SystemTableSource>> = vec![
        Arc::new(QueriesTable::new(weak())),
        Arc::new(SpansTable::new(weak())),
        Arc::new(HistogramsTable::new(weak())),
        Arc::new(MetricsTable::new(weak())),
        Arc::new(PlanCacheTable::new(weak())),
        Arc::new(IncidentsTable::new(weak())),
    ];
    for source in sources {
        // Cannot fail: every name below lives in the reserved schema.
        let _ = catalog.register_system_table(source);
    }
}

/// Column vectors under construction for one snapshot chunk.
fn chunk_from(schema: &Arc<Schema>, columns: Vec<Column>) -> Result<Vec<Chunk>> {
    if columns.first().is_none_or(|c| c.is_empty()) {
        return Ok(vec![]);
    }
    Ok(vec![Chunk::new(schema.clone(), columns)?])
}

/// First whitespace-separated `key=` token's value in a span detail.
fn detail_token<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail.split_whitespace().find_map(|tok| tok.strip_prefix(key))
}

/// The `k=<n>` group size carried by `shared_sweep` / `scan_queue_wait`
/// details.
fn parse_group_size(detail: &str) -> Option<i64> {
    detail_token(detail, "k=").and_then(|v| v.parse().ok())
}

/// `cx.queries`: one row per trace retained in the ring.
#[derive(Debug)]
struct QueriesTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl QueriesTable {
    fn new(server: Weak<Server>) -> Self {
        QueriesTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("query", DataType::Utf8),
                Field::required("outcome", DataType::Utf8),
                Field::required("total_ms", DataType::Float64),
                Field::required("queue_wait_ms", DataType::Float64),
                Field::required("plan_cache", DataType::Utf8),
                Field::required("group_size", DataType::Int64),
                Field::required("quant_tier", DataType::Utf8),
                Field::required("simd", DataType::Utf8),
                Field::required("cpu_ms", DataType::Float64),
                Field::required("alloc_count", DataType::Int64),
                Field::required("alloc_bytes", DataType::Int64),
                Field::required("pairs_scored", DataType::Int64),
                Field::required("panel_tiles", DataType::Int64),
                Field::required("bytes_charged", DataType::Int64),
            ])),
        }
    }
}

impl SystemTableSource for QueriesTable {
    fn name(&self) -> &str {
        "cx.queries"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let traces = server.traces();
        let mut query = Vec::new();
        let mut outcome = Vec::new();
        let mut total_ms = Vec::new();
        let mut queue_wait_ms = Vec::new();
        let mut plan_cache = Vec::new();
        let mut group_size = Vec::new();
        let mut quant_tier = Vec::new();
        let mut simd = Vec::new();
        let mut cpu_ms = Vec::new();
        let mut alloc_count = Vec::new();
        let mut alloc_bytes = Vec::new();
        let mut pairs_scored = Vec::new();
        let mut panel_tiles = Vec::new();
        let mut bytes_charged = Vec::new();
        for t in traces {
            query.push(t.label());
            outcome.push(t.outcome().unwrap_or_default());
            total_ms.push(t.total_ns() as f64 / 1e6);
            let spans = t.spans();
            queue_wait_ms.push(
                spans
                    .iter()
                    .filter(|s| s.name == "admission" || s.name == "scan_queue_wait")
                    .map(|s| s.dur_ns)
                    .sum::<u64>() as f64
                    / 1e6,
            );
            plan_cache.push(
                spans
                    .iter()
                    .find(|s| s.name == "plan_cache")
                    .map(|s| s.detail.clone())
                    .unwrap_or_default(),
            );
            group_size.push(
                spans
                    .iter()
                    .filter(|s| s.name == "shared_sweep" || s.name == "scan_queue_wait")
                    .find_map(|s| parse_group_size(&s.detail))
                    .unwrap_or(1),
            );
            let panel = spans.iter().find(|s| s.name == "panel_sweep");
            quant_tier.push(
                panel
                    .and_then(|s| detail_token(&s.detail, "tier="))
                    .unwrap_or_default()
                    .to_string(),
            );
            simd.push(
                panel
                    .and_then(|s| s.detail.split_once("simd=").map(|(_, rest)| rest))
                    .unwrap_or_default()
                    .to_string(),
            );
            let p = t.profile().unwrap_or_default();
            cpu_ms.push(p.cpu_ns as f64 / 1e6);
            alloc_count.push(p.alloc_count as i64);
            alloc_bytes.push(p.alloc_bytes as i64);
            pairs_scored.push(p.pairs_scored as i64);
            panel_tiles.push(p.panel_tiles as i64);
            bytes_charged.push(p.bytes_charged as i64);
        }
        chunk_from(
            &self.schema,
            vec![
                Column::from_strings(query),
                Column::from_strings(outcome),
                Column::from_f64(total_ms),
                Column::from_f64(queue_wait_ms),
                Column::from_strings(plan_cache),
                Column::from_i64(group_size),
                Column::from_strings(quant_tier),
                Column::from_strings(simd),
                Column::from_f64(cpu_ms),
                Column::from_i64(alloc_count),
                Column::from_i64(alloc_bytes),
                Column::from_i64(pairs_scored),
                Column::from_i64(panel_tiles),
                Column::from_i64(bytes_charged),
            ],
        )
    }
}

/// `cx.spans`: every span of every retained trace, flattened.
#[derive(Debug)]
struct SpansTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl SpansTable {
    fn new(server: Weak<Server>) -> Self {
        SpansTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("query", DataType::Utf8),
                Field::required("span", DataType::Utf8),
                Field::required("detail", DataType::Utf8),
                Field::required("start_ms", DataType::Float64),
                Field::required("dur_ms", DataType::Float64),
                Field::required("depth", DataType::Int64),
                Field::required("shared", DataType::Bool),
            ])),
        }
    }
}

impl SystemTableSource for SpansTable {
    fn name(&self) -> &str {
        "cx.spans"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let mut query = Vec::new();
        let mut span = Vec::new();
        let mut detail = Vec::new();
        let mut start_ms = Vec::new();
        let mut dur_ms = Vec::new();
        let mut depth = Vec::new();
        let mut shared = Vec::new();
        for t in server.traces() {
            let label = t.label();
            for s in t.spans() {
                query.push(label.clone());
                span.push(s.name.to_string());
                detail.push(s.detail);
                start_ms.push(s.start_ns as f64 / 1e6);
                dur_ms.push(s.dur_ns as f64 / 1e6);
                depth.push(s.depth as i64);
                shared.push(s.shared);
            }
        }
        chunk_from(
            &self.schema,
            vec![
                Column::from_strings(query),
                Column::from_strings(span),
                Column::from_strings(detail),
                Column::from_f64(start_ms),
                Column::from_f64(dur_ms),
                Column::from_i64(depth),
                Column::from_bools(shared),
            ],
        )
    }
}

/// `cx.histograms`: nonzero buckets of every server histogram (the three
/// always-on serving histograms plus one per instrumented operator).
#[derive(Debug)]
struct HistogramsTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl HistogramsTable {
    fn new(server: Weak<Server>) -> Self {
        HistogramsTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("histogram", DataType::Utf8),
                Field::required("bucket_low", DataType::Int64),
                Field::required("bucket_mid", DataType::Int64),
                Field::required("count", DataType::Int64),
            ])),
        }
    }
}

impl SystemTableSource for HistogramsTable {
    fn name(&self) -> &str {
        "cx.histograms"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let mut name = Vec::new();
        let mut low = Vec::new();
        let mut mid = Vec::new();
        let mut count = Vec::new();
        let mut push = |hist_name: &str, buckets: Vec<cx_obs::BucketCount>| {
            for b in buckets {
                name.push(hist_name.to_string());
                low.push(b.low as i64);
                mid.push(b.mid as i64);
                count.push(b.count as i64);
            }
        };
        push("latency", server.latency_histogram().nonzero_buckets());
        push("queue_wait", server.queue_wait_histogram().nonzero_buckets());
        push("sweep", server.sweep_histogram().nonzero_buckets());
        for (op, h) in server.exec_metrics().handles() {
            push(&format!("operator:{op}"), h.latency().nonzero_buckets());
        }
        chunk_from(
            &self.schema,
            vec![
                Column::from_strings(name),
                Column::from_i64(low),
                Column::from_i64(mid),
                Column::from_i64(count),
            ],
        )
    }
}

/// `cx.metrics`: the full [`Server::metrics_snapshot`] flattened to rows
/// (summaries expand to one row per quantile plus `_sum` / `_count`).
#[derive(Debug)]
struct MetricsTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl MetricsTable {
    fn new(server: Weak<Server>) -> Self {
        MetricsTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("name", DataType::Utf8),
                Field::required("labels", DataType::Utf8),
                Field::required("kind", DataType::Utf8),
                Field::required("value", DataType::Float64),
            ])),
        }
    }
}

impl SystemTableSource for MetricsTable {
    fn name(&self) -> &str {
        "cx.metrics"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let snap = server.metrics_snapshot();
        let mut name = Vec::new();
        let mut labels = Vec::new();
        let mut kind = Vec::new();
        let mut value = Vec::new();
        let mut row = |n: String, l: String, k: &str, v: f64| {
            name.push(n);
            labels.push(l);
            kind.push(k.to_string());
            value.push(v);
        };
        if let (Some(ts), Some(seq)) = (snap.timestamp_ms(), snap.sequence()) {
            row("cx_obs_snapshot_timestamp_ms".into(), String::new(), "gauge", ts as f64);
            row("cx_obs_snapshot_sequence".into(), String::new(), "counter", seq as f64);
        }
        for m in snap.metrics() {
            let rendered = m
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            match &m.value {
                cx_obs::MetricValue::Counter(v) => {
                    row(m.name.clone(), rendered, "counter", *v as f64)
                }
                cx_obs::MetricValue::Gauge(v) => row(m.name.clone(), rendered, "gauge", *v),
                cx_obs::MetricValue::Summary { quantiles, count, sum } => {
                    for (q, v) in quantiles {
                        let ql = if rendered.is_empty() {
                            format!("quantile={q}")
                        } else {
                            format!("{rendered},quantile={q}")
                        };
                        row(m.name.clone(), ql, "summary", *v);
                    }
                    row(format!("{}_sum", m.name), rendered.clone(), "summary", *sum);
                    row(format!("{}_count", m.name), rendered, "summary", *count as f64);
                }
            }
        }
        chunk_from(
            &self.schema,
            vec![
                Column::from_strings(name),
                Column::from_strings(labels),
                Column::from_strings(kind),
                Column::from_f64(value),
            ],
        )
    }
}

/// `cx.plan_cache`: one row per cached plan.
#[derive(Debug)]
struct PlanCacheTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl PlanCacheTable {
    fn new(server: Weak<Server>) -> Self {
        PlanCacheTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("key", DataType::Utf8),
                Field::required("catalog_version", DataType::Int64),
                Field::required("estimated_rows", DataType::Float64),
                Field::required("estimated_cost", DataType::Float64),
                Field::required("rules_fired", DataType::Int64),
                Field::required("shared_scan", DataType::Bool),
                Field::required("volatile", DataType::Bool),
                Field::required("has_result", DataType::Bool),
                Field::required("bound_results", DataType::Int64),
                Field::required("last_used", DataType::Int64),
            ])),
        }
    }
}

impl SystemTableSource for PlanCacheTable {
    fn name(&self) -> &str {
        "cx.plan_cache"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let mut entries = server.plan_cache_entries();
        entries.sort_by_key(|e| std::cmp::Reverse(e.last_used));
        chunk_from(
            &self.schema,
            vec![
                Column::from_strings(
                    entries.iter().map(|e| format!("{:016x}", e.key)).collect::<Vec<_>>(),
                ),
                Column::from_i64(entries.iter().map(|e| e.catalog_version as i64).collect()),
                Column::from_f64(entries.iter().map(|e| e.estimated_rows).collect()),
                Column::from_f64(entries.iter().map(|e| e.estimated_cost).collect()),
                Column::from_i64(entries.iter().map(|e| e.rules_fired as i64).collect()),
                Column::from_bools(entries.iter().map(|e| e.shared_scan).collect()),
                Column::from_bools(entries.iter().map(|e| e.volatile).collect()),
                Column::from_bools(entries.iter().map(|e| e.has_result).collect()),
                Column::from_i64(entries.iter().map(|e| e.bound_results as i64).collect()),
                Column::from_i64(entries.iter().map(|e| e.last_used as i64).collect()),
            ],
        )
    }
}

/// `cx.incidents`: the watchdog's structured incident log, oldest first.
#[derive(Debug)]
struct IncidentsTable {
    server: Weak<Server>,
    schema: Arc<Schema>,
}

impl IncidentsTable {
    fn new(server: Weak<Server>) -> Self {
        IncidentsTable {
            server,
            schema: Arc::new(Schema::new(vec![
                Field::required("seq", DataType::Int64),
                Field::required("at_ms", DataType::Int64),
                Field::required("kind", DataType::Utf8),
                Field::required("detail", DataType::Utf8),
                Field::required("value", DataType::Float64),
                Field::required("threshold", DataType::Float64),
            ])),
        }
    }
}

impl SystemTableSource for IncidentsTable {
    fn name(&self) -> &str {
        "cx.incidents"
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn snapshot(&self) -> Result<Vec<Chunk>> {
        let Some(server) = self.server.upgrade() else { return Ok(vec![]) };
        let records = server.incidents().recent();
        chunk_from(
            &self.schema,
            vec![
                Column::from_i64(records.iter().map(|r| r.seq as i64).collect()),
                Column::from_i64(records.iter().map(|r| r.at_ms as i64).collect()),
                Column::from_strings(records.iter().map(|r| r.kind).collect::<Vec<_>>()),
                Column::from_strings(
                    records.iter().map(|r| r.detail.clone()).collect::<Vec<_>>(),
                ),
                Column::from_f64(records.iter().map(|r| r.value).collect()),
                Column::from_f64(records.iter().map(|r| r.threshold).collect()),
            ],
        )
    }
}

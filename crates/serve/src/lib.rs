//! `cx_serve` — the concurrent query-serving subsystem.
//!
//! The engine crates below this one answer *one* query fast; a production
//! deployment answers *many at once*, from many users, over the same data.
//! This crate is that layer. It shares a single [`context_engine::Engine`]
//! (which is `Send + Sync`: catalog, model registry, and embedding caches
//! are all lock-protected shared state) across any number of threads and
//! adds the three mechanisms one-shot execution lacks:
//!
//! * **[`PlanCache`]** — repeated and parameterized-identical queries skip
//!   logical optimization *and* physical planning. Keyed by
//!   [`LogicalPlan::fingerprint`] ⊕ [`config_fingerprint`], invalidated by
//!   catalog version, LRU-bounded. Each cached plan also memoizes its
//!   result table ([`ServeConfig::cache_results`]): the engine is
//!   deterministic and the entry is pinned to one catalog version, so an
//!   exact replay is the same table and skips execution outright.
//! * **[`EmbedBatcher`]** — a cross-query embedding batch scheduler:
//!   concurrent queries' embed working sets are deduplicated into one
//!   pending queue and flushed (on size or deadline) with single
//!   [`cx_embed::EmbeddingCache::get_batch_into`] calls, so N concurrent
//!   semantic scans over overlapping corpora pay one model pass.
//! * **[`CostGate`]** — admission control: a cost-weighted semaphore on
//!   `cx_optimizer::estimate_cost`, bounding the total estimated work
//!   executing at once.
//! * **[`ScanQueue`]** — multi-query scan sharing: queries whose plans
//!   sweep the same candidate panel (equal `cx_exec::shared` group keys)
//!   linger briefly, merge into one `cx_mqo::SharedScanExec`, and are
//!   answered by a single stacked-probe panel sweep plus per-query
//!   epilogues — bit-identical to solo execution, admission-weighted at
//!   `cx_optimizer::shared_scan_cost`.
//!
//! ```
//! use context_engine::{Engine, EngineConfig};
//! use cx_embed::HashNGramModel;
//! use cx_serve::{ServeConfig, Server};
//! use cx_storage::{Column, DataType, Field, Schema, Table};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! engine.register_model(Arc::new(HashNGramModel::new(42)));
//! let names = Table::from_columns(
//!     Schema::new(vec![Field::new("name", DataType::Utf8)]),
//!     vec![Column::from_strings(["boots", "mug", "boots"])],
//! ).unwrap();
//! engine.register_table("products", names).unwrap();
//!
//! let server = Server::new(engine, ServeConfig::default());
//! let query = server.table("products").unwrap()
//!     .semantic_filter("name", "boots", "hash-ngram", 0.99);
//! // First execution optimizes, lowers, caches; the repeat is a plan hit.
//! let cold = server.execute(&query).unwrap();
//! let warm = server.execute(&query).unwrap();
//! assert_eq!(cold.table.num_rows(), 2);
//! assert!(!cold.plan_cache_hit && warm.plan_cache_hit);
//! ```
//!
//! [`LogicalPlan::fingerprint`]: cx_exec::logical::LogicalPlan::fingerprint

pub mod admission;
pub mod batcher;
pub mod plan_cache;
pub mod scan_queue;
pub mod server;

pub use admission::{AdmissionStats, CostGate, Permit};
pub use batcher::{BatcherConfig, BatcherStats, EmbedBatcher};
pub use plan_cache::{config_fingerprint, CachedPlan, PlanCache, PlanCacheStats};
pub use scan_queue::{ScanQueue, ScanQueueConfig, ScanQueueStats};
pub use server::{ServeConfig, ServeResult, Server, ServerStats, Session};

#[cfg(test)]
mod tests {
    use super::*;
    use context_engine::{Engine, EngineConfig};
    use cx_embed::ClusteredTextModel;
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Schema, Table};
    use std::sync::Arc;

    fn engine_with_data() -> Arc<Engine> {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let specs = cx_datagen::table1_clusters();
        let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
        engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
        let products = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "parka", "kitten", "sneakers", "coat"]),
                Column::from_f64(vec![30.0, 80.0, 10.0, 55.0, 25.0]),
            ],
        )
        .unwrap();
        engine.register_table("products", products).unwrap();
        let mut kb = cx_kb::KnowledgeBase::new();
        for item in ["boots", "sneakers", "oxfords"] {
            kb.assert_is_a(item, "shoes");
        }
        for item in ["parka", "coat", "windbreaker"] {
            kb.assert_is_a(item, "jacket");
        }
        kb.assert_is_a("shoes", "clothes");
        kb.assert_is_a("jacket", "clothes");
        engine.register_kb("kb", kb).unwrap();
        engine
    }

    #[test]
    fn served_results_match_direct_execution() {
        let engine = engine_with_data();
        let server = Server::new(engine.clone(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75)
            .filter(col("price").gt(lit(20.0)))
            .sort(&[("product_id", true)]);
        let direct = engine.execute(&q).unwrap();
        let served = server.execute(&q).unwrap();
        assert_eq!(served.table.num_rows(), direct.table.num_rows());
        for r in 0..direct.table.num_rows() {
            assert_eq!(served.table.row(r).unwrap(), direct.table.row(r).unwrap());
        }
        assert_eq!(served.rules_fired, direct.rules_fired);
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_differs_on_params() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = |threshold| {
            server
                .table("products")
                .unwrap()
                .semantic_filter("name", "clothes", "m", threshold)
        };
        assert!(!server.execute(&q(0.75)).unwrap().plan_cache_hit);
        assert!(server.execute(&q(0.75)).unwrap().plan_cache_hit);
        // A different parameter is a different fingerprint.
        assert!(!server.execute(&q(0.8)).unwrap().plan_cache_hit);
        let stats = server.plan_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn catalog_change_invalidates_cached_plans() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .filter(col("price").gt(lit(20.0)));
        server.execute(&q).unwrap();
        assert!(server.execute(&q).unwrap().plan_cache_hit);
        // Re-register the table: contents (and stats) may have changed.
        let replacement = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![9]),
                Column::from_strings(["anvil"]),
                Column::from_f64(vec![99.0]),
            ],
        )
        .unwrap();
        server.engine().register_table("products", replacement).unwrap();
        let after = server.execute(&q).unwrap();
        assert!(!after.plan_cache_hit, "stale plan served after catalog change");
        assert_eq!(after.table.num_rows(), 1);
        assert!(server.plan_cache_stats().invalidations >= 1);
    }

    #[test]
    fn warming_runs_through_the_batcher() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75);
        server.execute(&q).unwrap();
        let stats = server.batcher("m").unwrap().stats();
        // The 5 product names + the target went through batched warming.
        assert!(stats.batches >= 1, "{stats:?}");
        assert!(stats.batched_texts >= 6, "{stats:?}");
        // And execution found them cached: the model embedded each distinct
        // string exactly once.
        let cache = server.engine().embedding_cache("m").unwrap();
        assert_eq!(cache.model().stats().invocations(), 6);
    }

    #[test]
    fn sessions_share_the_server() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let a = server.session();
        let b = server.session();
        assert_ne!(a.id(), b.id());
        let q = server.table("kb").unwrap().filter(col("category").eq(lit("clothes")));
        a.execute(&q).unwrap();
        b.execute(&q).unwrap();
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
        let stats = server.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.sessions, 2);
        // Second execution hit the first session's cached plan.
        assert!(stats.plan_cache.hits >= 1);
        let report = server.report();
        assert!(report.contains("plan cache"));
        assert!(report.contains("operator metrics"));
    }

    #[test]
    fn result_memo_serves_replays_without_reexecuting() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75)
            .sort(&[("product_id", true)]);
        let first = server.execute(&q).unwrap();
        assert!(!first.result_cache_hit);
        let replay = server.execute(&q).unwrap();
        assert!(replay.result_cache_hit && replay.plan_cache_hit);
        assert_eq!(replay.table.num_rows(), first.table.num_rows());
        for r in 0..first.table.num_rows() {
            assert_eq!(replay.table.row(r).unwrap(), first.table.row(r).unwrap());
        }
        // The replay skipped admission entirely.
        assert_eq!(server.admission_stats().admitted, 1);
        assert_eq!(server.stats().result_cache_hits, 1);
        // Catalog changes invalidate the memo along with the plan.
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1]),
                Column::from_strings(["parka"]),
                Column::from_f64(vec![1.0]),
            ],
        )
        .unwrap();
        server.engine().register_table("products", t).unwrap();
        let after = server.execute(&q).unwrap();
        assert!(!after.result_cache_hit);
        assert_eq!(after.table.num_rows(), 1);
    }

    #[test]
    fn admission_gate_sees_every_query() {
        // Result memo disabled so both executions actually run.
        let config = ServeConfig {
            admission_capacity: 1e12,
            cache_results: false,
            ..ServeConfig::default()
        };
        let server = Server::new(engine_with_data(), config);
        let q = server.table("products").unwrap().limit(2);
        server.execute(&q).unwrap();
        server.execute(&q).unwrap();
        let stats = server.admission_stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.active, 0);
        assert_eq!(stats.in_use, 0.0);
    }
}

//! `cx_serve` — the concurrent query-serving subsystem.
//!
//! The engine crates below this one answer *one* query fast; a production
//! deployment answers *many at once*, from many users, over the same data.
//! This crate is that layer. It shares a single [`context_engine::Engine`]
//! (which is `Send + Sync`: catalog, model registry, and embedding caches
//! are all lock-protected shared state) across any number of threads and
//! adds the three mechanisms one-shot execution lacks:
//!
//! * **[`PlanCache`]** — repeated and parameterized-identical queries skip
//!   logical optimization *and* physical planning. Keyed by
//!   [`LogicalPlan::fingerprint`] ⊕ [`config_fingerprint`], invalidated by
//!   catalog version, LRU-bounded. Each cached plan also memoizes its
//!   result table ([`ServeConfig::cache_results`]): the engine is
//!   deterministic and the entry is pinned to one catalog version, so an
//!   exact replay is the same table and skips execution outright.
//! * **[`EmbedBatcher`]** — a cross-query embedding batch scheduler:
//!   concurrent queries' embed working sets are deduplicated into one
//!   pending queue and flushed (on size or deadline) with single
//!   [`cx_embed::EmbeddingCache::get_batch_into`] calls, so N concurrent
//!   semantic scans over overlapping corpora pay one model pass.
//! * **[`CostGate`]** — admission control: a cost-weighted semaphore on
//!   `cx_optimizer::estimate_cost`, bounding the total estimated work
//!   executing at once.
//! * **[`ScanQueue`]** — multi-query scan sharing: queries whose plans
//!   sweep the same candidate panel (equal `cx_exec::shared` group keys)
//!   linger briefly, merge into one `cx_mqo::SharedScanExec`, and are
//!   answered by a single stacked-probe panel sweep plus per-query
//!   epilogues — bit-identical to solo execution, admission-weighted at
//!   `cx_optimizer::shared_scan_cost`.
//! * **[`Prepared`]** — prepared statements with parameter binding: a
//!   template with placeholder slots ([`cx_expr::param`],
//!   `Query::semantic_filter_param`, `Query::limit_param`) is optimized
//!   and lowered once per plan *shape*
//!   ([`LogicalPlan::shape_fingerprint`]) ⊕ config ⊕ catalog version;
//!   [`Prepared::execute`] binds values into a copy of the cached
//!   physical tree, re-costs admission with the bound literals, memoizes
//!   results per binding vector, and still participates in multi-query
//!   scan sharing.
//! * **SQL** ([`Session::sql`]) — a text front-end (`cx_sql`: SELECT
//!   plus the semantic extensions `SEMANTIC LIKE`, `SEMANTIC JOIN ... ON
//!   SIM(..)`, `GROUP BY SEMANTIC`, and `PREPARE`/`EXECUTE`/`EXPLAIN`)
//!   bound against the live catalog. Ad-hoc statements are
//!   **auto-parameterized** ([`ServeConfig::sql_auto_param`]): literals
//!   lift into parameter slots so same-shaped statements share one
//!   prepared plan-cache entry — prepared-statement throughput for plain
//!   text, bit-identical results.
//! * **Observability** (`cx_obs`) — per-query lifecycle traces
//!   ([`ServeConfig::tracing`], rendered EXPLAIN-ANALYZE-style and kept
//!   in a bounded ring plus an optional slow-query log), always-on
//!   latency/queue-wait/sweep histograms with p50/p95/p99, and a full
//!   counter registry exportable as Prometheus text or JSON
//!   ([`Server::metrics_snapshot`], [`Server::prometheus`]).
//!
//! ```
//! use context_engine::{Engine, EngineConfig};
//! use cx_embed::HashNGramModel;
//! use cx_serve::{ServeConfig, Server};
//! use cx_storage::{Column, DataType, Field, Schema, Table};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! engine.register_model(Arc::new(HashNGramModel::new(42)));
//! let names = Table::from_columns(
//!     Schema::new(vec![Field::new("name", DataType::Utf8)]),
//!     vec![Column::from_strings(["boots", "mug", "boots"])],
//! ).unwrap();
//! engine.register_table("products", names).unwrap();
//!
//! let server = Server::new(engine, ServeConfig::default());
//! let query = server.table("products").unwrap()
//!     .semantic_filter("name", "boots", "hash-ngram", 0.99);
//! // First execution optimizes, lowers, caches; the repeat is a plan hit.
//! let cold = server.execute(&query).unwrap();
//! let warm = server.execute(&query).unwrap();
//! assert_eq!(cold.table.num_rows(), 2);
//! assert!(!cold.plan_cache_hit && warm.plan_cache_hit);
//! ```
//!
//! [`LogicalPlan::fingerprint`]: cx_exec::logical::LogicalPlan::fingerprint
//! [`LogicalPlan::shape_fingerprint`]: cx_exec::logical::LogicalPlan::shape_fingerprint

#![deny(missing_docs)]
// Shared-state lock acquisitions in this crate must recover from
// poisoning (`unwrap_or_else(PoisonError::into_inner)`) rather than
// unwrap: a panicked peer — chaos-injected or genuine — must never brick
// the server for every later query. The lint keeps new `.unwrap()`s out
// of the serving path; tests assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod admission;
pub mod batcher;
pub mod faults;
pub mod plan_cache;
pub mod prepared;
pub mod scan_queue;
pub mod server;
pub mod sql;
pub mod systab;
pub mod watchdog;

pub use admission::{AdmissionStats, CostGate, Permit};
pub use batcher::{BatcherConfig, BatcherStats, EmbedBatcher};
pub use faults::{FaultKind, FaultPlan, FaultSite, FaultStats};
pub use plan_cache::{
    config_fingerprint, BindingKey, CachedPlan, PlanCache, PlanCacheStats, PlanEntryInfo,
};
pub use prepared::Prepared;
pub use scan_queue::{ScanQueue, ScanQueueConfig, ScanQueueStats};
pub use server::{
    ExecUnit, LifecycleStats, ProfileTotalsStats, QueryOptions, ServeConfig, ServeResult, Server,
    ServerStats, Session,
};
pub use sql::{SqlResponse, SqlStats};
pub use watchdog::WatchdogConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use context_engine::{Engine, EngineConfig};
    use cx_embed::ClusteredTextModel;
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Schema, Table};
    use std::sync::Arc;

    fn engine_with_data() -> Arc<Engine> {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let specs = cx_datagen::table1_clusters();
        let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
        engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
        let products = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "parka", "kitten", "sneakers", "coat"]),
                Column::from_f64(vec![30.0, 80.0, 10.0, 55.0, 25.0]),
            ],
        )
        .unwrap();
        engine.register_table("products", products).unwrap();
        let mut kb = cx_kb::KnowledgeBase::new();
        for item in ["boots", "sneakers", "oxfords"] {
            kb.assert_is_a(item, "shoes");
        }
        for item in ["parka", "coat", "windbreaker"] {
            kb.assert_is_a(item, "jacket");
        }
        kb.assert_is_a("shoes", "clothes");
        kb.assert_is_a("jacket", "clothes");
        engine.register_kb("kb", kb).unwrap();
        engine
    }

    #[test]
    fn served_results_match_direct_execution() {
        let engine = engine_with_data();
        let server = Server::new(engine.clone(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75)
            .filter(col("price").gt(lit(20.0)))
            .sort(&[("product_id", true)]);
        let direct = engine.execute(&q).unwrap();
        let served = server.execute(&q).unwrap();
        assert_eq!(served.table.num_rows(), direct.table.num_rows());
        for r in 0..direct.table.num_rows() {
            assert_eq!(served.table.row(r).unwrap(), direct.table.row(r).unwrap());
        }
        assert_eq!(served.rules_fired, direct.rules_fired);
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_differs_on_params() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = |threshold| {
            server
                .table("products")
                .unwrap()
                .semantic_filter("name", "clothes", "m", threshold)
        };
        assert!(!server.execute(&q(0.75)).unwrap().plan_cache_hit);
        assert!(server.execute(&q(0.75)).unwrap().plan_cache_hit);
        // A different parameter is a different fingerprint.
        assert!(!server.execute(&q(0.8)).unwrap().plan_cache_hit);
        let stats = server.plan_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn catalog_change_invalidates_cached_plans() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .filter(col("price").gt(lit(20.0)));
        server.execute(&q).unwrap();
        assert!(server.execute(&q).unwrap().plan_cache_hit);
        // Re-register the table: contents (and stats) may have changed.
        let replacement = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![9]),
                Column::from_strings(["anvil"]),
                Column::from_f64(vec![99.0]),
            ],
        )
        .unwrap();
        server.engine().register_table("products", replacement).unwrap();
        let after = server.execute(&q).unwrap();
        assert!(!after.plan_cache_hit, "stale plan served after catalog change");
        assert_eq!(after.table.num_rows(), 1);
        assert!(server.plan_cache_stats().invalidations >= 1);
    }

    #[test]
    fn warming_runs_through_the_batcher() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75);
        server.execute(&q).unwrap();
        let stats = server.batcher("m").unwrap().stats();
        // The 5 product names + the target went through batched warming.
        assert!(stats.batches >= 1, "{stats:?}");
        assert!(stats.batched_texts >= 6, "{stats:?}");
        // And execution found them cached: the model embedded each distinct
        // string exactly once.
        let cache = server.engine().embedding_cache("m").unwrap();
        assert_eq!(cache.model().stats().invocations(), 6);
    }

    #[test]
    fn sessions_share_the_server() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let a = server.session();
        let b = server.session();
        assert_ne!(a.id(), b.id());
        let q = server.table("kb").unwrap().filter(col("category").eq(lit("clothes")));
        a.execute(&q).unwrap();
        b.execute(&q).unwrap();
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 1);
        let stats = server.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.sessions, 2);
        // Second execution hit the first session's cached plan.
        assert!(stats.plan_cache.hits >= 1);
        let report = server.report();
        assert!(report.contains("plan cache"));
        assert!(report.contains("operator metrics"));
    }

    #[test]
    fn result_memo_serves_replays_without_reexecuting() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let q = server
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75)
            .sort(&[("product_id", true)]);
        let first = server.execute(&q).unwrap();
        assert!(!first.result_cache_hit);
        let replay = server.execute(&q).unwrap();
        assert!(replay.result_cache_hit && replay.plan_cache_hit);
        assert_eq!(replay.table.num_rows(), first.table.num_rows());
        for r in 0..first.table.num_rows() {
            assert_eq!(replay.table.row(r).unwrap(), first.table.row(r).unwrap());
        }
        // The replay skipped admission entirely.
        assert_eq!(server.admission_stats().admitted, 1);
        assert_eq!(server.stats().result_cache_hits, 1);
        // Catalog changes invalidate the memo along with the plan.
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1]),
                Column::from_strings(["parka"]),
                Column::from_f64(vec![1.0]),
            ],
        )
        .unwrap();
        server.engine().register_table("products", t).unwrap();
        let after = server.execute(&q).unwrap();
        assert!(!after.result_cache_hit);
        assert_eq!(after.table.num_rows(), 1);
    }

    #[test]
    fn prepared_matches_adhoc_bit_for_bit() {
        let engine = engine_with_data();
        let server = Server::new(engine.clone(), ServeConfig::default());
        let session = server.session();
        let template = session
            .table("products")
            .unwrap()
            .semantic_filter_param("name", 0, "m", 0.75)
            .filter(col("price").gt(cx_expr::param(1)))
            .sort(&[("product_id", true)]);
        let prepared = session.prepare(&template).unwrap();
        assert_eq!(prepared.param_count(), 2);
        for (target, price) in [("clothes", 20.0), ("clothes", 50.0), ("cat", 5.0)] {
            let got = prepared
                .execute(&[cx_storage::Scalar::from(target), cx_storage::Scalar::Float64(price)])
                .unwrap();
            let adhoc = engine
                .execute(
                    &engine
                        .table("products")
                        .unwrap()
                        .semantic_filter("name", target, "m", 0.75)
                        .filter(col("price").gt(lit(price)))
                        .sort(&[("product_id", true)]),
                )
                .unwrap();
            assert_eq!(got.table.num_rows(), adhoc.table.num_rows(), "{target}/{price}");
            for r in 0..adhoc.table.num_rows() {
                assert_eq!(got.table.row(r).unwrap(), adhoc.table.row(r).unwrap());
            }
        }
        // Every post-prepare execution resolved through the cached shape.
        let stats = server.plan_cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert!(stats.hits >= 3, "{stats:?}");
        assert_eq!(server.stats().prepared_queries, 3);
    }

    #[test]
    fn prepared_memo_is_per_binding() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let session = server.session();
        let template = session
            .table("products")
            .unwrap()
            .semantic_filter_param("name", 0, "m", 0.75);
        let prepared = session.prepare(&template).unwrap();
        let bind = |t: &str| [cx_storage::Scalar::from(t)];
        let first = prepared.execute(&bind("clothes")).unwrap();
        assert!(!first.result_cache_hit);
        // Same binding replays from the per-binding memo without
        // re-admission; a different binding executes.
        let admitted_before = server.admission_stats().admitted;
        let replay = prepared.execute(&bind("clothes")).unwrap();
        assert!(replay.result_cache_hit);
        assert_eq!(server.admission_stats().admitted, admitted_before);
        assert_eq!(replay.table.num_rows(), first.table.num_rows());
        let other = prepared.execute(&bind("cat")).unwrap();
        assert!(!other.result_cache_hit);
        assert_ne!(other.table.num_rows(), first.table.num_rows());
    }

    #[test]
    fn same_shape_different_literals_never_share_a_plan() {
        // Two templates identical up to an *unparameterized* literal
        // share a shape fingerprint; the exact-fingerprint validation
        // must keep them from serving each other's plans.
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let session = server.session();
        let template = |price: f64| {
            session
                .table("products")
                .unwrap()
                .semantic_filter_param("name", 0, "m", 0.75)
                .filter(col("price").gt(lit(price)))
        };
        let a = session.prepare(&template(20.0)).unwrap();
        let b = session.prepare(&template(50.0)).unwrap();
        assert_eq!(a.shape_fingerprint(), b.shape_fingerprint());
        let bind = [cx_storage::Scalar::from("clothes")];
        let rows_a = a.execute(&bind).unwrap().table.num_rows();
        let rows_b = b.execute(&bind).unwrap().table.num_rows();
        assert_eq!(rows_a, 4); // boots 30, parka 80, sneakers 55, coat 25
        assert_eq!(rows_b, 2); // parka, sneakers
        // And they don't thrash each other's slots either: the exact
        // fingerprint is part of the key, so interleaved executions with
        // fresh bindings keep hitting their own cached plans.
        let bind2 = [cx_storage::Scalar::from("cat")];
        assert!(a.execute(&bind2).unwrap().plan_cache_hit);
        assert!(b.execute(&bind2).unwrap().plan_cache_hit);
        assert!(a.execute(&bind).unwrap().result_cache_hit);
    }

    #[test]
    fn type_changing_bindings_match_adhoc_in_projections() {
        // A parameter is untyped at prepare, so `price_id * $0`-style
        // projections freeze a schema from the other operand alone;
        // binding must re-derive both the expression types and the output
        // schema, or a Float64 binding would fail (or truncate) where the
        // literal query succeeds.
        let engine = engine_with_data();
        let server = Server::new(engine.clone(), ServeConfig::default());
        let session = server.session();
        let template = session
            .table("products")
            .unwrap()
            .filter(col("product_id").mul(cx_expr::param(0)).gt(cx_expr::param(1)))
            .select(vec![
                (col("name"), "name"),
                (col("product_id").mul(cx_expr::param(0)), "scaled"),
            ]);
        let prepared = session.prepare(&template).unwrap();
        for scale in [cx_storage::Scalar::Float64(0.5), cx_storage::Scalar::Int64(2)] {
            let bind = [scale.clone(), cx_storage::Scalar::Float64(1.2)];
            let got = prepared.execute(&bind).unwrap();
            let adhoc = engine
                .execute(
                    &engine
                        .table("products")
                        .unwrap()
                        .filter(
                            col("product_id")
                                .mul(cx_expr::Expr::Literal(scale.clone()))
                                .gt(lit(1.2)),
                        )
                        .select(vec![
                            (col("name"), "name"),
                            (
                                col("product_id").mul(cx_expr::Expr::Literal(scale.clone())),
                                "scaled",
                            ),
                        ]),
                )
                .unwrap();
            assert_eq!(got.table.num_rows(), adhoc.table.num_rows(), "{scale:?}");
            assert_eq!(
                got.table.schema().fields(),
                adhoc.table.schema().fields(),
                "{scale:?}"
            );
            for r in 0..adhoc.table.num_rows() {
                assert_eq!(got.table.row(r).unwrap(), adhoc.table.row(r).unwrap(), "{scale:?}");
            }
        }
    }

    #[test]
    fn non_contiguous_param_slots_rejected_at_prepare() {
        let server = Server::new(engine_with_data(), ServeConfig::default());
        let session = server.session();
        let template = session
            .table("products")
            .unwrap()
            .semantic_filter_param("name", 1, "m", 0.75);
        assert!(session.prepare(&template).is_err());
        // Wrong arity is rejected at execute.
        let ok = session
            .table("products")
            .unwrap()
            .semantic_filter_param("name", 0, "m", 0.75);
        let prepared = session.prepare(&ok).unwrap();
        assert!(prepared.execute(&[]).is_err());
        assert!(prepared
            .execute(&[cx_storage::Scalar::from("x"), cx_storage::Scalar::from("y")])
            .is_err());
        // A non-UTF8 probe binding is a type error, not a panic.
        assert!(prepared.execute(&[cx_storage::Scalar::Int64(3)]).is_err());
    }

    #[test]
    fn admission_gate_sees_every_query() {
        // Result memo disabled so both executions actually run.
        let config = ServeConfig {
            admission_capacity: 1e12,
            cache_results: false,
            ..ServeConfig::default()
        };
        let server = Server::new(engine_with_data(), config);
        let q = server.table("products").unwrap().limit(2);
        server.execute(&q).unwrap();
        server.execute(&q).unwrap();
        let stats = server.admission_stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.active, 0);
        assert_eq!(stats.in_use, 0.0);
    }
}

//! The concurrent query server: one shared engine, many sessions.
//!
//! [`Server`] wraps an `Arc<Engine>` and serves [`Server::execute`] from
//! any number of threads. Per query it:
//!
//! 1. **warms embeddings** — the raw plan's semantic operators name the
//!    (model, column) pairs the query will embed; their distinct values
//!    are submitted to the per-model [`EmbedBatcher`], which coalesces
//!    overlapping requests from concurrent queries into single batched
//!    cache fills (warming runs *before* optimization so the optimizer's
//!    sampling probes hit the cache too),
//! 2. **resolves the plan** — a [`PlanCache`] lookup on
//!    `LogicalPlan::fingerprint() ⊕ config_fingerprint(...)`, validated
//!    against the catalog version; a miss optimizes + lowers once and
//!    caches the re-executable operator tree,
//! 3. **admits** — [`CostGate::acquire`] on the optimizer's cost estimate
//!    bounds the total estimated cost executing at once,
//! 4. **executes** — the cached physical tree runs wrapped in
//!    [`InstrumentedExec`], so every execution accumulates per-operator
//!    rows/time into the server-level [`ExecMetrics`] report.

use crate::admission::{AdmissionStats, CostGate};
use crate::batcher::{BatcherConfig, BatcherStats, EmbedBatcher};
use crate::plan_cache::{config_fingerprint, BindingKey, CachedPlan, PlanCache, PlanCacheStats};
use crate::prepared::Prepared;
use crate::scan_queue::{GroupEntry, ScanQueue, ScanQueueConfig, ScanQueueStats};
use context_engine::{Engine, Query};
use cx_exec::logical::LogicalPlan;
use cx_exec::metrics::InstrumentedExec;
use cx_exec::{
    bind_physical, collect_table, find_shared_scan, ExecMetrics, PhysicalOperator, ScanSignature,
};
use cx_mqo::SharedScanExec;
use cx_optimizer::{shared_scan_cost, OptimizerConfig};
use cx_storage::{Error, Result, Scalar, Table};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving-layer knobs (the engine keeps its own [`EngineConfig`]).
///
/// [`EngineConfig`]: context_engine::EngineConfig
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Plans kept by the plan cache (LRU past this).
    pub plan_cache_capacity: usize,
    /// Total estimated cost (abstract ns) admitted to execute at once.
    /// Non-finite or ≤ 0 disables admission control.
    pub admission_capacity: f64,
    /// Embed-batcher flush size.
    pub batch_max: usize,
    /// Embed-batcher flush deadline.
    pub batch_linger: Duration,
    /// Cap on distinct values warmed per semantic column per query
    /// (best-effort warming; columns past the cap embed inside the
    /// operator as before).
    pub warm_limit: usize,
    /// Memoize each cached plan's result table and serve replays from it.
    /// Sound under the same invariant as the plan cache itself (the engine
    /// is deterministic; results are pinned to a catalog version and
    /// invalidated with the plan). Disable for workloads whose result
    /// tables are too large to keep `plan_cache_capacity` of them
    /// resident.
    pub cache_results: bool,
    /// Multi-query scan sharing (`cx_mqo`): queue queries whose plans
    /// sweep the same candidate panel and answer each group with one
    /// shared sweep. Results are bit-identical to solo execution; only
    /// the schedule changes.
    pub mqo: bool,
    /// Most queries merged into one shared sweep.
    pub scan_group_max: usize,
    /// How long a group's first query lingers for co-runners before
    /// sweeping alone. Bounds the latency cost of sharing: a query with
    /// no co-runners is delayed at most this long — and not at all when
    /// no other query is in flight server-wide. On a busy server the
    /// signal is deliberately coarse (another in-flight query *might*
    /// merge; its group key is unknowable before it finishes planning),
    /// so shareable first-sight queries pay up to one linger; size this
    /// accordingly (adaptive linger is a roadmap rung).
    pub scan_linger: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            plan_cache_capacity: 128,
            admission_capacity: 1e9,
            batch_max: 256,
            batch_linger: Duration::from_micros(500),
            warm_limit: 65_536,
            cache_results: true,
            mqo: true,
            scan_group_max: 16,
            scan_linger: Duration::from_millis(2),
        }
    }
}

/// The outcome of one served query.
pub struct ServeResult {
    /// Materialized result rows. `Arc`-shared with the plan's result memo
    /// so replays are zero-copy (`Arc<Table>` derefs to `Table`; clone the
    /// inner table only if you need to mutate it).
    pub table: Arc<Table>,
    /// Wall time inside the server (warm + plan + admit + execute).
    pub elapsed: Duration,
    /// Optimizer rule trace (from the cached plan on hits).
    pub rules_fired: Vec<String>,
    /// Optimizer row estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate (the admission weight used).
    pub estimated_cost: f64,
    /// Whether the plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// Whether the result came from the plan's result memo (execution and
    /// admission were skipped entirely).
    pub result_cache_hit: bool,
    /// Whether this query's panel sweep was answered by a shared
    /// multi-query scan (`cx_mqo`) rather than a solo sweep.
    pub shared_scan: bool,
}

/// One query's execution state as it flows through result memoization,
/// scan grouping, admission and execution. Ad-hoc queries execute the
/// cached tree itself and memoize at the plan level; prepared executions
/// run a parameter-bound copy and memoize per binding vector.
pub struct ExecUnit {
    /// The resolved plan-cache entry.
    pub cached: Arc<CachedPlan>,
    /// The tree to execute: the cached tree for ad-hoc queries, its
    /// parameter-bound copy for prepared executions.
    pub root: Arc<dyn PhysicalOperator>,
    /// The binding vector key for prepared executions (`None` = ad-hoc;
    /// the plan-level result memo applies instead).
    pub binding: Option<BindingKey>,
    /// Admission weight — the bound-literal cost estimate for prepared
    /// executions, the cached estimate otherwise.
    pub cost: f64,
    /// Whether plan resolution hit the plan cache.
    pub plan_cache_hit: bool,
    /// When the server started serving this query.
    pub started: Instant,
}

/// Aggregate server counters.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Queries served.
    pub queries: u64,
    /// Sessions opened.
    pub sessions: u64,
    /// Prepared-statement executions among `queries`.
    pub prepared_queries: u64,
    /// Queries answered from a cached plan's result memo (per-binding
    /// memo hits included).
    pub result_cache_hits: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Multi-query scan-sharing counters.
    pub scan_sharing: ScanQueueStats,
    /// Per-model embed-batcher counters, sorted by model name.
    pub batchers: Vec<(String, BatcherStats)>,
}

/// A concurrent query-serving layer over one shared [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    plan_cache: PlanCache,
    gate: CostGate,
    scan_queue: ScanQueue,
    batchers: RwLock<HashMap<String, Arc<EmbedBatcher>>>,
    metrics: ExecMetrics,
    queries: AtomicU64,
    sessions: AtomicU64,
    prepared_queries: AtomicU64,
    result_hits: AtomicU64,
    /// Queries currently inside `execute_with_config` — the scan queue's
    /// contention signal: a query that is provably alone skips the
    /// group-forming linger (nobody exists who could join it).
    in_flight: AtomicU64,
}

/// RAII decrement for [`Server::in_flight`].
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Server {
    /// Wraps `engine` for concurrent serving under `config`.
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Arc<Self> {
        Arc::new(Server {
            plan_cache: PlanCache::new(config.plan_cache_capacity),
            gate: CostGate::new(config.admission_capacity),
            scan_queue: ScanQueue::new(ScanQueueConfig {
                group_max: config.scan_group_max,
                linger: config.scan_linger,
            }),
            engine,
            config,
            batchers: RwLock::new(HashMap::new()),
            metrics: ExecMetrics::new(),
            queries: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            prepared_queries: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        })
    }

    /// The shared engine (register tables/models through it as usual; the
    /// catalog version check keeps cached plans honest).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Opens a session handle. Sessions are cheap tagged views over the
    /// shared server; one per client connection.
    pub fn session(self: &Arc<Self>) -> Session {
        let id = self.sessions.fetch_add(1, Ordering::Relaxed);
        Session {
            server: self.clone(),
            id,
            queries: AtomicU64::new(0),
            config: Mutex::new(None),
        }
    }

    /// Starts a query over table `name` (same surface as
    /// [`Engine::table`]).
    pub fn table(&self, name: &str) -> Result<Query> {
        self.engine.table(name)
    }

    /// Serves one query; safe to call from any number of threads.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        self.execute_with_config(query, self.engine.config().optimizer)
    }

    /// Serves one query under an explicit optimizer configuration (the
    /// per-session override path — see [`Session::set_recall_tolerance`]).
    /// The config fingerprint partitions the plan cache *and* the scan
    /// queue, so sessions with different configurations never share plans
    /// or sweeps.
    pub fn execute_with_config(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
    ) -> Result<ServeResult> {
        let start = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard(&self.in_flight);
        let cfg_fp = config_fingerprint(&opt_config);
        let exact = query.plan().fingerprint();
        let key = exact ^ cfg_fp;
        let version = self.engine.catalog_version();
        let (cached, hit) = match self.plan_cache.get(key, version) {
            Some(cached) => (cached, true),
            None => {
                let cached = self.build_plan(query, opt_config, exact, version)?;
                self.plan_cache.insert(key, cached.clone());
                (cached, false)
            }
        };

        let unit = ExecUnit {
            root: cached.physical.clone(),
            binding: None,
            cost: cached.estimated_cost,
            cached,
            plan_cache_hit: hit,
            started: start,
        };
        self.dispatch(unit, cfg_fp, false)
    }

    /// Executes a prepared statement under `params` (called through
    /// [`Prepared::execute`]). Plan resolution goes through the shared
    /// plan cache keyed by the template's *shape*, parameters are bound
    /// into a copy of the cached physical tree, admission is weighted by
    /// a cost estimate over the *bound* logical plan, and results are
    /// memoized per binding vector. Bound executions participate in
    /// multi-query scan sharing exactly like ad-hoc queries.
    pub(crate) fn execute_prepared(
        &self,
        prepared: &Prepared,
        params: &[Scalar],
    ) -> Result<ServeResult> {
        if params.len() != prepared.param_count() {
            return Err(Error::InvalidArgument(format!(
                "prepared statement expects {} parameter(s), got {}",
                prepared.param_count(),
                params.len()
            )));
        }
        let start = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard(&self.in_flight);
        let version = self.engine.catalog_version();
        let (cached, hit) = self.resolve_prepared(prepared, version)?;
        let binding = BindingKey::new(params);

        // Per-binding memo first: a replayed binding skips parameter
        // rebinding, cost estimation, grouping and admission outright.
        let unit = ExecUnit {
            root: cached.physical.clone(), // placeholder until bound below
            binding: Some(binding),
            cost: cached.estimated_cost,
            cached,
            plan_cache_hit: hit,
            started: start,
        };
        if let Some(result) = self.try_result_memo(&unit) {
            self.prepared_queries.fetch_add(1, Ordering::Relaxed);
            return Ok(result);
        }

        // Bind the physical tree (subtrees without parameters stay
        // shared) and re-cost the plan with the bound literals — the
        // template was optimized with placeholder slots and default
        // selectivities, but admission should weigh the real query.
        let root = bind_physical(&unit.cached.physical, params)?;
        let cost = if params.is_empty() {
            unit.cached.estimated_cost
        } else {
            self.engine
                .estimate_plan_cost(&unit.cached.optimized.bind_params(params)?, prepared.config())
        };
        let unit = ExecUnit { root, cost, ..unit };
        let result = self.dispatch(unit, config_fingerprint(&prepared.config()), true);
        if result.is_ok() {
            // Counted on success only, so the counter stays a subset of
            // `queries` even when bindings fail validation.
            self.prepared_queries.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Resolves a prepared statement's cached plan: a shape-keyed lookup
    /// validated against the template's exact fingerprint, rebuilding
    /// (and replacing) the entry on miss, staleness, or a shape
    /// collision with a different template.
    pub(crate) fn resolve_prepared(
        &self,
        prepared: &Prepared,
        version: u64,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        let key = prepared.cache_key();
        if let Some(cached) = self.plan_cache.get(key, version) {
            if cached.exact_fingerprint == prepared.exact_fingerprint() {
                return Ok((cached, true));
            }
        }
        let cached = self.build_plan(
            prepared.template(),
            prepared.config(),
            prepared.exact_fingerprint(),
            version,
        )?;
        self.plan_cache.insert(key, cached.clone());
        Ok((cached, false))
    }

    /// First sight of a plan: warms its embedding working set through the
    /// batcher *before* optimizing, so the optimizer's sampling probes
    /// and the execution both hit the cache — and so concurrent
    /// first-timers coalesce into shared batches — then optimizes and
    /// lowers. Plan-cache hits skip all of this: their working set was
    /// warmed when the plan was first built, and execution re-embeds
    /// strays through the cache anyway.
    fn build_plan(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
        exact_fingerprint: u64,
        version: u64,
    ) -> Result<Arc<CachedPlan>> {
        self.warm_embeddings(query.plan());
        let planned = self.engine.optimize_query_with(query, opt_config);
        let physical = self.engine.lower_plan_with(&planned.plan, opt_config)?;
        Ok(Arc::new(CachedPlan {
            shared_scan: find_shared_scan(&physical),
            physical,
            optimized: planned.plan,
            rules_fired: planned.rules_fired,
            estimated_rows: planned.estimated_rows,
            estimated_cost: planned.estimated_cost,
            catalog_version: version,
            exact_fingerprint,
            result: parking_lot::Mutex::new(None),
            bound_results: parking_lot::Mutex::new(HashMap::new()),
        }))
    }

    /// Routes a resolved execution unit: result memo, then multi-query
    /// scan sharing, then solo execution. `memo_checked` lets a caller
    /// that already probed the result memo (the prepared path checks it
    /// before paying for parameter binding) skip the second probe.
    fn dispatch(&self, unit: ExecUnit, cfg_fp: u64, memo_checked: bool) -> Result<ServeResult> {
        // Result memo: a replayed fingerprint (⊕ binding) over an
        // unchanged catalog is the same table — skip grouping, admission
        // and execution outright (memoized replays must never re-enter
        // the cost gate).
        if !memo_checked {
            if let Some(result) = self.try_result_memo(&unit) {
                return Ok(result);
            }
        }

        // Multi-query scan sharing: plans with a shareable sweep queue up
        // by group key — the scan signature's key ⊕ the config fingerprint
        // (configs change how subtrees lower) ⊕ the catalog version (never
        // group across registrations). Prepared executions re-discover the
        // scan on their *bound* tree; the signature's group key excludes
        // per-query probes, so bound sweeps join ad-hoc groups freely.
        if self.config.mqo {
            let shared = if unit.binding.is_some() {
                find_shared_scan(&unit.root)
            } else {
                unit.cached.shared_scan.clone()
            };
            if let Some((node, sig)) = shared {
                let group_key = sig.group_key()
                    ^ cfg_fp
                    ^ unit.cached.catalog_version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let entry = GroupEntry { unit, node, signature: sig };
                // A query with no other query in flight cannot be joined
                // by anyone: skip the linger and sweep immediately.
                let contended = self.in_flight.load(Ordering::Relaxed) > 1;
                return self
                    .scan_queue
                    .submit(group_key, entry, contended, |entries| self.drain_group(entries));
            }
        }

        self.execute_solo(&unit)
    }

    /// Serves `unit` from its result memo if enabled and populated — the
    /// plan-level memo for ad-hoc queries, the per-binding memo for
    /// prepared executions.
    fn try_result_memo(&self, unit: &ExecUnit) -> Option<ServeResult> {
        if !self.config.cache_results {
            return None;
        }
        let table = match &unit.binding {
            None => unit.cached.result.lock().clone()?,
            Some(binding) => unit.cached.bound_results.lock().get(binding).cloned()?,
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.result_hits.fetch_add(1, Ordering::Relaxed);
        Some(ServeResult {
            table,
            elapsed: unit.started.elapsed(),
            rules_fired: unit.cached.rules_fired.clone(),
            estimated_rows: unit.cached.estimated_rows,
            estimated_cost: unit.cost,
            plan_cache_hit: unit.plan_cache_hit,
            result_cache_hit: true,
            shared_scan: false,
        })
    }

    /// Solo path: full-cost admission, then execution.
    fn execute_solo(&self, unit: &ExecUnit) -> Result<ServeResult> {
        let _permit = self.gate.acquire(unit.cost);
        self.run_unit(unit, false)
    }

    /// Executes the unit's tree (instrumented), memoizes, and assembles
    /// the result. Admission is the caller's business: solo queries
    /// acquire their own permit, shared groups hold one group permit
    /// across all members.
    fn run_unit(&self, unit: &ExecUnit, shared_scan: bool) -> Result<ServeResult> {
        let root = InstrumentedExec::new(unit.root.clone(), &self.metrics);
        let table = Arc::new(collect_table(&root)?);
        if self.config.cache_results {
            match &unit.binding {
                None => *unit.cached.result.lock() = Some(table.clone()),
                Some(binding) => unit.cached.memoize_binding(binding, table.clone()),
            }
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(ServeResult {
            table,
            elapsed: unit.started.elapsed(),
            rules_fired: unit.cached.rules_fired.clone(),
            estimated_rows: unit.cached.estimated_rows,
            estimated_cost: unit.cost,
            plan_cache_hit: unit.plan_cache_hit,
            result_cache_hit: false,
            shared_scan,
        })
    }

    /// Drains one scan-queue group: one shared sweep, then every member's
    /// own epilogue. Runs on the group leader's thread.
    fn drain_group(&self, entries: Vec<GroupEntry>) -> Vec<Result<ServeResult>> {
        let k = entries.len();
        if k == 1 {
            // Nobody joined inside the linger window: plain solo
            // execution, no sweep overhead beyond the wait itself.
            return vec![self.execute_solo(&entries[0].unit)];
        }

        // Build the shared plan. Any failure here (unknown model, a
        // malformed group) falls back to solo execution per member —
        // sharing is an optimization, never a correctness dependency.
        let shared = self
            .engine
            .embedding_cache(&entries[0].signature.model)
            .ok_or_else(|| {
                cx_storage::Error::InvalidArgument(format!(
                    "unknown model: {}",
                    entries[0].signature.model
                ))
            })
            .and_then(|cache| {
                let members: Vec<(Arc<dyn PhysicalOperator>, ScanSignature)> = entries
                    .iter()
                    .map(|e| (e.node.clone(), e.signature.clone()))
                    .collect();
                SharedScanExec::from_group(&members, cache)
            });

        // One admission permit covers the whole group; each member is
        // charged its shared weight (sweep split k ways, epilogue whole),
        // so coalesced queries admit cheaper than k solo queries would.
        let weight: f64 = entries
            .iter()
            .map(|e| shared_scan_cost(e.unit.cost, k))
            .sum();
        let permit = self.gate.acquire(weight);

        let states = shared.and_then(|shared| {
            // The sweep is consumed through its outcome, not its chunk
            // stream (materializing the pair table just to discard it
            // would cost O(hits) clones); record it into the operator
            // metrics by hand so reports still show SharedScan rows/time.
            let sweep_started = Instant::now();
            let outcome = shared.sweep()?;
            self.metrics.handle(&shared.name()).record(
                outcome.emitted_pairs(shared.min_threshold()),
                1,
                sweep_started.elapsed(),
            );
            self.scan_queue
                .record_sweep(outcome.stats.panel_rows_saved, outcome.stats.pairs_saved);
            shared.member_states()
        });
        let states = match states {
            Ok(states) => states,
            Err(_) => {
                // Shared sweep failed: fall back to solo execution. The
                // group permit was sized for a *shared* sweep; solo runs
                // do full work, so hand it back and let every member
                // re-admit at its full cost.
                self.scan_queue.record_fallback();
                drop(permit);
                return entries.iter().map(|e| self.execute_solo(&e.unit)).collect();
            }
        };

        entries
            .iter()
            .zip(states)
            .map(|(e, state)| {
                // A member whose result got memoized since it queued (an
                // identical query in this very group, say) skips
                // execution — memo hits never re-execute.
                if let Some(result) = self.try_result_memo(&e.unit) {
                    return Ok(result);
                }
                // Injection failing (operator refuses the state) is fine:
                // the member simply runs its solo scan inside the same
                // execution.
                e.node.inject_shared_scan(state);
                self.run_unit(&e.unit, true)
            })
            .collect()
    }

    /// The batcher for `model` (created on first use), or `None` for
    /// models the engine does not know.
    pub fn batcher(&self, model: &str) -> Option<Arc<EmbedBatcher>> {
        if let Some(b) = self.batchers.read().get(model) {
            return Some(b.clone());
        }
        let cache = self.engine.embedding_cache(model)?;
        let mut map = self.batchers.write();
        Some(
            map.entry(model.to_string())
                .or_insert_with(|| {
                    Arc::new(EmbedBatcher::new(
                        cache,
                        BatcherConfig {
                            max_batch: self.config.batch_max,
                            linger: self.config.batch_linger,
                        },
                    ))
                })
                .clone(),
        )
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// Multi-query scan-sharing counters.
    pub fn scan_sharing_stats(&self) -> ScanQueueStats {
        self.scan_queue.stats()
    }

    /// Full counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let mut batchers: Vec<(String, BatcherStats)> = self
            .batchers
            .read()
            .iter()
            .map(|(name, b)| (name.clone(), b.stats()))
            .collect();
        batchers.sort_by(|a, b| a.0.cmp(&b.0));
        ServerStats {
            queries: self.queries.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            prepared_queries: self.prepared_queries.load(Ordering::Relaxed),
            result_cache_hits: self.result_hits.load(Ordering::Relaxed),
            plan_cache: self.plan_cache.stats(),
            admission: self.gate.stats(),
            scan_sharing: self.scan_queue.stats(),
            batchers,
        }
    }

    /// Human-readable server report: serving counters plus the aggregated
    /// per-operator execution metrics.
    pub fn report(&self) -> String {
        let s = self.stats();
        let mut out = String::new();
        out.push_str(&format!(
            "queries: {} across {} sessions ({} prepared)\n",
            s.queries, s.sessions, s.prepared_queries
        ));
        out.push_str(&format!("result memo: {} hits\n", s.result_cache_hits));
        out.push_str(&format!(
            "plan cache: {} hits / {} misses (hit rate {:.1}%), {} cached, {} invalidated, {} evicted\n",
            s.plan_cache.hits,
            s.plan_cache.misses,
            100.0 * s.plan_cache.hit_rate(),
            s.plan_cache.len,
            s.plan_cache.invalidations,
            s.plan_cache.evictions,
        ));
        out.push_str(&format!(
            "admission: {} admitted, {} waited (capacity {:.0}, in use {:.0})\n",
            s.admission.admitted, s.admission.waited, self.gate.capacity(), s.admission.in_use,
        ));
        out.push_str(&format!(
            "scan sharing: {} queries coalesced into {} shared groups (max group {}), \
             {} panel rows saved, {} pairs deduped, {} fallbacks\n",
            s.scan_sharing.shared_queries,
            s.scan_sharing.shared_groups,
            s.scan_sharing.max_group,
            s.scan_sharing.panel_rows_saved,
            s.scan_sharing.pairs_saved,
            s.scan_sharing.sweep_fallbacks,
        ));
        for (model, b) in &s.batchers {
            out.push_str(&format!(
                "embed batcher [{model}]: {} batches / {} texts (max batch {}, max submitters {}), \
                 {} coalesced texts, {} already cached\n",
                b.batches,
                b.batched_texts,
                b.max_batch_size,
                b.max_batch_submitters,
                b.texts_coalesced,
                b.texts_already_cached,
            ));
        }
        out.push_str("operator metrics:\n");
        out.push_str(&self.metrics.report());
        out
    }

    /// Submits every semantic operator's embedding working set to the
    /// per-model batchers and blocks until the cache holds it. Best-effort
    /// and purely a performance hint: anything missed (renamed columns,
    /// post-filter subsets, capped columns) embeds inside the operator
    /// exactly as before.
    fn warm_embeddings(&self, plan: &LogicalPlan) {
        let mut requests: BTreeMap<String, Vec<String>> = BTreeMap::new();
        collect_warm_requests(plan, self, &mut requests);
        for (model, texts) in requests {
            if let Some(batcher) = self.batcher(&model) {
                batcher.warm(&texts);
            }
        }
    }

    /// Distinct string values of `column` across the base tables scanned
    /// under `plan` that the `model`'s cache does not already hold — a
    /// (superset) estimate of what a semantic operator on `column` will
    /// still need to embed. Filtering through
    /// [`cx_embed::EmbeddingCache::contains`] at collection time keeps a
    /// warm server from re-cloning a table's whole distinct set on every
    /// plan-cache miss just to learn it was all cached. `warm_limit`
    /// budgets each call separately (`cap` is absolute: the `out` length
    /// this call may grow to), so one huge column cannot consume a later
    /// column's budget.
    fn column_values(&self, plan: &LogicalPlan, column: &str, model: &str, out: &mut Vec<String>) {
        let Some(cache) = self.engine.embedding_cache(model) else {
            return;
        };
        let cap = out.len().saturating_add(self.config.warm_limit);
        self.column_values_capped(plan, column, &cache, cap, out);
    }

    fn column_values_capped(
        &self,
        plan: &LogicalPlan,
        column: &str,
        cache: &cx_embed::EmbeddingCache,
        cap: usize,
        out: &mut Vec<String>,
    ) {
        if let LogicalPlan::Scan { source, schema } = plan {
            let is_utf8 = schema
                .field(column)
                .map(|f| f.data_type == cx_storage::DataType::Utf8)
                .unwrap_or(false);
            if is_utf8 {
                if let Some(table) = self.engine.catalog().table(source) {
                    if let Ok(col) = table.column_by_name(column) {
                        if let Ok(values) = col.utf8_values() {
                            let mut seen: HashSet<&str> = HashSet::new();
                            for v in values {
                                if out.len() >= cap {
                                    break;
                                }
                                if seen.insert(v.as_str()) && !cache.contains(v) {
                                    out.push(v.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        for child in plan.children() {
            if out.len() >= cap {
                break;
            }
            self.column_values_capped(child, column, cache, cap, out);
        }
    }
}

/// Walks `plan` collecting, per model, the texts its semantic operators
/// will embed.
fn collect_warm_requests(
    plan: &LogicalPlan,
    server: &Server,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    match plan {
        LogicalPlan::SemanticFilter { input, column, target, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            // A parameterized probe has no text to warm; the bound value
            // embeds through the cache at execute time.
            if let Some(text) = target.text() {
                dst.push(text.to_string());
            }
            server.column_values(input, column, model, dst);
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            let dst = out.entry(spec.model.clone()).or_default();
            server.column_values(left, &spec.left_column, &spec.model, dst);
            server.column_values(right, &spec.right_column, &spec.model, dst);
        }
        LogicalPlan::SemanticGroupBy { input, column, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            server.column_values(input, column, model, dst);
        }
        _ => {}
    }
    for child in plan.children() {
        collect_warm_requests(child, server, out);
    }
}

/// A per-client handle onto a shared [`Server`].
pub struct Session {
    server: Arc<Server>,
    id: u64,
    queries: AtomicU64,
    /// Per-session optimizer override (`None` = the engine's config).
    config: Mutex<Option<OptimizerConfig>>,
}

impl Session {
    /// This session's id (assigned in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Starts a query over table `name`.
    pub fn table(&self, name: &str) -> Result<Query> {
        self.server.table(name)
    }

    /// The optimizer configuration this session's queries run under.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.config
            .lock()
            .unwrap_or(self.server.engine().config().optimizer)
    }

    /// Lets this session trade recall for latency without touching other
    /// sessions or the engine: raises (or clears, with `0.0`) the
    /// session's quantization `recall_tolerance`. The override flows
    /// into the plan-cache key through the config fingerprint, so
    /// sessions at different tolerances partition the cache naturally —
    /// no forking, no cross-talk — and likewise never share a scan
    /// group with sessions at other configurations.
    pub fn set_recall_tolerance(&self, tolerance: f64) {
        let mut config = self.optimizer_config();
        config.recall_tolerance = tolerance;
        *self.config.lock() = Some(config);
    }

    /// Replaces this session's whole optimizer configuration.
    pub fn set_optimizer_config(&self, config: OptimizerConfig) {
        *self.config.lock() = Some(config);
    }

    /// Drops any per-session override, returning to the engine's config.
    pub fn reset_optimizer_config(&self) {
        *self.config.lock() = None;
    }

    /// Serves one query through the shared server, under this session's
    /// optimizer configuration.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.server.execute_with_config(query, self.optimizer_config())
    }

    /// Prepares a query template for repeated execution with different
    /// parameter bindings: optimizes and lowers it once (the plan enters
    /// the server's plan cache keyed by the template's *shape*), and
    /// returns a handle whose [`Prepared::execute`] binds values into the
    /// cached physical plan — no re-optimization, no re-lowering, results
    /// memoized per binding vector.
    ///
    /// The handle snapshots this session's optimizer configuration;
    /// re-prepare after [`Session::set_optimizer_config`] to pick up a
    /// new one. Stale handles are safe: a catalog registration after
    /// `prepare` makes the next `execute` transparently re-optimize.
    ///
    /// ```
    /// use context_engine::{Engine, EngineConfig};
    /// use cx_embed::HashNGramModel;
    /// use cx_serve::{ServeConfig, Server};
    /// use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(Engine::new(EngineConfig::default()));
    /// engine.register_model(Arc::new(HashNGramModel::new(42)));
    /// let names = Table::from_columns(
    ///     Schema::new(vec![Field::new("name", DataType::Utf8)]),
    ///     vec![Column::from_strings(["boots", "mug", "boots"])],
    /// ).unwrap();
    /// engine.register_table("products", names).unwrap();
    ///
    /// let server = Server::new(engine, ServeConfig::default());
    /// let session = server.session();
    /// let template = session.table("products").unwrap()
    ///     .semantic_filter_param("name", 0, "hash-ngram", 0.99);
    /// let prepared = session.prepare(&template).unwrap();
    /// let boots = prepared.execute(&[Scalar::from("boots")]).unwrap();
    /// let mugs = prepared.execute(&[Scalar::from("mug")]).unwrap();
    /// assert_eq!(boots.table.num_rows(), 2);
    /// assert_eq!(mugs.table.num_rows(), 1);
    /// // The second execution reused the cached plan shape.
    /// assert!(mugs.plan_cache_hit);
    /// ```
    pub fn prepare(&self, query: &Query) -> Result<Prepared> {
        Prepared::new(self.server.clone(), query.clone(), self.optimizer_config())
    }

    /// Queries served through this session.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

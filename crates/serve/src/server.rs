//! The concurrent query server: one shared engine, many sessions.
//!
//! [`Server`] wraps an `Arc<Engine>` and serves [`Server::execute`] from
//! any number of threads. Per query it:
//!
//! 1. **warms embeddings** — the raw plan's semantic operators name the
//!    (model, column) pairs the query will embed; their distinct values
//!    are submitted to the per-model [`EmbedBatcher`], which coalesces
//!    overlapping requests from concurrent queries into single batched
//!    cache fills (warming runs *before* optimization so the optimizer's
//!    sampling probes hit the cache too),
//! 2. **resolves the plan** — a [`PlanCache`] lookup on
//!    `LogicalPlan::fingerprint() ⊕ config_fingerprint(...)`, validated
//!    against the catalog version; a miss optimizes + lowers once and
//!    caches the re-executable operator tree,
//! 3. **admits** — [`CostGate::acquire`] on the optimizer's cost estimate
//!    bounds the total estimated cost executing at once,
//! 4. **executes** — the cached physical tree runs wrapped in
//!    [`InstrumentedExec`], so every execution accumulates per-operator
//!    rows/time into the server-level [`ExecMetrics`] report.

use crate::admission::{AdmissionStats, CostGate};
use crate::batcher::{BatcherConfig, BatcherStats, EmbedBatcher};
use crate::plan_cache::{config_fingerprint, CachedPlan, PlanCache, PlanCacheStats};
use context_engine::{Engine, Query};
use cx_exec::logical::LogicalPlan;
use cx_exec::metrics::InstrumentedExec;
use cx_exec::{collect_table, ExecMetrics};
use cx_storage::{Result, Table};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving-layer knobs (the engine keeps its own [`EngineConfig`]).
///
/// [`EngineConfig`]: context_engine::EngineConfig
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Plans kept by the plan cache (LRU past this).
    pub plan_cache_capacity: usize,
    /// Total estimated cost (abstract ns) admitted to execute at once.
    /// Non-finite or ≤ 0 disables admission control.
    pub admission_capacity: f64,
    /// Embed-batcher flush size.
    pub batch_max: usize,
    /// Embed-batcher flush deadline.
    pub batch_linger: Duration,
    /// Cap on distinct values warmed per semantic column per query
    /// (best-effort warming; columns past the cap embed inside the
    /// operator as before).
    pub warm_limit: usize,
    /// Memoize each cached plan's result table and serve replays from it.
    /// Sound under the same invariant as the plan cache itself (the engine
    /// is deterministic; results are pinned to a catalog version and
    /// invalidated with the plan). Disable for workloads whose result
    /// tables are too large to keep `plan_cache_capacity` of them
    /// resident.
    pub cache_results: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            plan_cache_capacity: 128,
            admission_capacity: 1e9,
            batch_max: 256,
            batch_linger: Duration::from_micros(500),
            warm_limit: 65_536,
            cache_results: true,
        }
    }
}

/// The outcome of one served query.
pub struct ServeResult {
    /// Materialized result rows. `Arc`-shared with the plan's result memo
    /// so replays are zero-copy (`Arc<Table>` derefs to `Table`; clone the
    /// inner table only if you need to mutate it).
    pub table: Arc<Table>,
    /// Wall time inside the server (warm + plan + admit + execute).
    pub elapsed: Duration,
    /// Optimizer rule trace (from the cached plan on hits).
    pub rules_fired: Vec<String>,
    /// Optimizer row estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate (the admission weight used).
    pub estimated_cost: f64,
    /// Whether the plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// Whether the result came from the plan's result memo (execution and
    /// admission were skipped entirely).
    pub result_cache_hit: bool,
}

/// Aggregate server counters.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Queries served.
    pub queries: u64,
    /// Sessions opened.
    pub sessions: u64,
    /// Queries answered from a cached plan's result memo.
    pub result_cache_hits: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Per-model embed-batcher counters, sorted by model name.
    pub batchers: Vec<(String, BatcherStats)>,
}

/// A concurrent query-serving layer over one shared [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    plan_cache: PlanCache,
    gate: CostGate,
    batchers: RwLock<HashMap<String, Arc<EmbedBatcher>>>,
    metrics: ExecMetrics,
    queries: AtomicU64,
    sessions: AtomicU64,
    result_hits: AtomicU64,
}

impl Server {
    /// Wraps `engine` for concurrent serving under `config`.
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Arc<Self> {
        Arc::new(Server {
            plan_cache: PlanCache::new(config.plan_cache_capacity),
            gate: CostGate::new(config.admission_capacity),
            engine,
            config,
            batchers: RwLock::new(HashMap::new()),
            metrics: ExecMetrics::new(),
            queries: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
        })
    }

    /// The shared engine (register tables/models through it as usual; the
    /// catalog version check keeps cached plans honest).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Opens a session handle. Sessions are cheap tagged views over the
    /// shared server; one per client connection.
    pub fn session(self: &Arc<Self>) -> Session {
        let id = self.sessions.fetch_add(1, Ordering::Relaxed);
        Session { server: self.clone(), id, queries: AtomicU64::new(0) }
    }

    /// Starts a query over table `name` (same surface as
    /// [`Engine::table`]).
    pub fn table(&self, name: &str) -> Result<Query> {
        self.engine.table(name)
    }

    /// Serves one query; safe to call from any number of threads.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        let start = Instant::now();
        let key = query.plan().fingerprint()
            ^ config_fingerprint(&self.engine.config().optimizer);
        let version = self.engine.catalog_version();
        let (cached, hit) = match self.plan_cache.get(key, version) {
            Some(cached) => (cached, true),
            None => {
                // First sight of this plan shape: warm its embedding
                // working set through the batcher *before* optimizing, so
                // the optimizer's sampling probes and the execution both
                // hit the cache — and so concurrent first-timers coalesce
                // into shared batches. Plan-cache hits skip this: their
                // working set was warmed when the plan was first built,
                // and execution re-embeds strays through the cache anyway.
                self.warm_embeddings(query.plan());
                let planned = self.engine.optimize_query(query);
                let physical = self.engine.lower_plan(&planned.plan)?;
                let cached = Arc::new(CachedPlan {
                    physical,
                    optimized: planned.plan,
                    rules_fired: planned.rules_fired,
                    estimated_rows: planned.estimated_rows,
                    estimated_cost: planned.estimated_cost,
                    catalog_version: version,
                    result: parking_lot::Mutex::new(None),
                });
                self.plan_cache.insert(key, cached.clone());
                (cached, false)
            }
        };

        // Result memo: a replayed fingerprint over an unchanged catalog is
        // the same table — skip admission and execution outright.
        if self.config.cache_results {
            let memo = cached.result.lock().clone();
            if let Some(table) = memo {
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(ServeResult {
                    table,
                    elapsed: start.elapsed(),
                    rules_fired: cached.rules_fired.clone(),
                    estimated_rows: cached.estimated_rows,
                    estimated_cost: cached.estimated_cost,
                    plan_cache_hit: hit,
                    result_cache_hit: true,
                });
            }
        }

        let _permit = self.gate.acquire(cached.estimated_cost);
        let root = InstrumentedExec::new(cached.physical.clone(), &self.metrics);
        let table = Arc::new(collect_table(&root)?);
        if self.config.cache_results {
            *cached.result.lock() = Some(table.clone());
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(ServeResult {
            table,
            elapsed: start.elapsed(),
            rules_fired: cached.rules_fired.clone(),
            estimated_rows: cached.estimated_rows,
            estimated_cost: cached.estimated_cost,
            plan_cache_hit: hit,
            result_cache_hit: false,
        })
    }

    /// The batcher for `model` (created on first use), or `None` for
    /// models the engine does not know.
    pub fn batcher(&self, model: &str) -> Option<Arc<EmbedBatcher>> {
        if let Some(b) = self.batchers.read().get(model) {
            return Some(b.clone());
        }
        let cache = self.engine.embedding_cache(model)?;
        let mut map = self.batchers.write();
        Some(
            map.entry(model.to_string())
                .or_insert_with(|| {
                    Arc::new(EmbedBatcher::new(
                        cache,
                        BatcherConfig {
                            max_batch: self.config.batch_max,
                            linger: self.config.batch_linger,
                        },
                    ))
                })
                .clone(),
        )
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// Full counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let mut batchers: Vec<(String, BatcherStats)> = self
            .batchers
            .read()
            .iter()
            .map(|(name, b)| (name.clone(), b.stats()))
            .collect();
        batchers.sort_by(|a, b| a.0.cmp(&b.0));
        ServerStats {
            queries: self.queries.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            result_cache_hits: self.result_hits.load(Ordering::Relaxed),
            plan_cache: self.plan_cache.stats(),
            admission: self.gate.stats(),
            batchers,
        }
    }

    /// Human-readable server report: serving counters plus the aggregated
    /// per-operator execution metrics.
    pub fn report(&self) -> String {
        let s = self.stats();
        let mut out = String::new();
        out.push_str(&format!(
            "queries: {} across {} sessions\n",
            s.queries, s.sessions
        ));
        out.push_str(&format!("result memo: {} hits\n", s.result_cache_hits));
        out.push_str(&format!(
            "plan cache: {} hits / {} misses (hit rate {:.1}%), {} cached, {} invalidated, {} evicted\n",
            s.plan_cache.hits,
            s.plan_cache.misses,
            100.0 * s.plan_cache.hit_rate(),
            s.plan_cache.len,
            s.plan_cache.invalidations,
            s.plan_cache.evictions,
        ));
        out.push_str(&format!(
            "admission: {} admitted, {} waited (capacity {:.0}, in use {:.0})\n",
            s.admission.admitted, s.admission.waited, self.gate.capacity(), s.admission.in_use,
        ));
        for (model, b) in &s.batchers {
            out.push_str(&format!(
                "embed batcher [{model}]: {} batches / {} texts (max batch {}, max submitters {}), \
                 {} coalesced texts, {} already cached\n",
                b.batches,
                b.batched_texts,
                b.max_batch_size,
                b.max_batch_submitters,
                b.texts_coalesced,
                b.texts_already_cached,
            ));
        }
        out.push_str("operator metrics:\n");
        out.push_str(&self.metrics.report());
        out
    }

    /// Submits every semantic operator's embedding working set to the
    /// per-model batchers and blocks until the cache holds it. Best-effort
    /// and purely a performance hint: anything missed (renamed columns,
    /// post-filter subsets, capped columns) embeds inside the operator
    /// exactly as before.
    fn warm_embeddings(&self, plan: &LogicalPlan) {
        let mut requests: BTreeMap<String, Vec<String>> = BTreeMap::new();
        collect_warm_requests(plan, self, &mut requests);
        for (model, texts) in requests {
            if let Some(batcher) = self.batcher(&model) {
                batcher.warm(&texts);
            }
        }
    }

    /// Distinct string values of `column` across the base tables scanned
    /// under `plan` — a (superset) estimate of what a semantic operator on
    /// `column` will embed. `warm_limit` budgets each call separately
    /// (`cap` is absolute: the `out` length this call may grow to), so one
    /// huge column cannot consume a later column's budget.
    fn column_values(&self, plan: &LogicalPlan, column: &str, out: &mut Vec<String>) {
        let cap = out.len().saturating_add(self.config.warm_limit);
        self.column_values_capped(plan, column, cap, out);
    }

    fn column_values_capped(
        &self,
        plan: &LogicalPlan,
        column: &str,
        cap: usize,
        out: &mut Vec<String>,
    ) {
        if let LogicalPlan::Scan { source, schema } = plan {
            let is_utf8 = schema
                .field(column)
                .map(|f| f.data_type == cx_storage::DataType::Utf8)
                .unwrap_or(false);
            if is_utf8 {
                if let Some(table) = self.engine.catalog().table(source) {
                    if let Ok(col) = table.column_by_name(column) {
                        if let Ok(values) = col.utf8_values() {
                            let mut seen: HashSet<&str> = HashSet::new();
                            for v in values {
                                if out.len() >= cap {
                                    break;
                                }
                                if seen.insert(v.as_str()) {
                                    out.push(v.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        for child in plan.children() {
            if out.len() >= cap {
                break;
            }
            self.column_values_capped(child, column, cap, out);
        }
    }
}

/// Walks `plan` collecting, per model, the texts its semantic operators
/// will embed.
fn collect_warm_requests(
    plan: &LogicalPlan,
    server: &Server,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    match plan {
        LogicalPlan::SemanticFilter { input, column, target, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            dst.push(target.clone());
            server.column_values(input, column, dst);
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            let dst = out.entry(spec.model.clone()).or_default();
            server.column_values(left, &spec.left_column, dst);
            server.column_values(right, &spec.right_column, dst);
        }
        LogicalPlan::SemanticGroupBy { input, column, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            server.column_values(input, column, dst);
        }
        _ => {}
    }
    for child in plan.children() {
        collect_warm_requests(child, server, out);
    }
}

/// A per-client handle onto a shared [`Server`].
pub struct Session {
    server: Arc<Server>,
    id: u64,
    queries: AtomicU64,
}

impl Session {
    /// This session's id (assigned in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Starts a query over table `name`.
    pub fn table(&self, name: &str) -> Result<Query> {
        self.server.table(name)
    }

    /// Serves one query through the shared server.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.server.execute(query)
    }

    /// Queries served through this session.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

//! The concurrent query server: one shared engine, many sessions.
//!
//! [`Server`] wraps an `Arc<Engine>` and serves [`Server::execute`] from
//! any number of threads. Per query it:
//!
//! 1. **warms embeddings** — the raw plan's semantic operators name the
//!    (model, column) pairs the query will embed; their distinct values
//!    are submitted to the per-model [`EmbedBatcher`], which coalesces
//!    overlapping requests from concurrent queries into single batched
//!    cache fills (warming runs *before* optimization so the optimizer's
//!    sampling probes hit the cache too),
//! 2. **resolves the plan** — a [`PlanCache`] lookup on
//!    `LogicalPlan::fingerprint() ⊕ config_fingerprint(...)`, validated
//!    against the catalog version; a miss optimizes + lowers once and
//!    caches the re-executable operator tree,
//! 3. **admits** — [`CostGate::acquire_ctx`] on the optimizer's cost
//!    estimate bounds the total estimated cost executing at once, sheds
//!    with [`QueryError::QueueFull`] past [`ServeConfig::max_queued`]
//!    waiters, and lets queued queries honor their deadlines,
//! 4. **executes** — the cached physical tree runs wrapped in
//!    [`InstrumentedExec`] under the query's [`QueryContext`] scope, so
//!    deadline/cancellation/budget checks reach every chunk and kernel
//!    tile, and per-operator rows/time accumulate into the server-level
//!    [`ExecMetrics`] report.
//!
//! # Query lifecycle
//!
//! Every query runs under a [`QueryContext`] — deadline, cooperative
//! cancellation token, memory budget — built from [`QueryOptions`] (per
//! query) over [`ServeConfig`] defaults. Failures surface as typed
//! [`QueryError`]s. Policy on top of the mechanism:
//!
//! * a **deadline-expired member of a shared-scan group exits alone** —
//!   its epilogue is skipped and it gets [`QueryError::DeadlineExceeded`];
//!   the sweep and the surviving members are untouched (their results
//!   stay bit-identical to solo execution);
//! * a **transient failure retries once, solo** — injected faults,
//!   contained panics, and failed group drains map to
//!   [`QueryError::Transient`]; the retry skips scan sharing and pays
//!   full solo admission cost ([`ServeConfig::retry_transient`]);
//! * a **panic is contained at the query boundary** — the server
//!   converts it to `Transient` instead of unwinding the caller's
//!   thread, and keeps serving.
//!
//! A deterministic chaos harness ([`crate::faults`]) can be installed
//! with [`Server::set_fault_plan`] to strike these paths on purpose.

use crate::admission::{AdmissionStats, CostGate};
use crate::batcher::{BatcherConfig, BatcherStats, EmbedBatcher};
use crate::faults::{FaultPlan, FaultSite, FaultStats};
use crate::plan_cache::{config_fingerprint, BindingKey, CachedPlan, PlanCache, PlanCacheStats};
use crate::prepared::Prepared;
use crate::scan_queue::{GroupEntry, ScanQueue, ScanQueueConfig, ScanQueueStats};
use context_engine::{Engine, Query};
use cx_exec::logical::LogicalPlan;
use cx_exec::metrics::InstrumentedExec;
use cx_exec::{
    bind_physical, collect_table, find_shared_scan, ExecMetrics, PhysicalOperator, ScanSignature,
};
use cx_mqo::SharedScanExec;
use crate::watchdog::{WatchdogConfig, WatchdogHandle};
use cx_obs::{
    Histogram, IncidentLog, MetricsSnapshot, ProfileSpan, ProfilerSession, QueryProfile,
    QueryTrace, TraceRing, TracingSession,
};
use cx_optimizer::{shared_scan_cost, OptimizerConfig};
use cx_storage::{
    CancelToken, Error, MemoryBudget, QueryContext, QueryError, Result, Scalar, Table,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving-layer knobs (the engine keeps its own [`EngineConfig`]).
///
/// [`EngineConfig`]: context_engine::EngineConfig
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Plans kept by the plan cache (LRU past this).
    pub plan_cache_capacity: usize,
    /// Total estimated cost (abstract ns) admitted to execute at once.
    /// Non-finite or ≤ 0 disables admission control.
    pub admission_capacity: f64,
    /// Embed-batcher flush size.
    pub batch_max: usize,
    /// Embed-batcher flush deadline.
    pub batch_linger: Duration,
    /// Cap on distinct values warmed per semantic column per query
    /// (best-effort warming; columns past the cap embed inside the
    /// operator as before).
    pub warm_limit: usize,
    /// Memoize each cached plan's result table and serve replays from it.
    /// Sound under the same invariant as the plan cache itself (the engine
    /// is deterministic; results are pinned to a catalog version and
    /// invalidated with the plan). Disable for workloads whose result
    /// tables are too large to keep `plan_cache_capacity` of them
    /// resident.
    pub cache_results: bool,
    /// Multi-query scan sharing (`cx_mqo`): queue queries whose plans
    /// sweep the same candidate panel and answer each group with one
    /// shared sweep. Results are bit-identical to solo execution; only
    /// the schedule changes.
    pub mqo: bool,
    /// Most queries merged into one shared sweep.
    pub scan_group_max: usize,
    /// How long a group's first query lingers for co-runners before
    /// sweeping alone. Bounds the latency cost of sharing: a query with
    /// no co-runners is delayed at most this long — and not at all when
    /// no other query is in flight server-wide. On a busy server the
    /// signal is deliberately coarse (another in-flight query *might*
    /// merge; its group key is unknowable before it finishes planning),
    /// so shareable first-sight queries pay up to one linger; size this
    /// accordingly (adaptive linger is a roadmap rung).
    pub scan_linger: Duration,
    /// Default per-query deadline, applied when [`QueryOptions::timeout`]
    /// is unset (`None` = no deadline). A query past its deadline stops
    /// at the next chunk/tile boundary with
    /// [`QueryError::DeadlineExceeded`].
    pub default_timeout: Option<Duration>,
    /// Default per-query memory budget in bytes, applied when
    /// [`QueryOptions::memory_budget`] is unset (0 = unlimited). Charged
    /// by arena panels and materialized chunks; a query over budget
    /// stops at the next cooperative check with
    /// [`QueryError::MemoryBudget`].
    pub default_memory_budget: u64,
    /// Most queries allowed to *wait* at the admission gate. One more
    /// would-block query is refused immediately with
    /// [`QueryError::QueueFull`] instead of queueing (0 = unbounded).
    pub max_queued: usize,
    /// Retry a transiently failed query once, at full solo cost (no scan
    /// sharing on the retry). Covers [`QueryError::Transient`] from
    /// injected faults, contained panics, and failed group drains.
    pub retry_transient: bool,
    /// Record a per-query [`QueryTrace`] of lifecycle spans (plan cache,
    /// embed warm, queue waits, shared sweeps, epilogues) for every
    /// query. Off by default: with tracing off every instrumentation
    /// site costs one relaxed atomic load. Latency histograms are always
    /// on regardless (they are counter-cheap).
    pub tracing: bool,
    /// Finished traces retained in the in-memory ring
    /// ([`Server::traces`] / [`Server::last_trace`]); 0 disables
    /// retention. Only meaningful with [`ServeConfig::tracing`] on.
    pub trace_ring_capacity: usize,
    /// Queries slower than this get their rendered span tree appended to
    /// the slow-query log ([`Server::slow_queries`], bounded). `None`
    /// (the default) disables the slow log. Only meaningful with
    /// [`ServeConfig::tracing`] on.
    pub slow_query_threshold: Option<Duration>,
    /// Per-query resource profiles: thread CPU time, allocation
    /// count/bytes (through [`cx_obs::CountingAlloc`], when installed as
    /// the global allocator), kernel pairs/tiles, and bytes charged
    /// against the memory budget — attached to traces, surfaced in
    /// `cx.queries`, and aggregated into [`Server::profile_totals`]. Off
    /// by default: with profiling off every hook costs one relaxed
    /// atomic load.
    pub profiling: bool,
    /// Self-watchdog (`None` = no background thread). When set, a
    /// sampler wakes every [`WatchdogConfig::interval`], diffs the
    /// latency histogram and serving counters against its previous tick,
    /// and appends structured incidents (p99 regressions, queue
    /// saturation, shed/fault bursts) to the bounded log behind
    /// `cx.incidents`.
    pub watchdog: Option<WatchdogConfig>,
    /// Auto-parameterize ad-hoc SQL ([`Session::sql`]): literals are
    /// lifted into parameter slots, so every statement with the same
    /// *shape* resolves to one prepared plan-cache entry regardless of
    /// its literal values — ad-hoc text gets prepared-statement
    /// throughput. Results are bit-identical to exact planning (binding
    /// re-infers types per value). Statements with nothing to lift fall
    /// back to exact planning. Off routes every statement through the
    /// exact-fingerprint plan cache instead.
    pub sql_auto_param: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            plan_cache_capacity: 128,
            admission_capacity: 1e9,
            batch_max: 256,
            batch_linger: Duration::from_micros(500),
            warm_limit: 65_536,
            cache_results: true,
            mqo: true,
            scan_group_max: 16,
            scan_linger: Duration::from_millis(2),
            default_timeout: None,
            default_memory_budget: 0,
            max_queued: 0,
            retry_transient: true,
            tracing: false,
            trace_ring_capacity: 64,
            slow_query_threshold: None,
            profiling: false,
            watchdog: None,
            sql_auto_param: true,
        }
    }
}

/// Per-query lifecycle options (everything unset falls back to the
/// [`ServeConfig`] defaults).
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Deadline for this query, measured from entry into the server.
    pub timeout: Option<Duration>,
    /// Memory budget in bytes for this query (`Some(0)` = explicitly
    /// unlimited, overriding a server default).
    pub memory_budget: Option<u64>,
    /// Cancellation token to observe; keep a clone and call
    /// [`CancelToken::cancel`] from any thread to stop the query at its
    /// next cooperative check.
    pub cancel: Option<CancelToken>,
}

/// The outcome of one served query.
#[derive(Debug)]
pub struct ServeResult {
    /// Materialized result rows. `Arc`-shared with the plan's result memo
    /// so replays are zero-copy (`Arc<Table>` derefs to `Table`; clone the
    /// inner table only if you need to mutate it).
    pub table: Arc<Table>,
    /// Wall time inside the server (warm + plan + admit + execute).
    pub elapsed: Duration,
    /// Optimizer rule trace (from the cached plan on hits).
    pub rules_fired: Vec<String>,
    /// Optimizer row estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate (the admission weight used).
    pub estimated_cost: f64,
    /// Whether the plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// Whether the result came from the plan's result memo (execution and
    /// admission were skipped entirely).
    pub result_cache_hit: bool,
    /// Whether this query's panel sweep was answered by a shared
    /// multi-query scan (`cx_mqo`) rather than a solo sweep.
    pub shared_scan: bool,
    /// The query's lifecycle trace, when [`ServeConfig::tracing`] is on
    /// (`None` otherwise). The same trace is pushed into the server's
    /// trace ring; render it with [`QueryTrace::render`].
    pub trace: Option<QueryTrace>,
}

/// One query's execution state as it flows through result memoization,
/// scan grouping, admission and execution. Ad-hoc queries execute the
/// cached tree itself and memoize at the plan level; prepared executions
/// run a parameter-bound copy and memoize per binding vector.
#[derive(Clone)]
pub struct ExecUnit {
    /// The resolved plan-cache entry.
    pub cached: Arc<CachedPlan>,
    /// The tree to execute: the cached tree for ad-hoc queries, its
    /// parameter-bound copy for prepared executions.
    pub root: Arc<dyn PhysicalOperator>,
    /// The binding vector key for prepared executions (`None` = ad-hoc;
    /// the plan-level result memo applies instead).
    pub binding: Option<BindingKey>,
    /// Admission weight — the bound-literal cost estimate for prepared
    /// executions, the cached estimate otherwise.
    pub cost: f64,
    /// Whether plan resolution hit the plan cache.
    pub plan_cache_hit: bool,
    /// When the server started serving this query.
    pub started: Instant,
    /// The query's lifecycle context (deadline, cancellation, budget) —
    /// installed around its execution, consulted at admission, and
    /// checked per member inside shared-scan groups.
    pub ctx: QueryContext,
    /// The query's trace, when tracing is on. Carried inside the unit so
    /// the group leader's thread can attribute shared-sweep and epilogue
    /// spans to *every* member's trace, not just its own.
    pub trace: Option<QueryTrace>,
}

/// Lifecycle-policy counters: how queries died early and how the server
/// recovered (see the module docs for the policies themselves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Queries that returned [`QueryError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Queries that returned [`QueryError::Cancelled`].
    pub cancelled: u64,
    /// Queries that returned [`QueryError::MemoryBudget`].
    pub budget_exceeded: u64,
    /// Queries that (after any retry) returned [`QueryError::Transient`].
    pub transient_failures: u64,
    /// Solo retries taken after a transient first attempt.
    pub retries: u64,
    /// Panics contained at the query boundary (converted to
    /// [`QueryError::Transient`] instead of unwinding the caller).
    pub contained_panics: u64,
}

#[derive(Default)]
struct LifecycleCounters {
    deadline_exceeded: AtomicU64,
    cancelled: AtomicU64,
    budget_exceeded: AtomicU64,
    transient_failures: AtomicU64,
    retries: AtomicU64,
    contained_panics: AtomicU64,
}

impl LifecycleCounters {
    fn snapshot(&self) -> LifecycleStats {
        LifecycleStats {
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            budget_exceeded: self.budget_exceeded.load(Ordering::Relaxed),
            transient_failures: self.transient_failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate server counters.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Queries served.
    pub queries: u64,
    /// Sessions opened.
    pub sessions: u64,
    /// Prepared-statement executions among `queries`.
    pub prepared_queries: u64,
    /// Queries answered from a cached plan's result memo (per-binding
    /// memo hits included).
    pub result_cache_hits: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// Multi-query scan-sharing counters.
    pub scan_sharing: ScanQueueStats,
    /// Lifecycle-policy counters (deadlines, cancels, budgets, retries,
    /// contained panics).
    pub lifecycle: LifecycleStats,
    /// SQL front-end counters ([`Session::sql`]).
    pub sql: crate::sql::SqlStats,
    /// Per-model embed-batcher counters, sorted by model name.
    pub batchers: Vec<(String, BatcherStats)>,
    /// The resolved SIMD kernel dispatch serving every similarity sweep
    /// (e.g. `f32=avx512 f16=f16c+avx512 int8=vnni512`).
    pub simd: String,
}

/// A concurrent query-serving layer over one shared [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    plan_cache: PlanCache,
    gate: CostGate,
    scan_queue: ScanQueue,
    batchers: RwLock<HashMap<String, Arc<EmbedBatcher>>>,
    metrics: ExecMetrics,
    queries: AtomicU64,
    sessions: AtomicU64,
    prepared_queries: AtomicU64,
    result_hits: AtomicU64,
    lifecycle: LifecycleCounters,
    /// The installed chaos schedule, if any (see [`crate::faults`]).
    fault_plan: RwLock<Option<Arc<FaultPlan>>>,
    /// Queries currently inside the server — the scan queue's
    /// contention signal: a query that is provably alone skips the
    /// group-forming linger (nobody exists who could join it).
    in_flight: AtomicU64,
    /// Finished traces, newest last (tracing on; capacity from config).
    trace_ring: TraceRing,
    /// Rendered span trees of queries past the slow-query threshold,
    /// newest last, bounded.
    slow_log: Mutex<VecDeque<String>>,
    /// End-to-end serve latency (memo hits included). Always on.
    latency_hist: Histogram,
    /// Time spent waiting at the admission gate (solo and group
    /// acquisitions). Always on.
    queue_wait_hist: Histogram,
    /// Shared-sweep duration per drained group. Always on.
    sweep_hist: Histogram,
    /// Keeps process-wide tracing enabled while this server is configured
    /// for it (span sites everywhere check one relaxed atomic).
    _tracing_session: Option<TracingSession>,
    /// Structured incidents appended by the watchdog, queryable as
    /// `cx.incidents`. Present even without a watchdog so the table
    /// always resolves (empty).
    incidents: Arc<IncidentLog>,
    /// The background watchdog sampler, when configured.
    watchdog: Mutex<Option<WatchdogHandle>>,
    /// Monotonic sequence stamped onto every metrics snapshot, so two
    /// diffed exports are orderable even under a frozen test clock.
    snapshot_seq: AtomicU64,
    /// Injectable millisecond timestamp source for snapshot stamps and
    /// incident records (`None` = wall clock since the Unix epoch).
    timestamp_source: RwLock<Option<Arc<dyn Fn() -> u64 + Send + Sync>>>,
    /// SQL front-end counters ([`Session::sql`]).
    pub(crate) sql: crate::sql::SqlCounters,
    /// Server-wide totals across profiled queries.
    profile_totals: ProfileTotals,
    /// Keeps process-wide profiling enabled while this server is
    /// configured for it (allocator and kernel hooks check one relaxed
    /// atomic).
    _profiler_session: Option<ProfilerSession>,
}

/// Aggregated resource usage across every profiled query (see
/// [`ServeConfig::profiling`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileTotalsStats {
    /// Queries that ran with a profile attached.
    pub profiled_queries: u64,
    /// Total thread CPU time, in nanoseconds.
    pub cpu_ns: u64,
    /// Total heap allocations observed by the counting allocator.
    pub alloc_count: u64,
    /// Total bytes requested from the counting allocator.
    pub alloc_bytes: u64,
    /// Total candidate×probe pairs scored by similarity kernels.
    pub pairs_scored: u64,
    /// Total panel tiles touched by similarity kernels.
    pub panel_tiles: u64,
    /// Total bytes charged against per-query memory budgets.
    pub bytes_charged: u64,
}

#[derive(Default)]
struct ProfileTotals {
    profiled_queries: AtomicU64,
    cpu_ns: AtomicU64,
    alloc_count: AtomicU64,
    alloc_bytes: AtomicU64,
    pairs_scored: AtomicU64,
    panel_tiles: AtomicU64,
    bytes_charged: AtomicU64,
}

impl ProfileTotals {
    fn add(&self, p: &QueryProfile) {
        self.profiled_queries.fetch_add(1, Ordering::Relaxed);
        self.cpu_ns.fetch_add(p.cpu_ns, Ordering::Relaxed);
        self.alloc_count.fetch_add(p.alloc_count, Ordering::Relaxed);
        self.alloc_bytes.fetch_add(p.alloc_bytes, Ordering::Relaxed);
        self.pairs_scored.fetch_add(p.pairs_scored, Ordering::Relaxed);
        self.panel_tiles.fetch_add(p.panel_tiles, Ordering::Relaxed);
        self.bytes_charged.fetch_add(p.bytes_charged, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ProfileTotalsStats {
        ProfileTotalsStats {
            profiled_queries: self.profiled_queries.load(Ordering::Relaxed),
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
            alloc_count: self.alloc_count.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            pairs_scored: self.pairs_scored.load(Ordering::Relaxed),
            panel_tiles: self.panel_tiles.load(Ordering::Relaxed),
            bytes_charged: self.bytes_charged.load(Ordering::Relaxed),
        }
    }
}

/// Most rendered slow-query traces retained.
const SLOW_LOG_CAPACITY: usize = 32;

/// Incident-log capacity when no watchdog is configured (manual appends
/// and future watchdog reconfiguration still land somewhere bounded).
const DEFAULT_INCIDENT_CAPACITY: usize = 256;

impl Drop for Server {
    fn drop(&mut self) {
        // Stop (and usually join) the watchdog. When the last `Arc` drops
        // on the watchdog's own thread — its tick held the final strong
        // handle — the handle detaches instead of self-joining.
        if let Some(handle) = self.watchdog.lock().take() {
            handle.stop();
        }
    }
}

/// RAII decrement for [`Server::in_flight`].
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Server {
    /// Wraps `engine` for concurrent serving under `config`.
    pub fn new(engine: Arc<Engine>, config: ServeConfig) -> Arc<Self> {
        // Log the resolved kernel dispatch once per process, not per
        // server: which ISA paths serve the sweeps is global state.
        static SIMD_BANNER: std::sync::Once = std::sync::Once::new();
        SIMD_BANNER.call_once(|| {
            eprintln!(
                "cx-serve: simd kernels {}",
                cx_simd::KernelDispatch::active().report()
            );
        });
        let metrics = ExecMetrics::new();
        metrics.set_environment(format!(
            "simd {}",
            cx_simd::KernelDispatch::active().report()
        ));
        let server = Arc::new(Server {
            plan_cache: PlanCache::new(config.plan_cache_capacity),
            gate: CostGate::new(config.admission_capacity),
            scan_queue: ScanQueue::new(ScanQueueConfig {
                group_max: config.scan_group_max,
                linger: config.scan_linger,
            }),
            engine,
            config,
            batchers: RwLock::new(HashMap::new()),
            metrics,
            queries: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            prepared_queries: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            lifecycle: LifecycleCounters::default(),
            fault_plan: RwLock::new(None),
            in_flight: AtomicU64::new(0),
            trace_ring: TraceRing::new(if config.tracing {
                config.trace_ring_capacity
            } else {
                0
            }),
            slow_log: Mutex::new(VecDeque::new()),
            latency_hist: Histogram::new(),
            queue_wait_hist: Histogram::new(),
            sweep_hist: Histogram::new(),
            _tracing_session: config.tracing.then(TracingSession::new),
            incidents: Arc::new(IncidentLog::new(
                config.watchdog.map_or(DEFAULT_INCIDENT_CAPACITY, |w| w.incident_capacity),
            )),
            watchdog: Mutex::new(None),
            snapshot_seq: AtomicU64::new(0),
            timestamp_source: RwLock::new(None),
            sql: crate::sql::SqlCounters::default(),
            profile_totals: ProfileTotals::default(),
            _profiler_session: config.profiling.then(ProfilerSession::new),
        });
        // The engine can now query the server: every telemetry surface
        // registers as a live `cx.*` system table holding a Weak handle
        // (a dropped server scans as empty, never dangles). A second
        // server over the same engine replaces the registrations — last
        // server wins its engine's telemetry tables.
        crate::systab::register_all(&server);
        if let Some(wd) = config.watchdog {
            *server.watchdog.lock() =
                Some(crate::watchdog::spawn(Arc::downgrade(&server), wd));
        }
        server
    }

    /// The shared engine (register tables/models through it as usual; the
    /// catalog version check keeps cached plans honest).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Installs (or, with `None`, removes) a deterministic fault-injection
    /// plan. While installed, the serving hot path consults it at the
    /// [`FaultSite`] boundaries and injects panics, delays, or transient
    /// errors per the plan's seeded schedule — the chaos harness the
    /// robustness tests and `BENCH_chaos` drive. Takes effect for queries
    /// entering after the call.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault_plan.write() = plan;
    }

    /// The installed fault plan's injection counters (`None` when no plan
    /// is installed).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault_plan.read().as_ref().map(|p| p.stats())
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.read().clone()
    }

    /// Opens a session handle. Sessions are cheap tagged views over the
    /// shared server; one per client connection.
    pub fn session(self: &Arc<Self>) -> Session {
        let id = self.sessions.fetch_add(1, Ordering::Relaxed);
        Session {
            server: self.clone(),
            id,
            queries: AtomicU64::new(0),
            config: Mutex::new(None),
            statements: Mutex::new(HashMap::new()),
        }
    }

    /// Starts a query over table `name` (same surface as
    /// [`Engine::table`]).
    pub fn table(&self, name: &str) -> Result<Query> {
        self.engine.table(name)
    }

    /// Serves one query; safe to call from any number of threads.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        self.serve_query(query, self.engine.config().optimizer, &QueryOptions::default())
    }

    /// Serves one query under explicit lifecycle options (deadline,
    /// cancellation token, memory budget).
    pub fn execute_with_options(
        &self,
        query: &Query,
        options: &QueryOptions,
    ) -> Result<ServeResult> {
        self.serve_query(query, self.engine.config().optimizer, options)
    }

    /// Serves one query under an explicit optimizer configuration (the
    /// per-session override path — see [`Session::set_recall_tolerance`]).
    /// The config fingerprint partitions the plan cache *and* the scan
    /// queue, so sessions with different configurations never share plans
    /// or sweeps.
    pub fn execute_with_config(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
    ) -> Result<ServeResult> {
        self.serve_query(query, opt_config, &QueryOptions::default())
    }

    /// The full serving path: plan resolution, dispatch (memo → scan
    /// sharing → solo), panic containment, and the transient retry-once
    /// policy, all under the query's lifecycle context.
    pub(crate) fn serve_query(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
        options: &QueryOptions,
    ) -> Result<ServeResult> {
        self.serve_query_inner(query, opt_config, options, false)
    }

    /// [`Server::serve_query`] with one extra switch: `force_trace`
    /// records a [`QueryTrace`] for this query even when
    /// [`ServeConfig::tracing`] is off (the `EXPLAIN ANALYZE` path —
    /// see [`Session::explain_analyze`]). The forced trace is attached
    /// to the result; with tracing off the ring has capacity 0, so
    /// nothing is retained server-side and no other query pays a thing.
    fn serve_query_inner(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
        options: &QueryOptions,
        force_trace: bool,
    ) -> Result<ServeResult> {
        let start = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard(&self.in_flight);
        let ctx = self.make_ctx(options);
        let cfg_fp = config_fingerprint(&opt_config);
        let exact = query.plan().fingerprint();
        let key = exact ^ cfg_fp;
        let trace = (self.config.tracing || force_trace)
            .then(|| QueryTrace::new(format!("query#{exact:016x}")));
        // Span sites check a process-wide refcount; forcing a trace
        // needs it held for this query's duration.
        let _forced = (force_trace && !self.config.tracing).then(TracingSession::new);
        let profile_span = self.config.profiling.then(ProfileSpan::start);

        let attempt = |solo: bool| -> Result<ServeResult> {
            let _scope = cx_obs::install_trace(trace.as_ref());
            if solo {
                cx_obs::event("retry", || "solo (no scan sharing)".into());
            }
            let version = self.engine.catalog_version();
            let mut pc_span = cx_obs::span("plan_cache");
            let (cached, hit) = match self.plan_cache.get(key, version) {
                Some(cached) => {
                    pc_span.set_detail("hit");
                    drop(pc_span);
                    (cached, true)
                }
                None => {
                    pc_span.set_detail("miss");
                    let cached = self.build_plan(query, opt_config, exact, version)?;
                    drop(pc_span);
                    self.plan_cache.insert(key, cached.clone());
                    (cached, false)
                }
            };
            let unit = ExecUnit {
                root: cached.physical.clone(),
                binding: None,
                cost: cached.estimated_cost,
                cached,
                plan_cache_hit: hit,
                started: start,
                ctx: ctx.clone(),
                trace: trace.clone(),
            };
            if solo {
                // Retry path: no scan sharing, full solo cost — but a
                // result memoized since the first attempt still counts.
                if let Some(result) = self.try_result_memo(&unit) {
                    return Ok(result);
                }
                self.execute_solo(&unit)
            } else {
                self.dispatch(unit, cfg_fp, false)
            }
        };

        let mut result = self.run_with_recovery(attempt);
        self.record_outcome(&result);
        let profile =
            profile_span.map(|p| p.finish(ctx.budget().map_or(0, |b| b.allocated())));
        self.finish_query(trace, start, &mut result, profile);
        result
    }

    /// Executes a prepared statement under `params` (called through
    /// [`Prepared::execute`]). Plan resolution goes through the shared
    /// plan cache keyed by the template's *shape*, parameters are bound
    /// into a copy of the cached physical tree, admission is weighted by
    /// a cost estimate over the *bound* logical plan, and results are
    /// memoized per binding vector. Bound executions participate in
    /// multi-query scan sharing exactly like ad-hoc queries, and run
    /// under the same lifecycle policies (server-default deadline/budget,
    /// panic containment, transient retry).
    pub(crate) fn execute_prepared(
        &self,
        prepared: &Prepared,
        params: &[Scalar],
    ) -> Result<ServeResult> {
        if params.len() != prepared.param_count() {
            return Err(Error::InvalidArgument(format!(
                "prepared statement expects {} parameter(s), got {}",
                prepared.param_count(),
                params.len()
            )));
        }
        let start = Instant::now();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard(&self.in_flight);
        let ctx = self.make_ctx(&QueryOptions::default());
        let profile_span = self.config.profiling.then(ProfileSpan::start);
        let cfg_fp = config_fingerprint(&prepared.config());
        let trace = self.config.tracing.then(|| {
            QueryTrace::new(format!(
                "prepared#{:016x}({} params)",
                prepared.exact_fingerprint(),
                params.len()
            ))
        });

        let attempt = |solo: bool| -> Result<ServeResult> {
            let _scope = cx_obs::install_trace(trace.as_ref());
            if solo {
                cx_obs::event("retry", || "solo (no scan sharing)".into());
            }
            let version = self.engine.catalog_version();
            let mut pc_span = cx_obs::span("plan_cache");
            let (cached, hit) = self.resolve_prepared(prepared, version)?;
            pc_span.set_detail(if hit { "hit" } else { "miss" });
            drop(pc_span);
            let binding = BindingKey::new(params);

            // Per-binding memo first: a replayed binding skips parameter
            // rebinding, cost estimation, grouping and admission outright.
            let unit = ExecUnit {
                root: cached.physical.clone(), // placeholder until bound below
                binding: Some(binding),
                cost: cached.estimated_cost,
                cached,
                plan_cache_hit: hit,
                started: start,
                ctx: ctx.clone(),
                trace: trace.clone(),
            };
            if let Some(result) = self.try_result_memo(&unit) {
                return Ok(result);
            }

            // Bind the physical tree (subtrees without parameters stay
            // shared) and re-cost the plan with the bound literals — the
            // template was optimized with placeholder slots and default
            // selectivities, but admission should weigh the real query.
            let bind_span = cx_obs::span("bind_params");
            let root = bind_physical(&unit.cached.physical, params)?;
            let cost = if params.is_empty() {
                unit.cached.estimated_cost
            } else {
                self.engine.estimate_plan_cost(
                    &unit.cached.optimized.bind_params(params)?,
                    prepared.config(),
                )
            };
            drop(bind_span);
            let unit = ExecUnit { root, cost, ..unit };
            if solo {
                self.execute_solo(&unit)
            } else {
                self.dispatch(unit, cfg_fp, true)
            }
        };

        let mut result = self.run_with_recovery(attempt);
        if result.is_ok() {
            // Counted on success only, so the counter stays a subset of
            // `queries` even when bindings fail validation.
            self.prepared_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.record_outcome(&result);
        let profile =
            profile_span.map(|p| p.finish(ctx.budget().map_or(0, |b| b.allocated())));
        self.finish_query(trace, start, &mut result, profile);
        result
    }

    /// Seals a query's observability record: the end-to-end latency lands
    /// in the histogram (always), a resource profile (profiling on) folds
    /// into the server totals and onto the trace, and when tracing is on
    /// the trace is finished with the outcome, pushed into the ring,
    /// rendered into the slow log if over threshold, and attached to a
    /// successful result.
    fn finish_query(
        &self,
        trace: Option<QueryTrace>,
        start: Instant,
        result: &mut Result<ServeResult>,
        profile: Option<QueryProfile>,
    ) {
        let elapsed = start.elapsed();
        self.latency_hist.record_duration(elapsed);
        if let Some(p) = profile {
            self.profile_totals.add(&p);
            if let Some(trace) = &trace {
                trace.set_profile(p);
            }
        }
        let Some(trace) = trace else { return };
        let outcome = match &*result {
            Ok(r) => {
                if r.result_cache_hit {
                    "ok (result memo)".to_string()
                } else if r.shared_scan {
                    "ok (shared scan)".to_string()
                } else {
                    "ok".to_string()
                }
            }
            Err(e) => format!("error: {e}"),
        };
        trace.finish(outcome);
        if let Some(threshold) = self.config.slow_query_threshold {
            if elapsed >= threshold {
                let mut log = self.slow_log.lock();
                if log.len() >= SLOW_LOG_CAPACITY {
                    log.pop_front();
                }
                log.push_back(trace.render());
            }
        }
        self.trace_ring.push(trace.clone());
        if let Ok(r) = result {
            r.trace = Some(trace);
        }
    }

    /// Builds a query's lifecycle context from its options over the
    /// server defaults.
    fn make_ctx(&self, options: &QueryOptions) -> QueryContext {
        let mut ctx = QueryContext::unbounded();
        if let Some(timeout) = options.timeout.or(self.config.default_timeout) {
            ctx = ctx.with_timeout(timeout);
        }
        let budget = options.memory_budget.unwrap_or(self.config.default_memory_budget);
        if budget > 0 {
            ctx = ctx.with_budget(Arc::new(MemoryBudget::new(budget)));
        } else if self.config.profiling {
            // Limit 0 = unlimited: charges are recorded but never trip,
            // which is exactly what the profiler's `bytes_charged` needs
            // when the query runs without a real budget.
            ctx = ctx.with_budget(Arc::new(MemoryBudget::new(0)));
        }
        if let Some(token) = &options.cancel {
            ctx = ctx.with_cancel(token.clone());
        }
        ctx
    }

    /// Runs `attempt(false)` with panics contained at this boundary; on a
    /// transient failure (injected fault, contained panic, failed group
    /// drain) retries once with `attempt(true)` — the solo path — if
    /// [`ServeConfig::retry_transient`] is on.
    fn run_with_recovery(
        &self,
        attempt: impl Fn(bool) -> Result<ServeResult>,
    ) -> Result<ServeResult> {
        let first = self.contain(|| attempt(false));
        match first {
            Err(e) if e.is_transient() && self.config.retry_transient => {
                self.lifecycle.retries.fetch_add(1, Ordering::Relaxed);
                self.contain(|| attempt(true))
            }
            other => other,
        }
    }

    /// Contains panics at the query boundary: the caller gets
    /// [`QueryError::Transient`] instead of an unwinding thread, and the
    /// server keeps serving. Every lock the serving path holds across
    /// potentially-panicking code either recovers from poisoning or is
    /// released before that code runs, so containment is safe here.
    fn contain(&self, f: impl FnOnce() -> Result<ServeResult>) -> Result<ServeResult> {
        match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(_) => {
                self.lifecycle.contained_panics.fetch_add(1, Ordering::Relaxed);
                Err(QueryError::Transient("query execution panicked (contained)".into()).into())
            }
        }
    }

    /// Folds a query's final outcome into the lifecycle counters.
    fn record_outcome(&self, result: &Result<ServeResult>) {
        let Err(e) = result else { return };
        let counter = match e.as_query() {
            Some(QueryError::DeadlineExceeded) => &self.lifecycle.deadline_exceeded,
            Some(QueryError::Cancelled) => &self.lifecycle.cancelled,
            Some(QueryError::MemoryBudget { .. }) => &self.lifecycle.budget_exceeded,
            Some(QueryError::Transient(_)) => &self.lifecycle.transient_failures,
            // QueueFull is counted by the admission gate itself.
            Some(QueryError::QueueFull { .. }) | None => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a prepared statement's cached plan: a shape-keyed lookup
    /// validated against the template's exact fingerprint, rebuilding
    /// (and replacing) the entry on miss, staleness, or a shape
    /// collision with a different template.
    pub(crate) fn resolve_prepared(
        &self,
        prepared: &Prepared,
        version: u64,
    ) -> Result<(Arc<CachedPlan>, bool)> {
        let key = prepared.cache_key();
        if let Some(cached) = self.plan_cache.get(key, version) {
            if cached.exact_fingerprint == prepared.exact_fingerprint() {
                return Ok((cached, true));
            }
        }
        let cached = self.build_plan(
            prepared.template(),
            prepared.config(),
            prepared.exact_fingerprint(),
            version,
        )?;
        self.plan_cache.insert(key, cached.clone());
        Ok((cached, false))
    }

    /// First sight of a plan: warms its embedding working set through the
    /// batcher *before* optimizing, so the optimizer's sampling probes
    /// and the execution both hit the cache — and so concurrent
    /// first-timers coalesce into shared batches — then optimizes and
    /// lowers. Plan-cache hits skip all of this: their working set was
    /// warmed when the plan was first built, and execution re-embeds
    /// strays through the cache anyway.
    fn build_plan(
        &self,
        query: &Query,
        opt_config: OptimizerConfig,
        exact_fingerprint: u64,
        version: u64,
    ) -> Result<Arc<CachedPlan>> {
        self.warm_embeddings(query.plan())?;
        let planned = self.engine.optimize_query_with(query, opt_config);
        let physical = self.engine.lower_plan_with(&planned.plan, opt_config)?;
        Ok(Arc::new(CachedPlan {
            shared_scan: find_shared_scan(&physical),
            physical,
            volatile: plan_scans_system_table(&planned.plan),
            optimized: planned.plan,
            rules_fired: planned.rules_fired,
            estimated_rows: planned.estimated_rows,
            estimated_cost: planned.estimated_cost,
            catalog_version: version,
            exact_fingerprint,
            result: parking_lot::Mutex::new(None),
            bound_results: parking_lot::Mutex::new(HashMap::new()),
        }))
    }

    /// Routes a resolved execution unit: result memo, then multi-query
    /// scan sharing, then solo execution. `memo_checked` lets a caller
    /// that already probed the result memo (the prepared path checks it
    /// before paying for parameter binding) skip the second probe.
    fn dispatch(&self, unit: ExecUnit, cfg_fp: u64, memo_checked: bool) -> Result<ServeResult> {
        // Result memo: a replayed fingerprint (⊕ binding) over an
        // unchanged catalog is the same table — skip grouping, admission
        // and execution outright (memoized replays must never re-enter
        // the cost gate).
        if !memo_checked {
            if let Some(result) = self.try_result_memo(&unit) {
                return Ok(result);
            }
        }

        // Multi-query scan sharing: plans with a shareable sweep queue up
        // by group key — the scan signature's key ⊕ the config fingerprint
        // (configs change how subtrees lower) ⊕ the catalog version (never
        // group across registrations). Prepared executions re-discover the
        // scan on their *bound* tree; the signature's group key excludes
        // per-query probes, so bound sweeps join ad-hoc groups freely.
        if self.config.mqo {
            let shared = if unit.binding.is_some() {
                find_shared_scan(&unit.root)
            } else {
                unit.cached.shared_scan.clone()
            };
            if let Some((node, sig)) = shared {
                let group_key = sig.group_key()
                    ^ cfg_fp
                    ^ unit.cached.catalog_version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let entry =
                    GroupEntry { unit, node, signature: sig, queued_at: Instant::now() };
                // A query with no other query in flight cannot be joined
                // by anyone: skip the linger and sweep immediately.
                let contended = self.in_flight.load(Ordering::Relaxed) > 1;
                return self
                    .scan_queue
                    .submit(group_key, entry, contended, |entries| self.drain_group(entries));
            }
        }

        self.execute_solo(&unit)
    }

    /// Serves `unit` from its result memo if enabled and populated — the
    /// plan-level memo for ad-hoc queries, the per-binding memo for
    /// prepared executions.
    fn try_result_memo(&self, unit: &ExecUnit) -> Option<ServeResult> {
        // Volatile plans scan live `cx.*` state: the *plan* stays cached
        // (lowering is as deterministic as ever) but the data is a
        // point-in-time snapshot, so the memo is never read or written.
        if !self.config.cache_results || unit.cached.volatile {
            return None;
        }
        let table = match &unit.binding {
            None => unit.cached.result.lock().clone()?,
            Some(binding) => unit.cached.bound_results.lock().get(binding).cloned()?,
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.result_hits.fetch_add(1, Ordering::Relaxed);
        Some(ServeResult {
            table,
            elapsed: unit.started.elapsed(),
            rules_fired: unit.cached.rules_fired.clone(),
            estimated_rows: unit.cached.estimated_rows,
            estimated_cost: unit.cost,
            plan_cache_hit: unit.plan_cache_hit,
            result_cache_hit: true,
            shared_scan: false,
            trace: None,
        })
    }

    /// Solo path: full-cost lifecycle-aware admission (deadline-aware
    /// waiting, `max_queued` shedding), then execution.
    fn execute_solo(&self, unit: &ExecUnit) -> Result<ServeResult> {
        // Installed explicitly (not inherited from the caller's thread):
        // a group leader running a solo fallback for a *foreign* member
        // must attribute this wait to that member's trace, not its own.
        let _scope = cx_obs::install_trace(unit.trace.as_ref());
        if let Some(plan) = self.fault_plan() {
            if let Err(e) = plan.strike(FaultSite::Admission) {
                cx_obs::event("fault", || "admission".into());
                return Err(e);
            }
        }
        let wait_started = Instant::now();
        let _span = cx_obs::span("admission");
        let _permit = self.gate.acquire_ctx(unit.cost, &unit.ctx, self.config.max_queued)?;
        drop(_span);
        self.queue_wait_hist.record_duration(wait_started.elapsed());
        self.run_unit(unit, false)
    }

    /// Executes the unit's tree (instrumented) under its lifecycle
    /// context, memoizes, and assembles the result. Admission is the
    /// caller's business: solo queries acquire their own permit, shared
    /// groups hold one group permit across all members.
    /// Tracing: callers install the unit's trace before calling (the
    /// solo path installs it at [`Server::execute_solo`], the group path
    /// around each epilogue), so the `execute` span here nests under
    /// whatever stage span the caller holds open.
    fn run_unit(&self, unit: &ExecUnit, shared_scan: bool) -> Result<ServeResult> {
        let root = InstrumentedExec::new(unit.root.clone(), &self.metrics);
        let exec_span = cx_obs::span("execute");
        let table = Arc::new(unit.ctx.scope(|| collect_table(&root))?);
        drop(exec_span);
        if self.config.cache_results && !unit.cached.volatile {
            match &unit.binding {
                None => *unit.cached.result.lock() = Some(table.clone()),
                Some(binding) => unit.cached.memoize_binding(binding, table.clone()),
            }
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(ServeResult {
            table,
            elapsed: unit.started.elapsed(),
            rules_fired: unit.cached.rules_fired.clone(),
            estimated_rows: unit.cached.estimated_rows,
            estimated_cost: unit.cost,
            plan_cache_hit: unit.plan_cache_hit,
            result_cache_hit: false,
            shared_scan,
            trace: None,
        })
    }

    /// The context a group's shared sweep runs under: deadline = the
    /// *latest* member deadline (any member with no deadline makes the
    /// sweep unbounded). Per-member deadlines are enforced at the
    /// epilogues; the sweep itself only dies when it can no longer serve
    /// anyone.
    fn group_context(entries: &[GroupEntry]) -> QueryContext {
        let mut latest: Option<Instant> = None;
        for e in entries {
            match e.unit.ctx.deadline() {
                None => return QueryContext::unbounded(),
                Some(d) => latest = Some(latest.map_or(d, |cur| cur.max(d))),
            }
        }
        match latest {
            Some(d) => QueryContext::unbounded().with_deadline(d),
            None => QueryContext::unbounded(),
        }
    }

    /// Drains one scan-queue group: one shared sweep, then every member's
    /// own epilogue. Runs on the group leader's thread.
    ///
    /// Failure domains, narrowest first: an expired/cancelled **member**
    /// exits alone at its epilogue (the group survives); a failed or
    /// panicked **sweep** falls back to solo execution per member; a
    /// panicked **drain** is contained by the scan queue and every member
    /// retries solo via the transient policy. Non-faulted members always
    /// get bit-identical-to-solo results.
    fn drain_group(&self, entries: Vec<GroupEntry>) -> Vec<Result<ServeResult>> {
        let fault = self.fault_plan();
        let k = entries.len();
        let drain_started = Instant::now();
        if cx_obs::tracing_enabled() {
            // Attribute the linger to every member: how long each query
            // sat in the scan queue before its group drained. The leader
            // waited the whole linger; late joiners waited less.
            for (i, e) in entries.iter().enumerate() {
                if let Some(trace) = &e.unit.trace {
                    let role = if i == 0 { "leader" } else { "follower" };
                    trace.add_span(
                        "scan_queue_wait",
                        format!("{role} k={k}"),
                        e.queued_at,
                        drain_started.saturating_duration_since(e.queued_at),
                        0,
                        false,
                    );
                }
            }
        }
        if let Some(plan) = &fault {
            // An injected drain *panic* deliberately propagates into the
            // scan queue's containment (every member gets a transient
            // error); an injected transient error is reported per member
            // directly.
            if plan.strike(FaultSite::Drain).is_err() {
                return entries
                    .iter()
                    .map(|e| {
                        if let Some(trace) = &e.unit.trace {
                            trace.add_event("fault", "drain");
                        }
                        Err(QueryError::Transient("injected fault at drain".into()).into())
                    })
                    .collect();
            }
        }

        if k == 1 {
            // Nobody joined inside the linger window: plain solo
            // execution, no sweep overhead beyond the wait itself.
            return vec![self.execute_solo(&entries[0].unit)];
        }

        // Build the shared plan. Any failure here (unknown model, a
        // malformed group) falls back to solo execution per member —
        // sharing is an optimization, never a correctness dependency.
        let shared = self
            .engine
            .embedding_cache(&entries[0].signature.model)
            .ok_or_else(|| {
                cx_storage::Error::InvalidArgument(format!(
                    "unknown model: {}",
                    entries[0].signature.model
                ))
            })
            .and_then(|cache| {
                let members: Vec<(Arc<dyn PhysicalOperator>, ScanSignature)> = entries
                    .iter()
                    .map(|e| (e.node.clone(), e.signature.clone()))
                    .collect();
                SharedScanExec::from_group(&members, cache)
            });

        // One admission permit covers the whole group; each member is
        // charged its shared weight (sweep split k ways, epilogue whole),
        // so coalesced queries admit cheaper than k solo queries would.
        // The wait honors the group deadline: if even the latest member
        // deadline passes while queued, nobody is left to serve.
        let group_ctx = Self::group_context(&entries);
        let weight: f64 = entries
            .iter()
            .map(|e| shared_scan_cost(e.unit.cost, k))
            .sum();
        let admit_started = Instant::now();
        let admitted = self.gate.acquire_ctx(weight, &group_ctx, 0);
        let admit_dur = admit_started.elapsed();
        self.queue_wait_hist.record_duration(admit_dur);
        if cx_obs::tracing_enabled() {
            // One group permit covers everyone: the wait is shared work,
            // attributed to every member's trace.
            for e in &entries {
                if let Some(trace) = &e.unit.trace {
                    trace.add_span("admission", "group", admit_started, admit_dur, 0, true);
                }
            }
        }
        let permit = match admitted {
            Ok(permit) => permit,
            Err(_) => {
                // The group deadline is the max over members, so every
                // member's own deadline has passed too; report each with
                // its own typed error.
                return entries
                    .iter()
                    .map(|e| match e.unit.ctx.check() {
                        Err(err) => Err(err),
                        Ok(()) => Err(QueryError::DeadlineExceeded.into()),
                    })
                    .collect();
            }
        };

        let states = shared.and_then(|shared| {
            if let Some(plan) = &fault {
                // A sweep fault (transient) takes the solo-fallback path
                // below; a sweep panic propagates to the scan queue's
                // containment.
                if let Err(e) = plan.strike(FaultSite::Sweep) {
                    for en in &entries {
                        if let Some(trace) = &en.unit.trace {
                            trace.add_event("fault", "sweep");
                        }
                    }
                    return Err(e);
                }
            }
            // The sweep is consumed through its outcome, not its chunk
            // stream (materializing the pair table just to discard it
            // would cost O(hits) clones); record it into the operator
            // metrics by hand so reports still show SharedScan rows/time.
            // It runs under the *group* context: member deadlines are
            // enforced at the epilogues, not mid-sweep.
            let sweep_started = Instant::now();
            let outcome = {
                // The leader's trace hosts the live span so the sweep's
                // internal spans (candidate scan, probe gather, panel
                // sweep) nest beneath it; every other member gets the
                // same interval attributed below, tagged shared — the
                // sweep ran once but served them all.
                let _scope = cx_obs::install_trace(entries[0].unit.trace.as_ref());
                let _sweep_span = cx_obs::span_with("shared_sweep", || {
                    format!("leader k={k} model={}", entries[0].signature.model)
                })
                .shared();
                group_ctx.scope(|| shared.sweep())?
            };
            let sweep_dur = sweep_started.elapsed();
            self.sweep_hist.record_duration(sweep_dur);
            if cx_obs::tracing_enabled() {
                for e in entries.iter().skip(1) {
                    if let Some(trace) = &e.unit.trace {
                        trace.add_span(
                            "shared_sweep",
                            format!("follower k={k}"),
                            sweep_started,
                            sweep_dur,
                            0,
                            true,
                        );
                    }
                }
            }
            self.metrics.handle(&shared.name()).record(
                outcome.emitted_pairs(shared.min_threshold()),
                1,
                sweep_dur,
            );
            self.scan_queue
                .record_sweep(outcome.stats.panel_rows_saved, outcome.stats.pairs_saved);
            shared.member_states()
        });
        let states = match states {
            Ok(states) => states,
            Err(_) => {
                // Shared sweep failed: fall back to solo execution. The
                // group permit was sized for a *shared* sweep; solo runs
                // do full work, so hand it back and let every member
                // re-admit at its full cost.
                self.scan_queue.record_fallback();
                drop(permit);
                return entries.iter().map(|e| self.execute_solo(&e.unit)).collect();
            }
        };

        // Epilogues run sequentially on this (leader) thread; followers
        // later in line spend that time waiting, which their traces show
        // as `epilogue_wait` so per-member span sums still cover the
        // member's wall clock.
        let epilogues_base = Instant::now();
        entries
            .iter()
            .zip(states)
            .enumerate()
            .map(|(i, (e, state))| {
                // A member whose result got memoized since it queued (an
                // identical query in this very group, say) skips
                // execution — memo hits never re-execute.
                if let Some(result) = self.try_result_memo(&e.unit) {
                    return Ok(result);
                }
                let epi_started = Instant::now();
                if i > 0 {
                    if let Some(trace) = &e.unit.trace {
                        trace.add_span(
                            "epilogue_wait",
                            format!("behind {i} sibling epilogue(s)"),
                            epilogues_base,
                            epi_started.saturating_duration_since(epilogues_base),
                            0,
                            false,
                        );
                    }
                }
                // Per-member blast radius: a panicking epilogue (injected
                // or genuine) costs this member a transient error — its
                // siblings' epilogues still run off the same sweep. A
                // member past its deadline (or cancelled, or over budget)
                // exits here without killing the group.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let _scope = cx_obs::install_trace(e.unit.trace.as_ref());
                    let _epi = cx_obs::span_with("epilogue", || format!("member {i}/{k}"));
                    if let Some(plan) = &fault {
                        if let Err(err) = plan.strike(FaultSite::Epilogue) {
                            cx_obs::event("fault", || "epilogue".into());
                            return Err(err);
                        }
                    }
                    e.unit.ctx.check()?;
                    // Injection failing (operator refuses the state) is
                    // fine: the member simply runs its solo scan inside
                    // the same execution.
                    e.node.inject_shared_scan(state);
                    self.run_unit(&e.unit, true)
                }));
                outcome.unwrap_or_else(|_| {
                    self.lifecycle.contained_panics.fetch_add(1, Ordering::Relaxed);
                    Err(QueryError::Transient("epilogue panicked (contained)".into()).into())
                })
            })
            .collect()
    }

    /// The batcher for `model` (created on first use), or `None` for
    /// models the engine does not know.
    pub fn batcher(&self, model: &str) -> Option<Arc<EmbedBatcher>> {
        if let Some(b) = self.batchers.read().get(model) {
            return Some(b.clone());
        }
        let cache = self.engine.embedding_cache(model)?;
        let mut map = self.batchers.write();
        Some(
            map.entry(model.to_string())
                .or_insert_with(|| {
                    Arc::new(EmbedBatcher::new(
                        cache,
                        BatcherConfig {
                            max_batch: self.config.batch_max,
                            linger: self.config.batch_linger,
                        },
                    ))
                })
                .clone(),
        )
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// Multi-query scan-sharing counters.
    pub fn scan_sharing_stats(&self) -> ScanQueueStats {
        self.scan_queue.stats()
    }

    /// Lifecycle-policy counters.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        self.lifecycle.snapshot()
    }

    /// Full counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let mut batchers: Vec<(String, BatcherStats)> = self
            .batchers
            .read()
            .iter()
            .map(|(name, b)| (name.clone(), b.stats()))
            .collect();
        batchers.sort_by(|a, b| a.0.cmp(&b.0));
        ServerStats {
            queries: self.queries.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            prepared_queries: self.prepared_queries.load(Ordering::Relaxed),
            result_cache_hits: self.result_hits.load(Ordering::Relaxed),
            plan_cache: self.plan_cache.stats(),
            admission: self.gate.stats(),
            scan_sharing: self.scan_queue.stats(),
            lifecycle: self.lifecycle.snapshot(),
            sql: self.sql.snapshot(),
            batchers,
            simd: cx_simd::KernelDispatch::active().report(),
        }
    }

    /// Recent finished traces, oldest first (empty unless
    /// [`ServeConfig::tracing`] is on).
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.trace_ring.recent()
    }

    /// The most recently finished trace, if any.
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.trace_ring.last()
    }

    /// Rendered span trees of queries that exceeded
    /// [`ServeConfig::slow_query_threshold`], oldest first, bounded.
    pub fn slow_queries(&self) -> Vec<String> {
        self.slow_log.lock().iter().cloned().collect()
    }

    /// End-to-end serve latency distribution (always recorded).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Admission queue-wait distribution (always recorded).
    pub fn queue_wait_histogram(&self) -> &Histogram {
        &self.queue_wait_hist
    }

    /// Shared-sweep duration distribution (always recorded).
    pub fn sweep_histogram(&self) -> &Histogram {
        &self.sweep_hist
    }

    /// The structured incident log the watchdog appends to (queryable as
    /// `cx.incidents`; empty when no watchdog is configured and nothing
    /// was appended manually).
    pub fn incidents(&self) -> &Arc<IncidentLog> {
        &self.incidents
    }

    /// The server-level per-operator execution metrics (backs
    /// `cx.histograms` operator rows and the report's operator table).
    pub fn exec_metrics(&self) -> &ExecMetrics {
        &self.metrics
    }

    /// Per-entry plan-cache introspection (backs `cx.plan_cache`).
    pub fn plan_cache_entries(&self) -> Vec<crate::plan_cache::PlanEntryInfo> {
        self.plan_cache.entries()
    }

    /// Aggregated resource usage across profiled queries (all zeros
    /// unless [`ServeConfig::profiling`] is on).
    pub fn profile_totals(&self) -> ProfileTotalsStats {
        self.profile_totals.snapshot()
    }

    /// Installs (or, with `None`, removes) an injectable millisecond
    /// timestamp source used for metrics-snapshot stamps and watchdog
    /// incident times. Tests inject a frozen or stepped clock so diffed
    /// exports are deterministic; production leaves the wall clock.
    pub fn set_timestamp_source(&self, source: Option<Arc<dyn Fn() -> u64 + Send + Sync>>) {
        *self.timestamp_source.write() = source;
    }

    /// The current timestamp in milliseconds from the installed source
    /// (wall clock since the Unix epoch by default).
    pub fn now_ms(&self) -> u64 {
        if let Some(source) = self.timestamp_source.read().as_ref() {
            return source();
        }
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64)
    }

    /// Captures every server counter, cache rate, histogram quantile, and
    /// per-operator metric into one exportable [`MetricsSnapshot`] —
    /// render it with [`MetricsSnapshot::to_prometheus`] /
    /// [`MetricsSnapshot::to_json`] (or the [`Server::prometheus`] /
    /// [`Server::metrics_json`] shorthands).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let s = self.stats();
        let mut m = MetricsSnapshot::new();
        m.counter("cx_serve_queries_total", "Queries served", &[], s.queries);
        m.counter("cx_serve_sessions_total", "Sessions opened", &[], s.sessions);
        m.counter(
            "cx_serve_prepared_queries_total",
            "Prepared-statement executions served",
            &[],
            s.prepared_queries,
        );
        m.counter(
            "cx_serve_result_cache_hits_total",
            "Queries answered from a result memo",
            &[],
            s.result_cache_hits,
        );
        let pc = &s.plan_cache;
        m.counter("cx_serve_plan_cache_hits_total", "Plan cache hits", &[], pc.hits);
        m.counter("cx_serve_plan_cache_misses_total", "Plan cache misses", &[], pc.misses);
        m.counter(
            "cx_serve_plan_cache_invalidations_total",
            "Plans invalidated by catalog changes",
            &[],
            pc.invalidations,
        );
        m.counter(
            "cx_serve_plan_cache_evictions_total",
            "Plans evicted by capacity",
            &[],
            pc.evictions,
        );
        m.gauge("cx_serve_plan_cache_len", "Plans currently cached", &[], pc.len as f64);
        m.gauge("cx_serve_plan_cache_hit_rate", "Plan cache hit rate", &[], pc.hit_rate());
        let a = &s.admission;
        m.counter("cx_serve_admission_admitted_total", "Queries admitted", &[], a.admitted);
        m.counter(
            "cx_serve_admission_waited_total",
            "Admissions that had to wait",
            &[],
            a.waited,
        );
        m.counter(
            "cx_serve_admission_shed_total",
            "Queries shed at the admission gate",
            &[],
            a.shed,
        );
        m.counter(
            "cx_serve_admission_abandoned_total",
            "Admission waits abandoned (deadline/cancel)",
            &[],
            a.abandoned,
        );
        m.gauge("cx_serve_admission_in_use", "Admitted cost currently executing", &[], a.in_use);
        m.gauge(
            "cx_serve_admission_active",
            "Queries currently holding permits",
            &[],
            a.active as f64,
        );
        m.gauge(
            "cx_serve_admission_capacity",
            "Total admission capacity",
            &[],
            self.gate.capacity(),
        );
        let sc = &s.scan_sharing;
        m.counter("cx_serve_scan_submitted_total", "Queries entering the scan queue", &[], sc.submitted);
        m.counter("cx_serve_scan_groups_total", "Scan groups drained", &[], sc.groups);
        m.counter(
            "cx_serve_scan_grouped_queries_total",
            "Queries drained through groups",
            &[],
            sc.grouped_queries,
        );
        m.counter(
            "cx_serve_scan_shared_groups_total",
            "Groups that actually coalesced",
            &[],
            sc.shared_groups,
        );
        m.counter(
            "cx_serve_scan_shared_queries_total",
            "Queries answered by a shared sweep",
            &[],
            sc.shared_queries,
        );
        m.gauge("cx_serve_scan_max_group", "Largest group drained", &[], sc.max_group as f64);
        m.counter(
            "cx_serve_scan_panel_rows_saved_total",
            "Panel row materializations avoided by sharing",
            &[],
            sc.panel_rows_saved,
        );
        m.counter(
            "cx_serve_scan_pairs_saved_total",
            "Similarity pairs deduplicated across queries",
            &[],
            sc.pairs_saved,
        );
        m.counter(
            "cx_serve_scan_sweep_fallbacks_total",
            "Shared sweeps that fell back to solo execution",
            &[],
            sc.sweep_fallbacks,
        );
        let l = &s.lifecycle;
        m.counter(
            "cx_serve_deadline_exceeded_total",
            "Queries past their deadline",
            &[],
            l.deadline_exceeded,
        );
        m.counter("cx_serve_cancelled_total", "Queries cancelled", &[], l.cancelled);
        m.counter(
            "cx_serve_budget_exceeded_total",
            "Queries over memory budget",
            &[],
            l.budget_exceeded,
        );
        m.counter(
            "cx_serve_transient_failures_total",
            "Queries that failed transiently (after any retry)",
            &[],
            l.transient_failures,
        );
        m.counter("cx_serve_retries_total", "Solo retries after transient failures", &[], l.retries);
        m.counter(
            "cx_serve_contained_panics_total",
            "Panics contained at the query boundary",
            &[],
            l.contained_panics,
        );
        let sq = &s.sql;
        m.counter("cx_serve_sql_statements_total", "SQL statements accepted", &[], sq.statements);
        m.counter(
            "cx_serve_sql_auto_param_total",
            "Ad-hoc SQL statements auto-parameterized into prepared shapes",
            &[],
            sq.auto_param,
        );
        m.counter(
            "cx_serve_sql_auto_param_shape_hits_total",
            "Auto-parameterized statements resolved by a cached shape",
            &[],
            sq.auto_param_shape_hits,
        );
        m.counter(
            "cx_serve_sql_exact_fallback_total",
            "Ad-hoc SQL statements with nothing to lift (exact planning)",
            &[],
            sq.exact_fallback,
        );
        m.counter(
            "cx_serve_sql_errors_total",
            "SQL statements rejected at parse or bind",
            &[],
            sq.errors,
        );
        m.gauge(
            "cx_serve_sql_shape_hit_rate",
            "Auto-parameterized shape hit rate",
            &[],
            sq.shape_hit_rate(),
        );
        if let Some(f) = self.fault_stats() {
            for (i, site) in FaultSite::ALL.iter().enumerate() {
                m.counter(
                    "cx_serve_faults_injected_total",
                    "Faults injected by the installed plan, by site",
                    &[("site", site.label())],
                    f.per_site[i],
                );
            }
        }
        for (model, b) in &s.batchers {
            let labels: &[(&str, &str)] = &[("model", model.as_str())];
            m.counter("cx_serve_batcher_requests_total", "Warm requests submitted", labels, b.requests);
            m.counter(
                "cx_serve_batcher_texts_requested_total",
                "Texts requested for warming",
                labels,
                b.texts_requested,
            );
            m.counter(
                "cx_serve_batcher_texts_enqueued_total",
                "Texts enqueued for embedding",
                labels,
                b.texts_enqueued,
            );
            m.counter(
                "cx_serve_batcher_texts_already_cached_total",
                "Texts skipped as already cached",
                labels,
                b.texts_already_cached,
            );
            m.counter(
                "cx_serve_batcher_texts_coalesced_total",
                "Texts coalesced with concurrent requests",
                labels,
                b.texts_coalesced,
            );
            m.counter("cx_serve_batcher_batches_total", "Batches flushed", labels, b.batches);
            m.counter(
                "cx_serve_batcher_batched_texts_total",
                "Texts embedded through batches",
                labels,
                b.batched_texts,
            );
            m.counter(
                "cx_serve_batcher_coalesced_batches_total",
                "Batches serving more than one submitter",
                labels,
                b.coalesced_batches,
            );
            m.gauge(
                "cx_serve_batcher_max_batch_size",
                "Largest batch flushed",
                labels,
                b.max_batch_size as f64,
            );
            m.gauge(
                "cx_serve_batcher_max_batch_submitters",
                "Most submitters served by one batch",
                labels,
                b.max_batch_submitters as f64,
            );
            m.counter(
                "cx_serve_batcher_failed_batches_total",
                "Batches that failed to embed",
                labels,
                b.failed_batches,
            );
        }
        m.summary_from_hist(
            "cx_serve_query_latency_ns",
            "End-to-end serve latency (ns)",
            &[],
            &self.latency_hist,
        );
        m.summary_from_hist(
            "cx_serve_queue_wait_ns",
            "Admission queue wait (ns)",
            &[],
            &self.queue_wait_hist,
        );
        m.summary_from_hist(
            "cx_serve_sweep_ns",
            "Shared-sweep duration (ns)",
            &[],
            &self.sweep_hist,
        );
        for (op, h) in self.metrics.handles() {
            let labels: &[(&str, &str)] = &[("operator", op.as_str())];
            m.counter(
                "cx_exec_operator_rows_total",
                "Rows emitted per operator",
                labels,
                h.rows_out(),
            );
            m.summary_from_hist(
                "cx_exec_operator_latency_ns",
                "Per-execution operator latency (ns)",
                labels,
                h.latency(),
            );
        }
        m.gauge("cx_obs_trace_ring_len", "Finished traces retained", &[], self.trace_ring.len() as f64);
        let p = self.profile_totals.snapshot();
        m.counter(
            "cx_serve_profiled_queries_total",
            "Queries that ran with a resource profile",
            &[],
            p.profiled_queries,
        );
        m.counter(
            "cx_serve_profile_cpu_ns_total",
            "Thread CPU time across profiled queries (ns)",
            &[],
            p.cpu_ns,
        );
        m.counter(
            "cx_serve_profile_allocs_total",
            "Heap allocations across profiled queries",
            &[],
            p.alloc_count,
        );
        m.counter(
            "cx_serve_profile_alloc_bytes_total",
            "Heap bytes requested across profiled queries",
            &[],
            p.alloc_bytes,
        );
        m.counter(
            "cx_serve_profile_pairs_scored_total",
            "Similarity pairs scored across profiled queries",
            &[],
            p.pairs_scored,
        );
        m.counter(
            "cx_serve_profile_panel_tiles_total",
            "Panel tiles touched across profiled queries",
            &[],
            p.panel_tiles,
        );
        m.counter(
            "cx_serve_profile_bytes_charged_total",
            "Bytes charged against memory budgets across profiled queries",
            &[],
            p.bytes_charged,
        );
        m.counter(
            "cx_obs_incidents_total",
            "Watchdog incidents recorded since startup",
            &[],
            self.incidents.total(),
        );
        m.gauge(
            "cx_obs_incidents_retained",
            "Watchdog incidents currently retained",
            &[],
            self.incidents.len() as f64,
        );
        m.gauge(
            "cx_serve_simd_info",
            &format!("Resolved SIMD dispatch: {}", s.simd),
            &[("dispatch", s.simd.as_str())],
            1.0,
        );
        let seq = self.snapshot_seq.fetch_add(1, Ordering::Relaxed);
        m.set_timestamp(self.now_ms(), seq);
        m
    }

    /// The metrics snapshot rendered in the Prometheus text exposition
    /// format (scrape surface; also written by the bench binaries).
    pub fn prometheus(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// The metrics snapshot rendered as JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Human-readable server report: serving counters plus the aggregated
    /// per-operator execution metrics.
    pub fn report(&self) -> String {
        let s = self.stats();
        let mut out = String::new();
        out.push_str(&format!(
            "queries: {} across {} sessions ({} prepared)\n",
            s.queries, s.sessions, s.prepared_queries
        ));
        out.push_str(&format!("result memo: {} hits\n", s.result_cache_hits));
        out.push_str(&format!(
            "plan cache: {} hits / {} misses (hit rate {:.1}%), {} cached, {} invalidated, {} evicted\n",
            s.plan_cache.hits,
            s.plan_cache.misses,
            100.0 * s.plan_cache.hit_rate(),
            s.plan_cache.len,
            s.plan_cache.invalidations,
            s.plan_cache.evictions,
        ));
        out.push_str(&format!(
            "admission: {} admitted, {} waited, {} shed, {} abandoned (capacity {:.0}, in use {:.0})\n",
            s.admission.admitted,
            s.admission.waited,
            s.admission.shed,
            s.admission.abandoned,
            self.gate.capacity(),
            s.admission.in_use,
        ));
        out.push_str(&format!(
            "lifecycle: {} deadline-exceeded, {} cancelled, {} over budget, \
             {} transient failures, {} retries, {} contained panics\n",
            s.lifecycle.deadline_exceeded,
            s.lifecycle.cancelled,
            s.lifecycle.budget_exceeded,
            s.lifecycle.transient_failures,
            s.lifecycle.retries,
            s.lifecycle.contained_panics,
        ));
        if s.sql.statements > 0 {
            out.push_str(&format!(
                "sql: {} statements ({} auto-parameterized, {} shape hits, \
                 {} exact fallbacks, {} errors)\n",
                s.sql.statements,
                s.sql.auto_param,
                s.sql.auto_param_shape_hits,
                s.sql.exact_fallback,
                s.sql.errors,
            ));
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let lat = self.latency_hist.snapshot();
        out.push_str(&format!(
            "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms ({} samples)\n",
            ms(lat.p50),
            ms(lat.p95),
            ms(lat.p99),
            ms(lat.max),
            lat.count,
        ));
        let qw = self.queue_wait_hist.snapshot();
        out.push_str(&format!(
            "queue wait: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms ({} samples)\n",
            ms(qw.p50),
            ms(qw.p95),
            ms(qw.p99),
            ms(qw.max),
            qw.count,
        ));
        let sw = self.sweep_hist.snapshot();
        if sw.count > 0 {
            out.push_str(&format!(
                "shared sweeps: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms ({} samples)\n",
                ms(sw.p50),
                ms(sw.p95),
                ms(sw.p99),
                ms(sw.max),
                sw.count,
            ));
        }
        if self.config.tracing {
            out.push_str(&format!(
                "tracing: on, {} trace(s) retained (capacity {}), {} slow-query log entries\n",
                self.trace_ring.len(),
                self.trace_ring.capacity(),
                self.slow_log.lock().len(),
            ));
        }
        // One quantile line over *all* operators: every per-operator
        // latency histogram merged into a scratch histogram (bucketed
        // merge is exact — same geometry on both sides).
        let merged = Histogram::new();
        for (_, h) in self.metrics.handles() {
            merged.merge(h.latency());
        }
        let ao = merged.snapshot();
        if ao.count > 0 {
            out.push_str(&format!(
                "all operators: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms ({} executions)\n",
                ms(ao.p50),
                ms(ao.p95),
                ms(ao.p99),
                ms(ao.max),
                ao.count,
            ));
        }
        if self.config.profiling {
            let p = self.profile_totals.snapshot();
            out.push_str(&format!(
                "profiler: {} queries profiled, cpu {:.3} ms, {} allocs ({} B), \
                 {} pairs scored, {} tiles, {} B charged\n",
                p.profiled_queries,
                p.cpu_ns as f64 / 1e6,
                p.alloc_count,
                p.alloc_bytes,
                p.pairs_scored,
                p.panel_tiles,
                p.bytes_charged,
            ));
        }
        if self.config.watchdog.is_some() || self.incidents.total() > 0 {
            out.push_str(&format!(
                "watchdog: {} incident(s) recorded, {} retained\n",
                self.incidents.total(),
                self.incidents.len(),
            ));
        }
        out.push_str(&format!("simd kernels: {}\n", s.simd));
        out.push_str(&format!(
            "scan sharing: {} queries coalesced into {} shared groups (max group {}), \
             {} panel rows saved, {} pairs deduped, {} fallbacks\n",
            s.scan_sharing.shared_queries,
            s.scan_sharing.shared_groups,
            s.scan_sharing.max_group,
            s.scan_sharing.panel_rows_saved,
            s.scan_sharing.pairs_saved,
            s.scan_sharing.sweep_fallbacks,
        ));
        if let Some(plan) = self.fault_plan() {
            let f = plan.stats();
            out.push_str(&format!(
                "fault injection [seed {}]: {} faults (",
                plan.seed(),
                f.total()
            ));
            for (i, site) in FaultSite::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{site} {}", f.per_site[i]));
            }
            out.push_str(")\n");
        }
        for (model, b) in &s.batchers {
            out.push_str(&format!(
                "embed batcher [{model}]: {} batches / {} texts (max batch {}, max submitters {}), \
                 {} coalesced texts, {} already cached\n",
                b.batches,
                b.batched_texts,
                b.max_batch_size,
                b.max_batch_submitters,
                b.texts_coalesced,
                b.texts_already_cached,
            ));
        }
        out.push_str("operator metrics:\n");
        out.push_str(&self.metrics.report());
        out
    }

    /// Submits every semantic operator's embedding working set to the
    /// per-model batchers and blocks until the cache holds it. Best-effort
    /// and purely a performance hint — except under an installed fault
    /// plan, whose [`FaultSite::Embed`] strikes fire here (per model
    /// batch) on the query thread. Anything missed (renamed columns,
    /// post-filter subsets, capped columns) embeds inside the operator
    /// exactly as before.
    fn warm_embeddings(&self, plan: &LogicalPlan) -> Result<()> {
        let mut warm_span = cx_obs::span("embed_warm");
        let fault = self.fault_plan();
        let mut requests: BTreeMap<String, Vec<String>> = BTreeMap::new();
        collect_warm_requests(plan, self, &mut requests);
        let mut warmed = 0usize;
        for (model, texts) in requests {
            if let Some(batcher) = self.batcher(&model) {
                if let Some(plan) = &fault {
                    if let Err(e) = plan.strike(crate::faults::FaultSite::Embed) {
                        cx_obs::event("fault", || "embed".into());
                        return Err(e);
                    }
                }
                warmed += texts.len();
                batcher.warm(&texts);
            }
        }
        warm_span.set_detail(format!("{warmed} texts"));
        Ok(())
    }

    /// Distinct string values of `column` across the base tables scanned
    /// under `plan` that the `model`'s cache does not already hold — a
    /// (superset) estimate of what a semantic operator on `column` will
    /// still need to embed. Filtering through
    /// [`cx_embed::EmbeddingCache::contains`] at collection time keeps a
    /// warm server from re-cloning a table's whole distinct set on every
    /// plan-cache miss just to learn it was all cached. `warm_limit`
    /// budgets each call separately (`cap` is absolute: the `out` length
    /// this call may grow to), so one huge column cannot consume a later
    /// column's budget.
    fn column_values(&self, plan: &LogicalPlan, column: &str, model: &str, out: &mut Vec<String>) {
        let Some(cache) = self.engine.embedding_cache(model) else {
            return;
        };
        let cap = out.len().saturating_add(self.config.warm_limit);
        self.column_values_capped(plan, column, &cache, cap, out);
    }

    fn column_values_capped(
        &self,
        plan: &LogicalPlan,
        column: &str,
        cache: &cx_embed::EmbeddingCache,
        cap: usize,
        out: &mut Vec<String>,
    ) {
        if let LogicalPlan::Scan { source, schema } = plan {
            let is_utf8 = schema
                .field(column)
                .map(|f| f.data_type == cx_storage::DataType::Utf8)
                .unwrap_or(false);
            if is_utf8 {
                if let Some(table) = self.engine.catalog().table(source) {
                    if let Ok(col) = table.column_by_name(column) {
                        if let Ok(values) = col.utf8_values() {
                            let mut seen: HashSet<&str> = HashSet::new();
                            for v in values {
                                if out.len() >= cap {
                                    break;
                                }
                                if seen.insert(v.as_str()) && !cache.contains(v) {
                                    out.push(v.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        for child in plan.children() {
            if out.len() >= cap {
                break;
            }
            self.column_values_capped(child, column, cache, cap, out);
        }
    }
}

/// True when any scan under `plan` reads a live `cx.*` system table —
/// such plans must never serve from or populate the result memo.
fn plan_scans_system_table(plan: &LogicalPlan) -> bool {
    if let LogicalPlan::Scan { source, .. } = plan {
        if cx_obs::is_reserved_name(source) {
            return true;
        }
    }
    plan.children().into_iter().any(plan_scans_system_table)
}

/// Walks `plan` collecting, per model, the texts its semantic operators
/// will embed.
fn collect_warm_requests(
    plan: &LogicalPlan,
    server: &Server,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    match plan {
        LogicalPlan::SemanticFilter { input, column, target, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            // A parameterized probe has no text to warm; the bound value
            // embeds through the cache at execute time.
            if let Some(text) = target.text() {
                dst.push(text.to_string());
            }
            server.column_values(input, column, model, dst);
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            let dst = out.entry(spec.model.clone()).or_default();
            server.column_values(left, &spec.left_column, &spec.model, dst);
            server.column_values(right, &spec.right_column, &spec.model, dst);
        }
        LogicalPlan::SemanticGroupBy { input, column, model, .. } => {
            let dst = out.entry(model.clone()).or_default();
            server.column_values(input, column, model, dst);
        }
        _ => {}
    }
    for child in plan.children() {
        collect_warm_requests(child, server, out);
    }
}

/// A per-client handle onto a shared [`Server`].
pub struct Session {
    server: Arc<Server>,
    id: u64,
    pub(crate) queries: AtomicU64,
    /// Per-session optimizer override (`None` = the engine's config).
    config: Mutex<Option<OptimizerConfig>>,
    /// Named prepared statements (`PREPARE name AS ...` through
    /// [`Session::sql`]); session-scoped, like any SQL client's.
    pub(crate) statements: Mutex<HashMap<String, Arc<Prepared>>>,
}

impl Session {
    /// This session's id (assigned in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The server this session talks to.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Starts a query over table `name`.
    pub fn table(&self, name: &str) -> Result<Query> {
        self.server.table(name)
    }

    /// The optimizer configuration this session's queries run under.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.config
            .lock()
            .unwrap_or(self.server.engine().config().optimizer)
    }

    /// Lets this session trade recall for latency without touching other
    /// sessions or the engine: raises (or clears, with `0.0`) the
    /// session's quantization `recall_tolerance`. The override flows
    /// into the plan-cache key through the config fingerprint, so
    /// sessions at different tolerances partition the cache naturally —
    /// no forking, no cross-talk — and likewise never share a scan
    /// group with sessions at other configurations.
    pub fn set_recall_tolerance(&self, tolerance: f64) {
        let mut config = self.optimizer_config();
        config.recall_tolerance = tolerance;
        *self.config.lock() = Some(config);
    }

    /// Replaces this session's whole optimizer configuration.
    pub fn set_optimizer_config(&self, config: OptimizerConfig) {
        *self.config.lock() = Some(config);
    }

    /// Drops any per-session override, returning to the engine's config.
    pub fn reset_optimizer_config(&self) {
        *self.config.lock() = None;
    }

    /// Serves one query through the shared server, under this session's
    /// optimizer configuration.
    pub fn execute(&self, query: &Query) -> Result<ServeResult> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.server
            .serve_query(query, self.optimizer_config(), &QueryOptions::default())
    }

    /// Serves one query under explicit lifecycle options (deadline,
    /// cancellation token, memory budget) and this session's optimizer
    /// configuration.
    pub fn execute_with_options(
        &self,
        query: &Query,
        options: &QueryOptions,
    ) -> Result<ServeResult> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.server.serve_query(query, self.optimizer_config(), options)
    }

    /// Prepares a query template for repeated execution with different
    /// parameter bindings: optimizes and lowers it once (the plan enters
    /// the server's plan cache keyed by the template's *shape*), and
    /// returns a handle whose [`Prepared::execute`] binds values into the
    /// cached physical plan — no re-optimization, no re-lowering, results
    /// memoized per binding vector.
    ///
    /// The handle snapshots this session's optimizer configuration;
    /// re-prepare after [`Session::set_optimizer_config`] to pick up a
    /// new one. Stale handles are safe: a catalog registration after
    /// `prepare` makes the next `execute` transparently re-optimize.
    ///
    /// ```
    /// use context_engine::{Engine, EngineConfig};
    /// use cx_embed::HashNGramModel;
    /// use cx_serve::{ServeConfig, Server};
    /// use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(Engine::new(EngineConfig::default()));
    /// engine.register_model(Arc::new(HashNGramModel::new(42)));
    /// let names = Table::from_columns(
    ///     Schema::new(vec![Field::new("name", DataType::Utf8)]),
    ///     vec![Column::from_strings(["boots", "mug", "boots"])],
    /// ).unwrap();
    /// engine.register_table("products", names).unwrap();
    ///
    /// let server = Server::new(engine, ServeConfig::default());
    /// let session = server.session();
    /// let template = session.table("products").unwrap()
    ///     .semantic_filter_param("name", 0, "hash-ngram", 0.99);
    /// let prepared = session.prepare(&template).unwrap();
    /// let boots = prepared.execute(&[Scalar::from("boots")]).unwrap();
    /// let mugs = prepared.execute(&[Scalar::from("mug")]).unwrap();
    /// assert_eq!(boots.table.num_rows(), 2);
    /// assert_eq!(mugs.table.num_rows(), 1);
    /// // The second execution reused the cached plan shape.
    /// assert!(mugs.plan_cache_hit);
    /// ```
    pub fn prepare(&self, query: &Query) -> Result<Prepared> {
        Prepared::new(self.server.clone(), query.clone(), self.optimizer_config())
    }

    /// Executes `query` with tracing forced on *for this one query* and
    /// returns its rendered span tree — `EXPLAIN ANALYZE` for the serving
    /// layer. Works regardless of [`ServeConfig::tracing`]: the forced
    /// trace lives only as long as this call (with tracing off the
    /// server's ring has capacity 0, so nothing is retained and
    /// concurrent queries still pay one relaxed atomic load per span
    /// site). The query executes for real, through the full serving path.
    ///
    /// ```
    /// use context_engine::{Engine, EngineConfig};
    /// use cx_embed::HashNGramModel;
    /// use cx_serve::{ServeConfig, Server};
    /// use cx_storage::{Column, DataType, Field, Schema, Table};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(Engine::new(EngineConfig::default()));
    /// engine.register_model(Arc::new(HashNGramModel::new(42)));
    /// let names = Table::from_columns(
    ///     Schema::new(vec![Field::new("name", DataType::Utf8)]),
    ///     vec![Column::from_strings(["boots", "mug", "boots"])],
    /// ).unwrap();
    /// engine.register_table("products", names).unwrap();
    ///
    /// // Tracing stays OFF server-wide; the analyze call traces anyway.
    /// let server = Server::new(engine, ServeConfig::default());
    /// let session = server.session();
    /// let query = session.table("products").unwrap()
    ///     .semantic_filter("name", "boots", "hash-ngram", 0.99);
    /// let rendered = session.explain_analyze(&query).unwrap();
    /// assert!(rendered.contains("plan_cache"), "{rendered}");
    /// assert!(rendered.contains("execute"), "{rendered}");
    /// assert!(session.last_trace().is_none(), "nothing retained");
    /// ```
    pub fn explain_analyze(&self, query: &Query) -> Result<String> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let result = self.server.serve_query_inner(
            query,
            self.optimizer_config(),
            &QueryOptions::default(),
            true,
        )?;
        Ok(result.trace.map(|t| t.render()).unwrap_or_default())
    }

    /// Queries served through this session.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The most recently finished query trace on the shared server
    /// (`None` unless the server was configured with
    /// [`ServeConfig::tracing`]). The trace is also attached to the
    /// [`ServeResult`] itself; this accessor serves clients that only
    /// kept the table.
    ///
    /// ```
    /// use context_engine::{Engine, EngineConfig};
    /// use cx_embed::HashNGramModel;
    /// use cx_serve::{ServeConfig, Server};
    /// use cx_storage::{Column, DataType, Field, Schema, Table};
    /// use std::sync::Arc;
    ///
    /// let engine = Arc::new(Engine::new(EngineConfig::default()));
    /// engine.register_model(Arc::new(HashNGramModel::new(42)));
    /// let names = Table::from_columns(
    ///     Schema::new(vec![Field::new("name", DataType::Utf8)]),
    ///     vec![Column::from_strings(["boots", "mug", "boots"])],
    /// ).unwrap();
    /// engine.register_table("products", names).unwrap();
    ///
    /// let config = ServeConfig { tracing: true, ..ServeConfig::default() };
    /// let server = Server::new(engine, config);
    /// let session = server.session();
    /// let query = session.table("products").unwrap()
    ///     .semantic_filter("name", "boots", "hash-ngram", 0.99);
    /// let result = session.execute(&query).unwrap();
    ///
    /// let trace = session.last_trace().expect("tracing is on");
    /// let rendered = trace.render();
    /// assert!(rendered.contains("plan_cache"), "{rendered}");
    /// assert!(rendered.contains("execute"), "{rendered}");
    /// assert_eq!(result.trace.as_ref().unwrap().outcome().as_deref(), Some("ok"));
    /// ```
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.server.last_trace()
    }
}

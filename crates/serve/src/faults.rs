//! Deterministic, seed-driven fault injection for the serving stack.
//!
//! A [`FaultPlan`] is an *optional, runtime-installed* chaos schedule:
//! when a server carries one ([`crate::Server::set_fault_plan`]), the
//! serving hot path consults it at five named boundaries
//! ([`FaultSite`]) and — per the plan's seeded dice — raises a panic,
//! injects a delay, or returns a transient error right there. With no
//! plan installed the hooks cost one relaxed atomic load.
//!
//! Determinism is the design center: each site keeps its own draw
//! counter, and the decision for draw `n` at site `s` is a pure
//! function of `(seed, s, n)` (a SplitMix64 mix). A chaos run with a
//! given seed injects the same faults at the same points every time —
//! so a storm that finds a bug is a reproducer, not an anecdote. (With
//! multiple client threads, *which query* makes a site's n-th draw
//! still depends on scheduling; the fault schedule itself does not.)
//!
//! The harness is deliberately runtime-gated rather than
//! feature-gated: the chaos tests must run under the repo's plain
//! tier-1 `cargo test`, and a disabled plan is one branch — there is
//! nothing worth compiling out.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cx_storage::{Error, QueryError, Result};

/// Number of injection sites (array sizing for per-site counters).
const SITES: usize = 5;

/// The serving-stack boundaries a [`FaultPlan`] can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Inside the embed batcher's flusher, around the model pass.
    Embed,
    /// Before admission (the cost gate) on the query thread.
    Admission,
    /// Around the shared panel sweep inside a group drain.
    Sweep,
    /// At the top of a group drain, on the leader thread.
    Drain,
    /// Before one member's epilogue inside a group drain.
    Epilogue,
}

impl FaultSite {
    /// All sites, for test matrices.
    pub const ALL: [FaultSite; SITES] = [
        FaultSite::Embed,
        FaultSite::Admission,
        FaultSite::Sweep,
        FaultSite::Drain,
        FaultSite::Epilogue,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::Embed => 0,
            FaultSite::Admission => 1,
            FaultSite::Sweep => 2,
            FaultSite::Drain => 3,
            FaultSite::Epilogue => 4,
        }
    }

    /// Lowercase site name (stats/report lines).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Embed => "embed",
            FaultSite::Admission => "admission",
            FaultSite::Sweep => "sweep",
            FaultSite::Drain => "drain",
            FaultSite::Epilogue => "epilogue",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What an injection point does when the dice say "fault".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site — exercises the containment boundaries
    /// (batcher/drain `catch_unwind`, the server's top-level guard).
    Panic,
    /// Sleep at the site — exercises deadlines and linger bounds.
    Delay,
    /// Return [`QueryError::Transient`] — exercises the retry-once
    /// policy.
    Transient,
}

/// Counters of faults actually injected, per site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected faults per [`FaultSite::ALL`] order.
    pub per_site: [u64; SITES],
}

impl FaultStats {
    /// Total faults injected across all sites.
    pub fn total(&self) -> u64 {
        self.per_site.iter().sum()
    }
}

/// A deterministic chaos schedule: at each consulted site, draw from a
/// seeded stream and fault with the configured probability.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Fault probability per draw, in parts per 10_000.
    rate_bp: u64,
    delay: Duration,
    draws: [AtomicU64; SITES],
    injected: [AtomicU64; SITES],
}

/// SplitMix64: the standard 64-bit finalizing mix; every decision is a
/// pure function of the mixed input, which is what makes runs replay.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan faulting with probability `rate` (clamped to `[0, 1]`) per
    /// consulted site, seeded by `seed`. Injected delays default to 2 ms
    /// ([`Self::with_delay`] overrides).
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate_bp = (rate.clamp(0.0, 1.0) * 10_000.0).round() as u64;
        FaultPlan {
            seed,
            rate_bp,
            delay: Duration::from_millis(2),
            draws: Default::default(),
            injected: Default::default(),
        }
    }

    /// Sets the sleep injected by [`FaultKind::Delay`] faults.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next decision for `site`: `None` = proceed normally.
    /// Decision `n` at a site depends only on `(seed, site, n)`.
    pub fn roll(&self, site: FaultSite) -> Option<FaultKind> {
        if self.rate_bp == 0 {
            return None;
        }
        let i = site.index();
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.seed ^ splitmix64((i as u64) << 32 | n));
        if h % 10_000 >= self.rate_bp {
            return None;
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        Some(match (h >> 16) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Delay,
            _ => FaultKind::Transient,
        })
    }

    /// Snapshot of injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        let mut per_site = [0u64; SITES];
        for (out, c) in per_site.iter_mut().zip(&self.injected) {
            *out = c.load(Ordering::Relaxed);
        }
        FaultStats { per_site }
    }

    /// Acts on one draw at `site`: sleeps on `Delay`, panics on `Panic`
    /// (to be contained by the site's unwind boundary), or returns the
    /// typed transient error for the caller to propagate.
    pub fn strike(&self, site: FaultSite) -> Result<()> {
        match self.roll(site) {
            None => Ok(()),
            Some(FaultKind::Delay) => {
                std::thread::sleep(self.delay);
                Ok(())
            }
            Some(FaultKind::Panic) => panic!("injected fault: panic at {site}"),
            Some(FaultKind::Transient) => {
                Err(Error::Query(QueryError::Transient(format!("injected fault at {site}"))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let plan = FaultPlan::new(42, 0.0);
        for _ in 0..1000 {
            assert_eq!(plan.roll(FaultSite::Embed), None);
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = FaultPlan::new(42, 1.0);
        for _ in 0..100 {
            assert!(plan.roll(FaultSite::Sweep).is_some());
        }
        assert_eq!(plan.stats().total(), 100);
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let draw_all = |seed| {
            let plan = FaultPlan::new(seed, 0.05);
            FaultSite::ALL
                .iter()
                .flat_map(|&s| (0..500).map(|_| (s, plan.roll(s))).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_all(7), draw_all(7));
        assert_ne!(draw_all(7), draw_all(8), "different seeds should differ");
    }

    #[test]
    fn rate_is_roughly_honored() {
        let plan = FaultPlan::new(3, 0.05);
        for _ in 0..10_000 {
            plan.roll(FaultSite::Drain);
        }
        let hit = plan.stats().per_site[FaultSite::Drain.index()];
        assert!((300..=700).contains(&hit), "5% of 10k draws ≈ 500, got {hit}");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::new(11, 0.5);
        let a: Vec<_> = (0..100).map(|_| plan.roll(FaultSite::Embed)).collect();
        let plan2 = FaultPlan::new(11, 0.5);
        let b: Vec<_> = (0..100).map(|_| plan2.roll(FaultSite::Epilogue)).collect();
        assert_ne!(a, b, "per-site streams should not be identical");
    }

    #[test]
    fn strike_maps_transient_to_typed_error() {
        // Rate 1.0 guarantees a fault each draw; scan for a Transient one.
        let plan = FaultPlan::new(5, 1.0);
        let mut saw_transient = false;
        for _ in 0..200 {
            match std::panic::catch_unwind(|| plan.strike(FaultSite::Admission)) {
                Ok(Err(e)) => {
                    assert!(e.is_transient());
                    saw_transient = true;
                }
                Ok(Ok(())) => {} // delay fault
                Err(_) => {}     // panic fault
            }
        }
        assert!(saw_transient);
    }
}

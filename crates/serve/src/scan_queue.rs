//! The scan queue: groups concurrently queued queries for shared sweeps.
//!
//! Queries whose cached plans expose equal shared-scan group keys (see
//! `cx_exec::shared`) are held here for a short window so they can be
//! answered by one `cx_mqo::SharedScanExec` sweep instead of one sweep
//! each. The discipline mirrors [`crate::batcher::EmbedBatcher`] —
//! `std::sync::{Mutex, Condvar}`, size/linger flush — but with a
//! **leader/follower** twist instead of a dedicated flusher thread: the
//! first query to arrive for a key becomes the group's leader, lingers
//! for co-runners (up to `group_max` of them, at most `linger` long),
//! then drains the whole group on its own thread while followers block
//! for their results. No background thread, nothing to shut down; an
//! idle server pays nothing — and an *uncontended* query pays nothing
//! either: the caller passes a contention signal, and a leader that is
//! provably alone seals and sweeps immediately instead of lingering.
//!
//! The queue owns grouping and hand-off only; what a "drain" does is the
//! caller's closure (the server sweeps shared panels there). A drain
//! panic is contained: every member of the group gets an error instead
//! of a wedged condvar.

use crate::server::{ExecUnit, ServeResult};
use cx_exec::{PhysicalOperator, ScanSignature};
use cx_storage::{Error, QueryError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Grouping policy.
#[derive(Debug, Clone, Copy)]
pub struct ScanQueueConfig {
    /// Most queries merged into one shared sweep.
    pub group_max: usize,
    /// Longest the group's first query waits for co-runners.
    pub linger: Duration,
}

/// One query waiting for (or leading) a shared sweep.
pub struct GroupEntry {
    /// The query's execution unit: resolved plan, the tree to run (the
    /// cached tree for ad-hoc queries, a parameter-bound copy for
    /// prepared executions), memo slot, and admission weight.
    pub unit: ExecUnit,
    /// The shareable scan node inside the unit's executable tree.
    pub node: Arc<dyn PhysicalOperator>,
    /// Its scan signature (per-query probe/threshold included).
    pub signature: ScanSignature,
    /// When the query entered the scan queue — the start of its
    /// `scan_queue_wait` trace span and group queue-wait accounting.
    pub queued_at: Instant,
}

/// Counter snapshot of a [`ScanQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanQueueStats {
    /// Queries that entered the queue.
    pub submitted: u64,
    /// Groups drained (singletons included).
    pub groups: u64,
    /// Queries drained through groups.
    pub grouped_queries: u64,
    /// Groups that actually coalesced (≥ 2 members).
    pub shared_groups: u64,
    /// Queries answered by a genuinely shared sweep.
    pub shared_queries: u64,
    /// Largest group drained.
    pub max_group: u64,
    /// Candidate-panel row materializations avoided versus solo runs.
    pub panel_rows_saved: u64,
    /// Similarity pairs avoided by cross-query probe deduplication.
    pub pairs_saved: u64,
    /// Groups whose shared sweep failed and fell back to solo execution.
    pub sweep_fallbacks: u64,
}

struct GroupState {
    /// Entries in arrival order; taken (`None`) by the leader at drain.
    entries: Vec<Option<GroupEntry>>,
    /// Per-entry result slots, filled by the leader.
    results: Vec<Option<Result<ServeResult>>>,
    /// Set when the size trigger fires (wakes the lingering leader).
    full: bool,
    /// Set once the leader seals the group; late arrivals start fresh.
    closed: bool,
}

struct GroupCell {
    state: Mutex<GroupState>,
    cv: Condvar,
}

/// Leader/follower group former (see module docs).
pub struct ScanQueue {
    config: ScanQueueConfig,
    groups: Mutex<HashMap<u64, Arc<GroupCell>>>,
    submitted: AtomicU64,
    drained_groups: AtomicU64,
    grouped_queries: AtomicU64,
    shared_groups: AtomicU64,
    shared_queries: AtomicU64,
    max_group: AtomicU64,
    panel_rows_saved: AtomicU64,
    pairs_saved: AtomicU64,
    sweep_fallbacks: AtomicU64,
}

impl ScanQueue {
    /// A queue under `config` (group size clamped to at least 1).
    pub fn new(config: ScanQueueConfig) -> Self {
        ScanQueue {
            config: ScanQueueConfig { group_max: config.group_max.max(1), ..config },
            groups: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            drained_groups: AtomicU64::new(0),
            grouped_queries: AtomicU64::new(0),
            shared_groups: AtomicU64::new(0),
            shared_queries: AtomicU64::new(0),
            max_group: AtomicU64::new(0),
            panel_rows_saved: AtomicU64::new(0),
            pairs_saved: AtomicU64::new(0),
            sweep_fallbacks: AtomicU64::new(0),
        }
    }

    /// Joins (or starts) the group under `key` and blocks until this
    /// query's result is ready. The first arrival leads: it lingers for
    /// co-runners, then runs `drain` over the whole group (entries in
    /// arrival order; the leader's own entry first) and distributes the
    /// returned results, which must be index-aligned with the entries.
    /// Followers never invoke `drain`.
    ///
    /// `contended` is the caller's signal that other queries are in
    /// flight and might join: when `false`, a leader seals and drains
    /// immediately instead of lingering — an uncontended query pays no
    /// grouping latency at all.
    pub fn submit(
        &self,
        key: u64,
        entry: GroupEntry,
        contended: bool,
        drain: impl FnOnce(Vec<GroupEntry>) -> Vec<Result<ServeResult>>,
    ) -> Result<ServeResult> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        loop {
            let cell = {
                let mut map = self.groups.lock().unwrap_or_else(|e| e.into_inner());
                map.entry(key)
                    .or_insert_with(|| {
                        Arc::new(GroupCell {
                            state: Mutex::new(GroupState {
                                entries: Vec::new(),
                                results: Vec::new(),
                                full: false,
                                closed: false,
                            }),
                            cv: Condvar::new(),
                        })
                    })
                    .clone()
            };
            let mut state = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.closed || state.entries.len() >= self.config.group_max {
                // The leader sealed this group between our map lookup and
                // now — or the size trigger fired but the leader has not
                // reacquired the lock yet (`group_max` binds at join time,
                // not just at seal time). Either way: detach the stale
                // slot and start a fresh group.
                drop(state);
                self.detach(key, &cell);
                continue;
            }
            let index = state.entries.len();
            state.entries.push(Some(entry));
            state.results.push(None);
            if index + 1 >= self.config.group_max {
                state.full = true;
                cell.cv.notify_all();
            }
            if index == 0 {
                return self.lead(key, &cell, state, contended, drain);
            }
            // Follower: the leader will post our result.
            loop {
                if let Some(result) = state.results[index].take() {
                    return result;
                }
                state = cell.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Leader path: linger, seal, drain, distribute.
    fn lead(
        &self,
        key: u64,
        cell: &Arc<GroupCell>,
        mut state: MutexGuard<'_, GroupState>,
        contended: bool,
        drain: impl FnOnce(Vec<GroupEntry>) -> Vec<Result<ServeResult>>,
    ) -> Result<ServeResult> {
        let deadline = Instant::now() + self.config.linger;
        while contended && !state.full {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = cell
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        state.closed = true;
        let entries: Vec<GroupEntry> =
            state.entries.iter_mut().map(|e| e.take().expect("entry taken once")).collect();
        drop(state);
        self.detach(key, cell);

        let k = entries.len();
        self.drained_groups.fetch_add(1, Ordering::Relaxed);
        self.grouped_queries.fetch_add(k as u64, Ordering::Relaxed);
        self.max_group.fetch_max(k as u64, Ordering::Relaxed);
        if k >= 2 {
            self.shared_groups.fetch_add(1, Ordering::Relaxed);
            self.shared_queries.fetch_add(k as u64, Ordering::Relaxed);
        }

        // A panicking drain must cost this group, not the server: turn it
        // into per-member *transient* errors — no follower wedges on the
        // condvar, and every member retries once, solo, under the
        // server's transient-failure policy.
        let mut results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drain(entries)))
            .unwrap_or_default();
        while results.len() < k {
            results.push(Err(Error::Query(QueryError::Transient(
                "shared-scan drain failed to produce a result".into(),
            ))));
        }
        results.truncate(k);

        let mut state = cell.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut mine = None;
        for (i, r) in results.into_iter().enumerate() {
            if i == 0 {
                mine = Some(r);
            } else {
                state.results[i] = Some(r);
            }
        }
        drop(state);
        cell.cv.notify_all();
        mine.expect("leader result present")
    }

    /// Removes `cell` from the map if it is still the group under `key`.
    fn detach(&self, key: u64, cell: &Arc<GroupCell>) {
        let mut map = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        if map.get(&key).is_some_and(|current| Arc::ptr_eq(current, cell)) {
            map.remove(&key);
        }
    }

    /// Folds one shared sweep's savings into the counters (called by the
    /// drain).
    pub fn record_sweep(&self, panel_rows_saved: u64, pairs_saved: u64) {
        self.panel_rows_saved.fetch_add(panel_rows_saved, Ordering::Relaxed);
        self.pairs_saved.fetch_add(pairs_saved, Ordering::Relaxed);
    }

    /// Counts a group whose sweep failed and fell back to solo runs.
    pub fn record_fallback(&self) {
        self.sweep_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ScanQueueStats {
        ScanQueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            groups: self.drained_groups.load(Ordering::Relaxed),
            grouped_queries: self.grouped_queries.load(Ordering::Relaxed),
            shared_groups: self.shared_groups.load(Ordering::Relaxed),
            shared_queries: self.shared_queries.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            panel_rows_saved: self.panel_rows_saved.load(Ordering::Relaxed),
            pairs_saved: self.pairs_saved.load(Ordering::Relaxed),
            sweep_fallbacks: self.sweep_fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poisons `mutex` by unwinding through a held guard.
    fn poison<T>(mutex: &Mutex<T>) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison");
        }));
        assert!(mutex.lock().is_err(), "mutex should be poisoned");
    }

    #[test]
    fn poisoned_group_map_recovers() {
        // A peer thread panicking while holding the group map must not
        // brick grouping for every later query: lock acquisitions recover
        // from poisoning instead of unwrapping.
        let queue = ScanQueue::new(ScanQueueConfig {
            group_max: 4,
            linger: Duration::from_millis(1),
        });
        poison(&queue.groups);
        let cell = Arc::new(GroupCell {
            state: Mutex::new(GroupState {
                entries: Vec::new(),
                results: Vec::new(),
                full: false,
                closed: false,
            }),
            cv: Condvar::new(),
        });
        // Both map users must survive the poisoned lock.
        queue.detach(7, &cell);
        {
            let mut map = queue.groups.lock().unwrap_or_else(|e| e.into_inner());
            map.insert(9, cell.clone());
        }
        queue.detach(9, &cell);
        assert!(queue
            .groups
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
    }

    #[test]
    fn poisoned_group_state_recovers() {
        // Same for a group cell's own state lock.
        let cell = GroupCell {
            state: Mutex::new(GroupState {
                entries: Vec::new(),
                results: Vec::new(),
                full: false,
                closed: false,
            }),
            cv: Condvar::new(),
        };
        poison(&cell.state);
        let mut state = cell.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        assert!(state.closed);
    }
}

//! Prepared statements: optimize and lower a parameterized template once,
//! bind values at execute time.
//!
//! The common shape of heavy traffic is *one query template, many
//! literals*: `name ~ $0` for a million different users' search strings.
//! The plain plan cache cannot help — every distinct literal is a distinct
//! [`LogicalPlan::fingerprint`], so every request re-optimizes (including
//! sampling-based selectivity probes), re-lowers, and re-warms. A
//! [`Prepared`] handle moves all of that to `prepare` time:
//!
//! 1. **Prepare** — the template (built with [`cx_expr::param`],
//!    `Query::semantic_filter_param`, `Query::limit_param`) is optimized
//!    and lowered once; the entry lands in the server's shared plan cache
//!    under the template's [`LogicalPlan::shape_fingerprint`] (⊕ its
//!    exact fingerprint, separating same-shape templates that differ in
//!    an unparameterized literal) ⊕ the session's config fingerprint,
//!    pinned to the catalog version. Every binding of one template — and
//!    every re-prepare of an equivalent template — resolves to this one
//!    entry.
//! 2. **Execute** — the binding vector is substituted into a *copy* of the
//!    cached physical tree (`PhysicalOperator::bind_params`; unaffected
//!    subtrees stay shared), admission is weighted with a cost estimate
//!    over the *bound* logical plan (the template was costed with
//!    placeholder defaults), and the result is memoized per binding
//!    vector. Bound executions expose their scan signature like any other
//!    query, so they coalesce into multi-query shared sweeps.
//! 3. **Invalidation** — entries are pinned to the catalog version;
//!    executing a stale handle transparently re-optimizes and re-lowers.
//!    Nothing is ever served from a plan (or memo) built against an older
//!    catalog.
//!
//! [`LogicalPlan::fingerprint`]: cx_exec::logical::LogicalPlan::fingerprint
//! [`LogicalPlan::shape_fingerprint`]: cx_exec::logical::LogicalPlan::shape_fingerprint

use crate::plan_cache::config_fingerprint;
use crate::server::{ServeResult, Server};
use context_engine::Query;
use cx_optimizer::OptimizerConfig;
use cx_storage::{Result, Scalar};
use std::sync::Arc;

/// Salt separating the prepared (shape-keyed) plan-cache key space from
/// the ad-hoc (exact-fingerprint) key space.
const PREPARED_KEY_SALT: u64 = 0x5afe_c0de_9e37_79b9;

/// A prepared statement: a query template optimized and lowered once,
/// executable any number of times with different parameter bindings.
///
/// Obtain one from [`crate::Session::prepare`]; see the [module
/// docs](self) for the lifecycle. Handles are `Send + Sync` and cheap to
/// clone-free share behind an `Arc`; every method takes `&self`.
///
/// ```
/// use context_engine::{Engine, EngineConfig};
/// use cx_embed::HashNGramModel;
/// use cx_expr::{col, param};
/// use cx_serve::{ServeConfig, Server};
/// use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
/// use std::sync::Arc;
///
/// let engine = Arc::new(Engine::new(EngineConfig::default()));
/// engine.register_model(Arc::new(HashNGramModel::new(42)));
/// let products = Table::from_columns(
///     Schema::new(vec![
///         Field::new("name", DataType::Utf8),
///         Field::new("price", DataType::Float64),
///     ]),
///     vec![
///         Column::from_strings(["boots", "mug", "parka"]),
///         Column::from_f64(vec![30.0, 8.0, 80.0]),
///     ],
/// ).unwrap();
/// engine.register_table("products", products).unwrap();
///
/// let server = Server::new(engine, ServeConfig::default());
/// let session = server.session();
/// // One template, two parameters: a comparison literal and a limit.
/// let template = session.table("products").unwrap()
///     .filter(col("price").gt(param(0)))
///     .sort(&[("price", true)])
///     .limit_param(1);
/// let prepared = session.prepare(&template).unwrap();
/// assert_eq!(prepared.param_count(), 2);
/// let cheap = prepared.execute(&[Scalar::Float64(5.0), Scalar::Int64(1)]).unwrap();
/// assert_eq!(cheap.table.num_rows(), 1); // mug
/// let all = prepared.execute(&[Scalar::Float64(5.0), Scalar::Int64(10)]).unwrap();
/// assert_eq!(all.table.num_rows(), 3);
/// ```
pub struct Prepared {
    server: Arc<Server>,
    template: Query,
    config: OptimizerConfig,
    param_count: usize,
    shape_fingerprint: u64,
    exact_fingerprint: u64,
    cache_key: u64,
    shape_cache_hit: bool,
}

impl Prepared {
    /// Validates the template (parameter slots must be contiguous from
    /// `$0`), optimizes and lowers it eagerly so the first `execute`
    /// already hits the cached plan, and returns the handle.
    pub(crate) fn new(
        server: Arc<Server>,
        template: Query,
        config: OptimizerConfig,
    ) -> Result<Prepared> {
        let param_count = template.plan().required_params()?;
        let shape_fingerprint = template.plan().shape_fingerprint();
        let exact_fingerprint = template.plan().fingerprint();
        // Shape ⊕ exact: the shape fingerprint makes every binding (and
        // every re-prepare of an equivalent template) land on one entry;
        // mixing in the exact fingerprint keeps two templates that share
        // a shape but differ in an *unparameterized* literal in separate
        // slots — with shape alone they would alternately evict each
        // other (the exact-fingerprint validation at resolve time would
        // force a rebuild per execute). Within one template, bindings
        // never change either hash. Note that with the exact fingerprint
        // in the key, the shape component is not load-bearing for
        // share/split decisions today (equal exact ⟹ equal shape); it
        // keeps the key aligned with the planned auto-parameterization
        // rung, where ad-hoc literal queries resolve by shape alone.
        let cache_key = PREPARED_KEY_SALT
            ^ shape_fingerprint
            ^ exact_fingerprint.rotate_left(17)
            ^ config_fingerprint(&config);
        let mut prepared = Prepared {
            server,
            template,
            config,
            param_count,
            shape_fingerprint,
            exact_fingerprint,
            cache_key,
            shape_cache_hit: false,
        };
        let version = prepared.server.engine().catalog_version();
        let (_, hit) = prepared.server.resolve_prepared(&prepared, version)?;
        prepared.shape_cache_hit = hit;
        Ok(prepared)
    }

    /// Whether prepare time resolved an already-cached plan for this
    /// template's shape (an equivalent template was prepared — or an
    /// equivalent statement auto-parameterized — before), rather than
    /// optimizing and lowering fresh.
    pub fn shape_cache_hit(&self) -> bool {
        self.shape_cache_hit
    }

    /// Executes the template with `params` bound (slot `i` takes
    /// `params[i]`). The binding vector's length must equal
    /// [`Self::param_count`]. Results are bit-identical to executing the
    /// equivalent literal query ad hoc.
    pub fn execute(&self, params: &[Scalar]) -> Result<ServeResult> {
        self.server.execute_prepared(self, params)
    }

    /// The number of binding values every `execute` call must provide.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The template this handle was prepared from.
    pub fn template(&self) -> &Query {
        &self.template
    }

    /// The optimizer configuration snapshotted at prepare time.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// The template's shape fingerprint
    /// ([`cx_exec::logical::LogicalPlan::shape_fingerprint`]).
    pub fn shape_fingerprint(&self) -> u64 {
        self.shape_fingerprint
    }

    /// The template's exact fingerprint, used to validate shape-keyed
    /// cache hits.
    pub(crate) fn exact_fingerprint(&self) -> u64 {
        self.exact_fingerprint
    }

    /// The plan-cache key this handle resolves through (salted shape ⊕
    /// exact ⊕ config fingerprint).
    pub(crate) fn cache_key(&self) -> u64 {
        self.cache_key
    }
}

//! Admission control: a cost-weighted semaphore over query execution.
//!
//! Every query enters execution through [`CostGate::acquire`] (or the
//! lifecycle-aware [`CostGate::acquire_ctx`]) with its optimizer cost
//! estimate (`cx_optimizer::estimate_cost`'s abstract ns) as the
//! weight. The gate admits queries while the sum of in-flight cost
//! stays under capacity, otherwise callers block until enough cost
//! retires — heavyweight scans queue behind each other instead of
//! thrashing one machine, while cheap lookups keep flowing (a cheap query
//! only waits while the gate is genuinely full).
//!
//! Admission is **FIFO**: each caller takes a ticket and is admitted in
//! arrival order. The head of the line blocks followers until it fits —
//! deliberate head-of-line blocking, because the alternative (letting
//! cheap queries overtake) starves heavy queries indefinitely under a
//! steady stream of cheap traffic. A query costlier than the whole
//! capacity is admitted when the gate is otherwise empty (it would never
//! fit; running it alone is the best the server can do).
//!
//! Two lifecycle policies bound the line itself:
//!
//! * **Load shedding** — [`CostGate::acquire_ctx`] takes a `max_queued`
//!   bound; a query that *would block* while `max_queued` others are
//!   already waiting is refused immediately with
//!   [`QueryError::QueueFull`] instead of queueing unboundedly (the
//!   backpressure primitive a wire protocol needs).
//! * **Deadline/cancellation-aware waiting** — a waiter whose
//!   [`QueryContext`] dies while queued abandons its ticket (the FIFO
//!   line skips it) and returns the typed error rather than being
//!   admitted post-mortem.
//!
//! Uses `std::sync::{Mutex, Condvar}` rather than the workspace's
//! `parking_lot` shim because blocking admission needs a condition
//! variable, which the shim does not carry. Lock acquisitions recover
//! from poisoning (`unwrap_or_else(into_inner)`): the protected state
//! is a handful of counters that are always left consistent, so a
//! panicked peer must not brick admission for every later query.

use cx_storage::{QueryContext, QueryError, Result};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How often a blocked waiter re-checks its cancellation token.
const CANCEL_POLL: Duration = Duration::from_millis(5);

/// Aggregate admission counters (see [`CostGate`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Queries that had to block before admission.
    pub waited: u64,
    /// Queries refused with `QueueFull` (load shedding).
    pub shed: u64,
    /// Waiters that abandoned the line (deadline passed / cancelled).
    pub abandoned: u64,
    /// Cost currently executing.
    pub in_use: f64,
    /// Queries currently executing.
    pub active: u64,
}

#[derive(Default)]
struct Gate {
    in_use: f64,
    active: u64,
    /// Next ticket to hand out (arrival order).
    next_ticket: u64,
    /// Ticket currently at the head of the admission line.
    now_serving: u64,
    /// Callers currently blocked in the line.
    waiting: usize,
    /// Tickets whose holders gave up (deadline/cancel); the line skips
    /// them as `now_serving` reaches each.
    abandoned: HashSet<u64>,
}

impl Gate {
    /// Skips `now_serving` past abandoned tickets so the line cannot
    /// stall behind a waiter that already left.
    fn skip_abandoned(&mut self) {
        while self.abandoned.remove(&self.now_serving) {
            self.now_serving += 1;
        }
    }
}

/// A cost-weighted admission semaphore.
pub struct CostGate {
    capacity: f64,
    gate: Mutex<Gate>,
    cv: Condvar,
    admitted: AtomicU64,
    waited: AtomicU64,
    shed: AtomicU64,
    abandoned: AtomicU64,
}

/// An admitted query's slot; releases its cost on drop.
pub struct Permit<'a> {
    gate: &'a CostGate,
    cost: f64,
}

impl CostGate {
    /// A gate admitting up to `capacity` total estimated cost at once
    /// (non-finite or non-positive capacities mean "unlimited").
    pub fn new(capacity: f64) -> Self {
        let capacity = if capacity.is_finite() && capacity > 0.0 {
            capacity
        } else {
            f64::INFINITY
        };
        CostGate {
            capacity,
            gate: Mutex::new(Gate::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Blocks until it is this caller's turn (FIFO) *and* `cost` fits,
    /// then returns the RAII permit. Unbounded queue, no deadline — the
    /// pre-lifecycle entry point, kept for callers without a context.
    pub fn acquire(&self, cost: f64) -> Permit<'_> {
        match self.acquire_ctx(cost, &QueryContext::unbounded(), 0) {
            Ok(permit) => permit,
            // Unbounded context + unbounded queue cannot be refused.
            Err(_) => unreachable!("unbounded acquire cannot fail"),
        }
    }

    /// Lifecycle-aware admission: FIFO like [`acquire`](Self::acquire),
    /// but
    ///
    /// * refuses immediately with [`QueryError::QueueFull`] when the
    ///   query would block behind `max_queued` or more waiters
    ///   (`max_queued == 0` means unbounded);
    /// * gives up with the typed lifecycle error when `ctx`'s deadline
    ///   passes or its token is cancelled while queued, abandoning the
    ///   ticket so the line flows past it.
    pub fn acquire_ctx(
        &self,
        cost: f64,
        ctx: &QueryContext,
        max_queued: usize,
    ) -> Result<Permit<'_>> {
        let cost = if cost.is_finite() { cost.max(1.0) } else { self.capacity };
        ctx.check()?;
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.skip_abandoned();
        let would_block = gate.now_serving != gate.next_ticket
            || (gate.active > 0 && gate.in_use + cost > self.capacity);
        if would_block && max_queued > 0 && gate.waiting >= max_queued {
            let queued = gate.waiting;
            drop(gate);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::QueueFull { queued, max: max_queued }.into());
        }
        let ticket = gate.next_ticket;
        gate.next_ticket += 1;
        let mut blocked = false;
        // FIFO: wait for our turn, then for room. An oversized query
        // (cost > capacity) passes once the gate is empty: `active > 0`
        // keeps the loop from spinning forever on it.
        loop {
            gate.skip_abandoned();
            if gate.now_serving == ticket
                && !(gate.active > 0 && gate.in_use + cost > self.capacity)
            {
                break;
            }
            if let Err(e) = ctx.check() {
                // Leave the line: mark the ticket abandoned so the FIFO
                // skips it, and wake peers in case we were its head.
                gate.abandoned.insert(ticket);
                gate.skip_abandoned();
                if blocked {
                    gate.waiting -= 1;
                }
                drop(gate);
                self.abandoned.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                return Err(e);
            }
            if !blocked {
                blocked = true;
                gate.waiting += 1;
            }
            // Bounded wait so cancellation/deadline stay responsive even
            // if no peer ever notifies.
            let timeout = ctx.remaining().map_or(CANCEL_POLL, |r| r.min(CANCEL_POLL));
            let (g, _) = self
                .cv
                .wait_timeout(gate, timeout.max(Duration::from_micros(100)))
                .unwrap_or_else(|e| e.into_inner());
            gate = g;
        }
        if blocked {
            gate.waiting -= 1;
        }
        gate.now_serving += 1;
        gate.in_use += cost;
        gate.active += 1;
        drop(gate);
        // Wake the next ticket in line (it may also fit right now).
        self.cv.notify_all();
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if blocked {
            self.waited.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Permit { gate: self, cost })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            in_use: gate.in_use,
            active: gate.active,
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut gate = self.gate.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.in_use = (gate.in_use - self.cost).max(0.0);
        gate.active = gate.active.saturating_sub(1);
        drop(gate);
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_storage::{CancelToken, Error};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn admits_within_capacity_without_blocking() {
        let gate = CostGate::new(100.0);
        let a = gate.acquire(40.0);
        let b = gate.acquire(40.0);
        let s = gate.stats();
        assert_eq!(s.active, 2);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.waited, 0);
        drop(a);
        drop(b);
        assert_eq!(gate.stats().active, 0);
        assert_eq!(gate.stats().in_use, 0.0);
    }

    #[test]
    fn oversized_query_admitted_when_alone() {
        let gate = CostGate::new(10.0);
        let p = gate.acquire(1e9);
        assert_eq!(gate.stats().active, 1);
        drop(p);
    }

    #[test]
    fn over_capacity_blocks_until_release() {
        let gate = Arc::new(CostGate::new(100.0));
        let order = Arc::new(AtomicUsize::new(0));
        let first = gate.acquire(80.0);
        let t = {
            let gate = gate.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _p = gate.acquire(80.0); // must wait for `first`
                order.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Give the second query time to reach the gate, then release.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(order.load(Ordering::SeqCst), 0, "second query jumped the gate");
        drop(first);
        t.join().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
        assert_eq!(gate.stats().waited, 1);
        assert_eq!(gate.stats().admitted, 2);
    }

    #[test]
    fn zero_capacity_means_unlimited() {
        let gate = CostGate::new(0.0);
        let _a = gate.acquire(1e18);
        let _b = gate.acquire(1e18);
        assert_eq!(gate.stats().active, 2);
    }

    #[test]
    fn queue_bound_sheds_instead_of_queueing() {
        let gate = Arc::new(CostGate::new(10.0));
        let hold = gate.acquire(10.0); // gate full
        // One waiter occupies the single allowed queue slot.
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                gate.acquire_ctx(10.0, &QueryContext::unbounded(), 1).map(|_| ())
            })
        };
        // Wait until the waiter is actually queued.
        while gate.stats().waited == 0 {
            let queued = gate.gate.lock().unwrap().waiting;
            if queued >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // The next bounded query must be refused immediately.
        let r = gate.acquire_ctx(10.0, &QueryContext::unbounded(), 1);
        match r {
            Err(Error::Query(QueryError::QueueFull { queued, max })) => {
                assert_eq!(queued, 1);
                assert_eq!(max, 1);
            }
            other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
        }
        assert_eq!(gate.stats().shed, 1);
        drop(hold);
        waiter.join().unwrap().unwrap();
        assert_eq!(gate.stats().admitted, 2);
    }

    #[test]
    fn admission_does_not_shed_when_gate_is_free() {
        // max_queued bounds the *line*, not concurrency: with room in the
        // gate no query is refused.
        let gate = CostGate::new(100.0);
        let a = gate.acquire_ctx(40.0, &QueryContext::unbounded(), 1).unwrap();
        let b = gate.acquire_ctx(40.0, &QueryContext::unbounded(), 1).unwrap();
        assert_eq!(gate.stats().shed, 0);
        drop(a);
        drop(b);
    }

    #[test]
    fn queued_waiter_respects_deadline() {
        let gate = Arc::new(CostGate::new(10.0));
        let hold = gate.acquire(10.0);
        let ctx = QueryContext::unbounded().with_timeout(Duration::from_millis(20));
        let started = std::time::Instant::now();
        let r = gate.acquire_ctx(10.0, &ctx, 0);
        assert_eq!(
            r.err().and_then(|e| e.as_query().cloned()),
            Some(QueryError::DeadlineExceeded)
        );
        assert!(started.elapsed() < Duration::from_secs(2));
        assert_eq!(gate.stats().abandoned, 1);
        // The line skips the abandoned ticket: the next caller admits
        // as soon as the holder releases.
        drop(hold);
        let p = gate.acquire_ctx(5.0, &QueryContext::unbounded(), 0).unwrap();
        drop(p);
    }

    #[test]
    fn queued_waiter_observes_cancellation() {
        let gate = Arc::new(CostGate::new(10.0));
        let hold = gate.acquire(10.0);
        let token = CancelToken::new();
        let ctx = QueryContext::unbounded().with_cancel(token.clone());
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.acquire_ctx(10.0, &ctx, 0).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
        let r = waiter.join().unwrap();
        assert_eq!(
            r.err().and_then(|e| e.as_query().cloned()),
            Some(QueryError::Cancelled)
        );
        drop(hold);
    }

    #[test]
    fn poisoned_gate_lock_recovers() {
        // A thread panicking while holding the gate must not brick
        // admission for every later query (regression test for the
        // poisoning-recovery audit).
        let gate = Arc::new(CostGate::new(100.0));
        let g2 = gate.clone();
        let _ = std::thread::spawn(move || {
            let _guard = g2.gate.lock().unwrap();
            panic!("poison the gate");
        })
        .join();
        assert!(gate.gate.lock().is_err(), "gate mutex should be poisoned");
        let p = gate.acquire(10.0);
        assert_eq!(gate.stats().active, 1);
        drop(p);
        assert_eq!(gate.stats().active, 0);
    }

    #[test]
    fn already_expired_context_is_refused_before_queueing() {
        let gate = CostGate::new(100.0);
        let ctx = QueryContext::unbounded().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(gate.acquire_ctx(1.0, &ctx, 0).is_err());
        assert_eq!(gate.stats().admitted, 0);
    }
}

//! Admission control: a cost-weighted semaphore over query execution.
//!
//! Every query enters execution through [`CostGate::acquire`] with its
//! optimizer cost estimate (`cx_optimizer::estimate_cost`'s abstract ns) as
//! the weight. The gate admits queries while the sum of in-flight cost
//! stays under capacity, otherwise callers block until enough cost
//! retires — heavyweight scans queue behind each other instead of
//! thrashing one machine, while cheap lookups keep flowing (a cheap query
//! only waits while the gate is genuinely full).
//!
//! Admission is **FIFO**: each caller takes a ticket and is admitted in
//! arrival order. The head of the line blocks followers until it fits —
//! deliberate head-of-line blocking, because the alternative (letting
//! cheap queries overtake) starves heavy queries indefinitely under a
//! steady stream of cheap traffic. A query costlier than the whole
//! capacity is admitted when the gate is otherwise empty (it would never
//! fit; running it alone is the best the server can do).
//!
//! Uses `std::sync::{Mutex, Condvar}` rather than the workspace's
//! `parking_lot` shim because blocking admission needs a condition
//! variable, which the shim does not carry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Aggregate admission counters (see [`CostGate`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Queries admitted so far.
    pub admitted: u64,
    /// Queries that had to block before admission.
    pub waited: u64,
    /// Cost currently executing.
    pub in_use: f64,
    /// Queries currently executing.
    pub active: u64,
}

#[derive(Default)]
struct Gate {
    in_use: f64,
    active: u64,
    /// Next ticket to hand out (arrival order).
    next_ticket: u64,
    /// Ticket currently at the head of the admission line.
    now_serving: u64,
}

/// A cost-weighted admission semaphore.
pub struct CostGate {
    capacity: f64,
    gate: Mutex<Gate>,
    cv: Condvar,
    admitted: AtomicU64,
    waited: AtomicU64,
}

/// An admitted query's slot; releases its cost on drop.
pub struct Permit<'a> {
    gate: &'a CostGate,
    cost: f64,
}

impl CostGate {
    /// A gate admitting up to `capacity` total estimated cost at once
    /// (non-finite or non-positive capacities mean "unlimited").
    pub fn new(capacity: f64) -> Self {
        let capacity = if capacity.is_finite() && capacity > 0.0 {
            capacity
        } else {
            f64::INFINITY
        };
        CostGate {
            capacity,
            gate: Mutex::new(Gate::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            waited: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Blocks until it is this caller's turn (FIFO) *and* `cost` fits,
    /// then returns the RAII permit.
    pub fn acquire(&self, cost: f64) -> Permit<'_> {
        let cost = if cost.is_finite() { cost.max(1.0) } else { self.capacity };
        let mut gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = gate.next_ticket;
        gate.next_ticket += 1;
        let mut blocked = false;
        // FIFO: wait for our turn, then for room. An oversized query
        // (cost > capacity) passes once the gate is empty: `active > 0`
        // keeps the loop from spinning forever on it.
        while gate.now_serving != ticket
            || (gate.active > 0 && gate.in_use + cost > self.capacity)
        {
            blocked = true;
            gate = self.cv.wait(gate).unwrap_or_else(|e| e.into_inner());
        }
        gate.now_serving += 1;
        gate.in_use += cost;
        gate.active += 1;
        drop(gate);
        // Wake the next ticket in line (it may also fit right now).
        self.cv.notify_all();
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if blocked {
            self.waited.fetch_add(1, Ordering::Relaxed);
        }
        Permit { gate: self, cost }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            in_use: gate.in_use,
            active: gate.active,
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut gate = self.gate.gate.lock().unwrap_or_else(|e| e.into_inner());
        gate.in_use = (gate.in_use - self.cost).max(0.0);
        gate.active = gate.active.saturating_sub(1);
        drop(gate);
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn admits_within_capacity_without_blocking() {
        let gate = CostGate::new(100.0);
        let a = gate.acquire(40.0);
        let b = gate.acquire(40.0);
        let s = gate.stats();
        assert_eq!(s.active, 2);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.waited, 0);
        drop(a);
        drop(b);
        assert_eq!(gate.stats().active, 0);
        assert_eq!(gate.stats().in_use, 0.0);
    }

    #[test]
    fn oversized_query_admitted_when_alone() {
        let gate = CostGate::new(10.0);
        let p = gate.acquire(1e9);
        assert_eq!(gate.stats().active, 1);
        drop(p);
    }

    #[test]
    fn over_capacity_blocks_until_release() {
        let gate = Arc::new(CostGate::new(100.0));
        let order = Arc::new(AtomicUsize::new(0));
        let first = gate.acquire(80.0);
        let t = {
            let gate = gate.clone();
            let order = order.clone();
            std::thread::spawn(move || {
                let _p = gate.acquire(80.0); // must wait for `first`
                order.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Give the second query time to reach the gate, then release.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(order.load(Ordering::SeqCst), 0, "second query jumped the gate");
        drop(first);
        t.join().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
        assert_eq!(gate.stats().waited, 1);
        assert_eq!(gate.stats().admitted, 2);
    }

    #[test]
    fn zero_capacity_means_unlimited() {
        let gate = CostGate::new(0.0);
        let _a = gate.acquire(1e18);
        let _b = gate.acquire(1e18);
        assert_eq!(gate.stats().active, 2);
    }
}

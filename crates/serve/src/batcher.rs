//! Cross-query embedding batch scheduler.
//!
//! Concurrent queries over overlapping corpora each need embeddings for
//! their distinct key values. Left alone, every query pushes its own texts
//! through the model; the paper's batched/caching design wants N
//! overlapping requests to pay one model pass. [`EmbedBatcher`] provides
//! that: queries submit their text sets with [`EmbedBatcher::warm`], the
//! scheduler deduplicates them into one pending queue (a text requested by
//! five queries is embedded once and all five block on the same slot), and
//! a flusher thread drains the queue with a single
//! [`EmbeddingCache::get_batch_into`] call per batch.
//!
//! Flushes trigger on **size** (`max_batch` pending texts) or **deadline**
//! (`linger` after the oldest pending text arrived), so a lone query is
//! delayed at most one linger interval while bursts fill whole batches.
//! The queue is bounded by the size trigger: it cannot sit above
//! `max_batch` for longer than one flush.
//!
//! Uses `std::sync::{Mutex, Condvar}` (not the `parking_lot` shim, which
//! has no condition variable).

use cx_embed::EmbeddingCache;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Flush policy for an [`EmbedBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Pending-text count that triggers an immediate flush (also the batch
    /// size cap).
    pub max_batch: usize,
    /// Longest a pending text waits before a deadline flush.
    pub linger: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 256, linger: Duration::from_micros(500) }
    }
}

/// Counter snapshot of a batcher (all totals since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// `warm` calls.
    pub requests: u64,
    /// Texts across all `warm` calls (pre-dedup).
    pub texts_requested: u64,
    /// Texts that entered the pending queue (first requester).
    pub texts_enqueued: u64,
    /// Texts skipped because the cache already held them.
    pub texts_already_cached: u64,
    /// Texts that piggybacked on another request's pending/in-flight slot —
    /// the cross-query sharing this scheduler exists for.
    pub texts_coalesced: u64,
    /// Batched `get_batch_into` calls issued.
    pub batches: u64,
    /// Texts embedded across all batches.
    pub batched_texts: u64,
    /// Batches whose texts came from ≥ 2 distinct `warm` calls.
    pub coalesced_batches: u64,
    /// Largest single batch.
    pub max_batch_size: u64,
    /// Most distinct `warm` calls served by one batch.
    pub max_batch_submitters: u64,
    /// Batches whose embedding pass panicked (the batch was abandoned;
    /// its waiters proceeded and embed inline in their own queries).
    pub failed_batches: u64,
}

struct State {
    /// text → tickets of the `warm` calls waiting on it.
    pending: HashMap<String, Vec<u64>>,
    /// FIFO of pending texts (flush order); keys may go stale if the map
    /// entry was already drained — stale keys are skipped.
    order: VecDeque<String>,
    /// Texts currently being embedded by the flusher.
    inflight: HashSet<String>,
    /// Deadline of the oldest pending text, if any.
    deadline: Option<Instant>,
    shutdown: bool,
}

struct Shared {
    cache: Arc<EmbeddingCache>,
    config: BatcherConfig,
    state: Mutex<State>,
    /// Wakes the flusher (new work / shutdown).
    work: Condvar,
    /// Wakes waiters (batch finished).
    done: Condvar,
    next_ticket: AtomicU64,
    requests: AtomicU64,
    texts_requested: AtomicU64,
    texts_enqueued: AtomicU64,
    texts_already_cached: AtomicU64,
    texts_coalesced: AtomicU64,
    batches: AtomicU64,
    batched_texts: AtomicU64,
    coalesced_batches: AtomicU64,
    max_batch_size: AtomicU64,
    max_batch_submitters: AtomicU64,
    failed_batches: AtomicU64,
}

/// A batching front-end over one model's [`EmbeddingCache`].
pub struct EmbedBatcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl EmbedBatcher {
    /// Starts a batcher (and its flusher thread) over `cache`.
    pub fn new(cache: Arc<EmbeddingCache>, config: BatcherConfig) -> Self {
        let shared = Arc::new(Shared {
            cache,
            config: BatcherConfig { max_batch: config.max_batch.max(1), ..config },
            state: Mutex::new(State {
                pending: HashMap::new(),
                order: VecDeque::new(),
                inflight: HashSet::new(),
                deadline: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next_ticket: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            texts_requested: AtomicU64::new(0),
            texts_enqueued: AtomicU64::new(0),
            texts_already_cached: AtomicU64::new(0),
            texts_coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_texts: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            max_batch_size: AtomicU64::new(0),
            max_batch_submitters: AtomicU64::new(0),
            failed_batches: AtomicU64::new(0),
        });
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("cx-serve-embed-batcher".into())
                .spawn(move || flusher(&shared))
                .expect("spawn embed batcher thread")
        };
        EmbedBatcher { shared, worker: Mutex::new(Some(worker)) }
    }

    /// The cache this batcher fills.
    pub fn cache(&self) -> &Arc<EmbeddingCache> {
        &self.shared.cache
    }

    /// Ensures every text in `texts` is embedded in the cache, batching the
    /// misses with every other in-flight `warm` call. Blocks until done;
    /// returns the number of texts this call actually waited on (0 = all
    /// were already cached).
    pub fn warm<S: AsRef<str>>(&self, texts: &[S]) -> usize {
        let sh = &*self.shared;
        sh.requests.fetch_add(1, Ordering::Relaxed);
        sh.texts_requested.fetch_add(texts.len() as u64, Ordering::Relaxed);
        if texts.is_empty() {
            return 0;
        }
        let ticket = sh.next_ticket.fetch_add(1, Ordering::Relaxed);
        // Texts this call must see flushed before returning.
        let mut waiting: Vec<String> = Vec::new();
        let waited;
        {
            let mut seen = HashSet::new();
            let mut state = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            for t in texts {
                let t = t.as_ref();
                if !seen.insert(t) {
                    continue; // intra-request duplicate
                }
                if let Some(tickets) = state.pending.get_mut(t) {
                    tickets.push(ticket);
                    sh.texts_coalesced.fetch_add(1, Ordering::Relaxed);
                    waiting.push(t.to_string());
                } else if state.inflight.contains(t) {
                    sh.texts_coalesced.fetch_add(1, Ordering::Relaxed);
                    waiting.push(t.to_string());
                } else if sh.cache.contains(t) {
                    sh.texts_already_cached.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.pending.insert(t.to_string(), vec![ticket]);
                    state.order.push_back(t.to_string());
                    if state.deadline.is_none() {
                        state.deadline = Some(Instant::now() + sh.config.linger);
                    }
                    sh.texts_enqueued.fetch_add(1, Ordering::Relaxed);
                    waiting.push(t.to_string());
                }
            }
            if waiting.is_empty() {
                return 0;
            }
            waited = waiting.len();
            sh.work.notify_one();
            // Wait until none of our texts is pending or in flight. The
            // flush itself populated the cache; checking the queues (not
            // cache membership) keeps bounded caches from wedging a waiter
            // whose entry was already evicted again.
            loop {
                waiting.retain(|t| state.pending.contains_key(t) || state.inflight.contains(t));
                if waiting.is_empty() {
                    break;
                }
                state = sh.done.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        waited
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatcherStats {
        let sh = &*self.shared;
        BatcherStats {
            requests: sh.requests.load(Ordering::Relaxed),
            texts_requested: sh.texts_requested.load(Ordering::Relaxed),
            texts_enqueued: sh.texts_enqueued.load(Ordering::Relaxed),
            texts_already_cached: sh.texts_already_cached.load(Ordering::Relaxed),
            texts_coalesced: sh.texts_coalesced.load(Ordering::Relaxed),
            batches: sh.batches.load(Ordering::Relaxed),
            batched_texts: sh.batched_texts.load(Ordering::Relaxed),
            coalesced_batches: sh.coalesced_batches.load(Ordering::Relaxed),
            max_batch_size: sh.max_batch_size.load(Ordering::Relaxed),
            max_batch_submitters: sh.max_batch_submitters.load(Ordering::Relaxed),
            failed_batches: sh.failed_batches.load(Ordering::Relaxed),
        }
    }
}

impl Drop for EmbedBatcher {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(worker) = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = worker.join();
        }
    }
}

/// The flusher loop: sleep until size/deadline/shutdown, drain one batch,
/// embed it with a single batched cache call, repeat. Drains remaining
/// work before exiting on shutdown.
fn flusher(sh: &Shared) {
    loop {
        // Phase 1: decide what to flush (under the lock).
        let batch: Vec<(String, Vec<u64>)> = {
            let mut state = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.shutdown {
                    break; // drain whatever is left, then exit below
                }
                if state.pending.len() >= sh.config.max_batch {
                    break;
                }
                match state.deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, _) = sh
                            .work
                            .wait_timeout(state, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        state = guard;
                    }
                    None => {
                        state = sh.work.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
            let mut batch = Vec::new();
            while batch.len() < sh.config.max_batch {
                let Some(key) = state.order.pop_front() else { break };
                if let Some(tickets) = state.pending.remove(&key) {
                    state.inflight.insert(key.clone());
                    batch.push((key, tickets));
                }
                // else: stale order slot, skip.
            }
            state.deadline = if state.order.is_empty() {
                None
            } else {
                // Conservative: restart the linger window for what remains
                // (at most one extra linger of delay for overflow texts).
                Some(Instant::now() + sh.config.linger)
            };
            if batch.is_empty() && state.shutdown {
                return;
            }
            batch
        };
        if batch.is_empty() {
            continue;
        }

        // Phase 2: one batched embedding pass, outside the lock, so new
        // submissions keep queueing (and coalescing) while the model runs.
        // A model panic on a pathological input must cost one batch, not
        // the server: catch it, let the waiters proceed (their texts stay
        // uncached and embed inline in the operator, where the panic
        // surfaces in the failing query's own thread instead of wedging
        // every future `warm` on a dead inflight slot).
        let embed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let texts: Vec<&str> = batch.iter().map(|(t, _)| t.as_str()).collect();
            let dim = sh.cache.dim();
            let mut buf = vec![0.0f32; texts.len() * dim];
            sh.cache.get_batch_into(&texts, dim, &mut buf);
        }));
        if embed.is_err() {
            sh.failed_batches.fetch_add(1, Ordering::Relaxed);
        }

        sh.batches.fetch_add(1, Ordering::Relaxed);
        sh.batched_texts.fetch_add(batch.len() as u64, Ordering::Relaxed);
        sh.max_batch_size.fetch_max(batch.len() as u64, Ordering::Relaxed);
        let submitters: HashSet<u64> =
            batch.iter().flat_map(|(_, tickets)| tickets.iter().copied()).collect();
        sh.max_batch_submitters.fetch_max(submitters.len() as u64, Ordering::Relaxed);
        if submitters.len() >= 2 {
            sh.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        }

        // Phase 3: mark done, wake waiters.
        let mut state = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        for (t, _) in &batch {
            state.inflight.remove(t);
        }
        drop(state);
        sh.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::HashNGramModel;
    use std::sync::Barrier;

    fn batcher(config: BatcherConfig) -> EmbedBatcher {
        let cache = Arc::new(EmbeddingCache::new(Arc::new(HashNGramModel::new(7))));
        EmbedBatcher::new(cache, config)
    }

    #[test]
    fn warm_fills_cache_in_one_batch() {
        let b = batcher(BatcherConfig { max_batch: 64, linger: Duration::from_millis(1) });
        let waited = b.warm(&["a", "b", "c", "a"]);
        assert_eq!(waited, 3);
        for t in ["a", "b", "c"] {
            assert!(b.cache().contains(t));
        }
        let s = b.stats();
        assert_eq!(s.texts_enqueued, 3);
        assert_eq!(s.batches, 1, "expected one batched flush, got {s:?}");
        assert_eq!(s.batched_texts, 3);
        // Second warm is a pure cache hit: no new batch.
        assert_eq!(b.warm(&["a", "b"]), 0);
        let s = b.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.texts_already_cached, 2);
    }

    #[test]
    fn size_trigger_flushes_before_linger() {
        let b = batcher(BatcherConfig { max_batch: 2, linger: Duration::from_secs(60) });
        let start = Instant::now();
        b.warm(&["x", "y"]); // hits the size trigger immediately
        assert!(start.elapsed() < Duration::from_secs(10));
        assert_eq!(b.stats().batches, 1);
    }

    #[test]
    fn concurrent_warms_coalesce_into_one_model_pass() {
        let b = Arc::new(batcher(BatcherConfig {
            max_batch: 1024,
            linger: Duration::from_millis(100),
        }));
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let texts: Vec<String> = (0..32).map(|i| format!("word{i}")).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let b = b.clone();
                let barrier = barrier.clone();
                let texts = texts.clone();
                s.spawn(move || {
                    barrier.wait();
                    b.warm(&texts);
                });
            }
        });
        let s = b.stats();
        // All four requests landed inside one linger window: the 32
        // distinct texts were enqueued once, embedded once, and the other
        // three requests piggybacked.
        assert_eq!(s.texts_enqueued, 32);
        assert_eq!(s.batched_texts, 32);
        assert_eq!(b.cache().model().stats().invocations(), 32);
        assert!(s.texts_coalesced >= 32, "stats {s:?}");
        assert!(s.max_batch_submitters >= 2, "stats {s:?}");
        assert!(s.coalesced_batches >= 1, "stats {s:?}");
    }

    #[test]
    fn drop_joins_flusher_cleanly() {
        let b = batcher(BatcherConfig { max_batch: 8, linger: Duration::from_millis(1) });
        assert_eq!(b.warm(&["p", "q"]), 2);
        drop(b); // must join the flusher thread without hanging
    }
}

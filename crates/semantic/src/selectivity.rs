//! Sampling-based selectivity estimation for semantic operators.
//!
//! Relational predicates estimate selectivity from histograms; semantic
//! predicates have no such structure, so the optimizer samples: embed a
//! bounded sample of values and measure the match fraction directly. This
//! follows the paper's own line of work on sampling-based AQP in analytical
//! engines (Sanca & Ailamaki, DaMoN'22, cited as \[28\]).

use cx_embed::EmbeddingCache;
use cx_vector::kernels::{cosine_with_norms, norm};
use std::sync::Arc;

/// Default cap on sampled values.
pub const DEFAULT_SAMPLE: usize = 256;

/// Deterministic stride sample of up to `cap` items from `values`.
fn stride_sample(values: &[String], cap: usize) -> Vec<&str> {
    if values.is_empty() || cap == 0 {
        return Vec::new();
    }
    // Odd stride so periodic data (e.g. round-robin generators) cannot
    // alias with the sampling pattern.
    let stride = ((values.len() / cap).max(1)) | 1;
    values
        .iter()
        .step_by(stride)
        .take(cap)
        .map(|s| s.as_str())
        .collect()
}

/// Estimated fraction of `values` whose embedding is within `threshold`
/// cosine of `target`'s embedding. Returns a value in `[0, 1]`.
pub fn semantic_filter_selectivity(
    cache: &Arc<EmbeddingCache>,
    target: &str,
    values: &[String],
    threshold: f32,
    sample_cap: usize,
) -> f64 {
    let sample = stride_sample(values, sample_cap);
    if sample.is_empty() {
        return 0.0;
    }
    let t = cache.get(target);
    let tn = norm(&t);
    let matches = sample
        .iter()
        .filter(|v| {
            let e = cache.get(v);
            cosine_with_norms(&t, &e, tn, norm(&e)) >= threshold
        })
        .count();
    matches as f64 / sample.len() as f64
}

/// Estimated fraction of (left, right) value pairs within `threshold`
/// cosine similarity. Samples up to `sample_cap` values per side
/// (`sample_cap²` pair evaluations).
pub fn semantic_join_selectivity(
    cache: &Arc<EmbeddingCache>,
    left_values: &[String],
    right_values: &[String],
    threshold: f32,
    sample_cap: usize,
) -> f64 {
    let left = stride_sample(left_values, sample_cap);
    let right = stride_sample(right_values, sample_cap);
    if left.is_empty() || right.is_empty() {
        return 0.0;
    }
    let left_embs: Vec<_> = left.iter().map(|v| cache.get(v)).collect();
    let right_embs: Vec<_> = right.iter().map(|v| cache.get(v)).collect();
    let left_norms: Vec<f32> = left_embs.iter().map(|e| norm(e)).collect();
    let right_norms: Vec<f32> = right_embs.iter().map(|e| norm(e)).collect();
    let mut matches = 0usize;
    for (le, ln) in left_embs.iter().zip(&left_norms) {
        for (re, rn) in right_embs.iter().zip(&right_norms) {
            if cosine_with_norms(le, re, *ln, *rn) >= threshold {
                matches += 1;
            }
        }
    }
    matches as f64 / (left.len() * right.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};

    fn cache() -> Arc<EmbeddingCache> {
        let space = SemanticSpace::build(
            &[
                ClusterSpec::new("dog", &["canine", "puppy", "hound", "mutt"]),
                ClusterSpec::new("rock", &["granite", "basalt", "quartz", "slate"]),
            ],
            64,
            42,
            ClusterGeometry::default(),
        );
        Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
            "m",
            Arc::new(space),
            7,
        ))))
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn filter_selectivity_matches_ground_truth() {
        let c = cache();
        let values = strings(&["canine", "puppy", "granite", "basalt", "quartz"]);
        let sel = semantic_filter_selectivity(&c, "dog", &values, 0.85, 100);
        assert!((sel - 0.4).abs() < 1e-9, "got {sel}");
        // Nothing matches a 1.0 threshold except exact value.
        let sel = semantic_filter_selectivity(&c, "dog", &values, 0.9999, 100);
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn join_selectivity_reflects_cluster_overlap() {
        let c = cache();
        let left = strings(&["canine", "puppy", "granite"]);
        let right = strings(&["hound", "basalt", "slate"]);
        // dog-cluster pairs: 2×1; rock pairs: 1×2 → 4 of 9. Member-to-member
        // similarity within a cluster is ≈0.89 under the default geometry,
        // so probe below that boundary.
        let sel = semantic_join_selectivity(&c, &left, &right, 0.8, 100);
        assert!((sel - 4.0 / 9.0).abs() < 1e-9, "got {sel}");
    }

    #[test]
    fn empty_inputs_yield_zero() {
        let c = cache();
        assert_eq!(semantic_filter_selectivity(&c, "dog", &[], 0.9, 10), 0.0);
        assert_eq!(
            semantic_join_selectivity(&c, &strings(&["a"]), &[], 0.9, 10),
            0.0
        );
    }

    #[test]
    fn sampling_caps_work() {
        let c = cache();
        let values: Vec<String> = (0..1000)
            .map(|i| if i % 2 == 0 { "canine" } else { "granite" }.to_string())
            .collect();
        let sel = semantic_filter_selectivity(&c, "dog", &values, 0.85, 16);
        assert!((sel - 0.5).abs() < 0.1, "got {sel}");
        // Only the sample was embedded (plus the target): 2 distinct strings
        // regardless of cap.
        assert!(c.len() <= 3);
    }
}

//! Semantic Select: context-based filtering.
//!
//! `word = "Clothes" using model "M" with cosine threshold >= 0.9`
//! (the paper's own syntax sketch, Section IV).

use cx_embed::EmbeddingCache;
use cx_exec::shared::{ProbeSource, ScanKind, ScanSignature, SharedScanState};
use cx_exec::{ChunkStream, PhysicalOperator, SemanticTarget};
use cx_storage::{Bitmap, DataType, Error, Result, Scalar, Schema};
use cx_vector::block::cosine_block_threshold;
use cx_vector::kernels::{cosine_with_norms, norm};
use cx_vector::{QuantTier, QuantizedArena, VectorArena};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Filters rows whose `column` value embeds within `threshold` cosine
/// similarity of the target string's embedding. The target may be a
/// prepared-statement parameter ([`SemanticTarget::Param`]); the operator
/// then executes only after `bind_params` resolves it.
pub struct SemanticFilterExec {
    input: Arc<dyn PhysicalOperator>,
    column_index: usize,
    target: SemanticTarget,
    threshold: f32,
    /// Panel storage precision for the per-chunk distinct scan (F32 =
    /// exact).
    quant: QuantTier,
    cache: Arc<EmbeddingCache>,
    /// Logical fingerprint of the input subtree, when the planner knows
    /// it — the operator's ticket into multi-query scan sharing.
    scan_fingerprint: Option<u64>,
    /// One-shot injected slice of a shared sweep (value → score against
    /// this filter's target); consumed by the next `execute()`.
    shared: Mutex<Option<HashMap<String, f32>>>,
}

impl SemanticFilterExec {
    /// Creates the filter. `column` must be a UTF8 column of the input.
    /// The target accepts a plain string or a [`SemanticTarget`] (so
    /// prepared statements can pass a parameter slot).
    pub fn new(
        input: Arc<dyn PhysicalOperator>,
        column: &str,
        target: impl Into<SemanticTarget>,
        threshold: f32,
        cache: Arc<EmbeddingCache>,
    ) -> Result<Self> {
        let schema = input.schema();
        let column_index = schema.index_of(column)?;
        let field = schema.field_at(column_index)?;
        if field.data_type != DataType::Utf8 {
            return Err(Error::TypeMismatch {
                expected: "UTF8 column for semantic filter".into(),
                actual: field.data_type.to_string(),
            });
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidArgument(format!(
                "semantic threshold must be in [0,1], got {threshold}"
            )));
        }
        Ok(SemanticFilterExec {
            input,
            column_index,
            target: target.into(),
            threshold,
            quant: QuantTier::F32,
            cache,
            scan_fingerprint: None,
            shared: Mutex::new(None),
        })
    }

    /// Tags this filter with the logical fingerprint of its input
    /// subtree, making its sweep shareable (see [`cx_exec::shared`]).
    /// The planner calls this; hand-built operators may skip it and stay
    /// solo.
    pub fn with_scan_fingerprint(mut self, fingerprint: u64) -> Self {
        self.scan_fingerprint = Some(fingerprint);
        self
    }

    /// Sets the panel storage tier for the distinct-value scan. `F16`/
    /// `Int8` score quantized panels ([`QuantizedArena`]) instead of f32
    /// rows, trading a bounded score error for bytes-per-row.
    pub fn with_quant_tier(mut self, tier: QuantTier) -> Self {
        self.quant = tier;
        self
    }

    /// The configured panel storage tier.
    pub fn quant_tier(&self) -> QuantTier {
        self.quant
    }

    /// The embedding cache backing this operator (for hit/miss inspection).
    pub fn cache(&self) -> &Arc<EmbeddingCache> {
        &self.cache
    }
}

impl PhysicalOperator for SemanticFilterExec {
    fn name(&self) -> String {
        let quant = match self.quant {
            QuantTier::F32 => String::new(),
            tier => format!(", quant={}", tier.label()),
        };
        format!(
            "SemanticFilter [~ {}, cos>={}{}, model={}]",
            self.target,
            self.threshold,
            quant,
            self.cache.model().name()
        )
    }

    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn scan_signature(&self) -> Option<ScanSignature> {
        // An unbound parameterized probe has no vectors to stack into a
        // shared sweep: only bound (or fixed-text) filters are shareable.
        let target = self.target.text()?;
        Some(ScanSignature {
            kind: ScanKind::CosineFilter,
            candidate_fingerprint: self.scan_fingerprint?,
            candidate_child: 0,
            candidate_column: self.column_index,
            model: self.cache.model().name().to_string(),
            quant: self.quant.discriminant(),
            probe: ProbeSource::Literal(target.to_string()),
            threshold: self.threshold,
        })
    }

    fn bind_params(&self, params: &[Scalar]) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let input = self.input.bind_params(params)?;
        if input.is_none() && self.target.text().is_some() {
            return Ok(None);
        }
        // The scan fingerprint is kept even when the input subtree was
        // rebound (two bindings of one template fingerprint alike, so
        // their sweeps may merge over one binding's candidate panel).
        // That is sound *for the filter*: injected scores are keyed by
        // value string and computed with this member's own probe, so a
        // value from the other binding's panel scores identically to the
        // solo scan, and values missing from the shared panel re-score
        // solo per value (see `execute`). The semantic join cannot make
        // this argument and drops its tags instead.
        Ok(Some(Arc::new(SemanticFilterExec {
            input: input.unwrap_or_else(|| self.input.clone()),
            column_index: self.column_index,
            target: SemanticTarget::Text(self.target.resolve(params)?),
            threshold: self.threshold,
            quant: self.quant,
            cache: self.cache.clone(),
            scan_fingerprint: self.scan_fingerprint,
            shared: Mutex::new(None),
        })))
    }

    fn inject_shared_scan(&self, state: SharedScanState) -> bool {
        match state {
            SharedScanState::FilterScores(map) => {
                *self.shared.lock().unwrap_or_else(|e| e.into_inner()) = Some(map);
                true
            }
            SharedScanState::JoinMatches(_) => false,
        }
    }

    fn execute(&self) -> Result<ChunkStream> {
        let target = self.target.text().ok_or_else(|| {
            Error::InvalidArgument(format!(
                "cannot execute semantic filter with unbound probe parameter {}; bind it first",
                self.target
            ))
        })?;
        let injected = self.shared.lock().unwrap_or_else(|e| e.into_inner()).take();
        let target_vec = self.cache.get(target);
        let target_norm = norm(&target_vec);
        // Quantized tiers score unit vectors, so normalize the target once.
        let target_unit: Vec<f32> = if target_norm > 0.0 {
            target_vec.iter().map(|x| x / target_norm).collect()
        } else {
            target_vec.to_vec()
        };
        let stream = self.input.execute()?;
        let cache = self.cache.clone();
        let column_index = self.column_index;
        let threshold = self.threshold;
        let quant = self.quant;
        // Lifecycle context, captured once on the installing thread; each
        // chunk is an embed-batch + panel sweep, so checking here bounds a
        // dead query's overshoot to one chunk of semantic work.
        let ctx = cx_storage::QueryContext::current();
        Ok(Box::new(stream.map(move |chunk| {
            ctx.check()?;
            let chunk = chunk?;
            let col = chunk.column(column_index)?;
            let values = col.utf8_values()?;

            // Deduplicate the chunk's values, embed the distinct set into a
            // contiguous arena, then score target-vs-panel with one blocked
            // threshold scan. At F32 the scores match the pairwise
            // cosine_with_norms kernel bit-for-bit; at F16/Int8 the panel
            // is quantized and scores carry the tier's bounded error.
            let mut value_id: HashMap<&str, usize> = HashMap::new();
            let mut distinct: Vec<&str> = Vec::new();
            for (i, v) in values.iter().enumerate() {
                if col.is_valid(i) {
                    value_id.entry(v.as_str()).or_insert_with(|| {
                        distinct.push(v.as_str());
                        distinct.len() - 1
                    });
                }
            }
            let mut passes = vec![false; distinct.len()];
            if let Some(map) = &injected {
                // Shared-sweep slice: scores were computed by one stacked
                // panel sweep with exactly this operator's arithmetic, so
                // each lookup is bit-identical to the solo scan below. A
                // value missing from the map (only possible under a
                // mis-grouped injection) is re-scored solo in f32.
                for (r, v) in distinct.iter().enumerate() {
                    let score = match map.get(*v) {
                        Some(&s) => s,
                        None => {
                            let vec = cache.get(v);
                            cosine_with_norms(&target_vec, &vec, target_norm, norm(&vec))
                        }
                    };
                    if score >= threshold {
                        passes[r] = true;
                    }
                }
                let mask = Bitmap::from_bools(values.iter().enumerate().map(|(i, v)| {
                    col.is_valid(i) && passes[value_id[v.as_str()]]
                }));
                return chunk.filter(&mask);
            }
            let _sweep = cx_obs::span_with("panel_sweep", || {
                format!(
                    "kind=cosine-filter tier={} panel_rows={} simd={}",
                    quant.label(),
                    distinct.len(),
                    cx_vector::simd::KernelDispatch::active().report()
                )
            });
            cx_obs::add_pairs(distinct.len() as u64);
            cx_obs::add_tiles(1);
            let arena = VectorArena::from_texts(&cache, &distinct);
            match quant {
                QuantTier::F32 => {
                    let view = arena.as_block();
                    cosine_block_threshold(
                        &target_vec,
                        target_norm,
                        view.data,
                        view.stride,
                        view.norms,
                        threshold,
                        |r, _| passes[r] = true,
                    );
                }
                tier if target_norm == 0.0 => {
                    // Zero target: cosine scores every row 0.0, whatever
                    // the tier.
                    let _ = tier;
                    if 0.0 >= threshold {
                        passes.fill(true);
                    }
                }
                tier => {
                    let panel = QuantizedArena::from_arena(&arena.normalized(), tier)
                        .map_err(|e| Error::InvalidArgument(e.to_string()))?;
                    for (r, &score) in panel.scores(&target_unit).iter().enumerate() {
                        if score >= threshold {
                            passes[r] = true;
                        }
                    }
                }
            }

            let mask = Bitmap::from_bools(values.iter().enumerate().map(|(i, v)| {
                // NULL never matches.
                col.is_valid(i) && passes[value_id[v.as_str()]]
            }));
            chunk.filter(&mask)
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};
    use cx_exec::{collect_table, TableScanExec};
    use cx_storage::{Column, Field, Table};

    fn model_cache() -> Arc<EmbeddingCache> {
        let space = SemanticSpace::build(
            &[
                ClusterSpec::new("clothes", &["boots", "parka", "windbreaker", "coat"]),
                ClusterSpec::new("animal", &["dog", "cat"]),
            ],
            64,
            42,
            ClusterGeometry::default(),
        );
        let model = ClusteredTextModel::new("m", Arc::new(space), 7);
        Arc::new(EmbeddingCache::new(Arc::new(model)))
    }

    fn items_scan() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "dog", "parka", "cat", "coat"]),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    #[test]
    fn selects_semantic_matches_only() {
        let filter =
            SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, model_cache()).unwrap();
        let out = collect_table(&filter).unwrap();
        let names = out.column_by_name("name").unwrap();
        let got: Vec<String> = names.utf8_values().unwrap().to_vec();
        assert_eq!(got, vec!["boots", "parka", "coat"]);
    }

    #[test]
    fn threshold_one_keeps_exact_target_only() {
        let filter =
            SemanticFilterExec::new(items_scan(), "name", "boots", 0.999, model_cache()).unwrap();
        let out = collect_table(&filter).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn quantized_tiers_agree_on_well_separated_clusters() {
        let exact = {
            let f = SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, model_cache())
                .unwrap();
            collect_table(&f).unwrap()
        };
        for tier in [QuantTier::F16, QuantTier::Int8] {
            let filter =
                SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, model_cache())
                    .unwrap()
                    .with_quant_tier(tier);
            assert_eq!(filter.quant_tier(), tier);
            assert!(filter.name().contains(tier.label()), "{}", filter.name());
            let out = collect_table(&filter).unwrap();
            let names = |t: &Table| -> Vec<String> {
                t.column_by_name("name").unwrap().utf8_values().unwrap().to_vec()
            };
            assert_eq!(names(&out), names(&exact), "{tier:?}");
        }
    }

    #[test]
    fn validates_column_type_and_threshold() {
        assert!(SemanticFilterExec::new(items_scan(), "id", "x", 0.9, model_cache()).is_err());
        assert!(SemanticFilterExec::new(items_scan(), "nope", "x", 0.9, model_cache()).is_err());
        assert!(SemanticFilterExec::new(items_scan(), "name", "x", 1.5, model_cache()).is_err());
    }

    #[test]
    fn null_values_never_match() {
        let table = Table::from_columns(
            Schema::new(vec![Field::new("name", DataType::Utf8)]),
            vec![Column::Utf8 {
                values: vec!["boots".into(), String::new()],
                validity: Some(Bitmap::from_bools([true, false])),
            }],
        )
        .unwrap();
        let scan = Arc::new(TableScanExec::new(Arc::new(table)));
        let filter = SemanticFilterExec::new(scan, "name", "clothes", 0.5, model_cache()).unwrap();
        let out = collect_table(&filter).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn scan_signature_requires_fingerprint() {
        let plain =
            SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, model_cache()).unwrap();
        assert!(plain.scan_signature().is_none());
        let tagged = SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, model_cache())
            .unwrap()
            .with_scan_fingerprint(0xabc);
        let sig = tagged.scan_signature().unwrap();
        assert_eq!(sig.kind, cx_exec::ScanKind::CosineFilter);
        assert_eq!(sig.candidate_fingerprint, 0xabc);
        assert_eq!(sig.candidate_column, 1);
        assert_eq!(sig.model, "m");
        assert_eq!(sig.quant, 0);
        assert_eq!(sig.threshold, 0.85);
        assert_eq!(sig.probe, cx_exec::ProbeSource::Literal("clothes".into()));
    }

    #[test]
    fn injected_scores_match_solo_scan_and_are_one_shot() {
        let cache = model_cache();
        let solo = {
            let f = SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, cache.clone())
                .unwrap();
            collect_table(&f).unwrap()
        };
        // Scores computed with the solo arithmetic, keyed by value.
        let target = cache.get("clothes");
        let tn = norm(&target);
        let map: HashMap<String, f32> = ["boots", "dog", "parka", "cat", "coat"]
            .iter()
            .map(|v| {
                let e = cache.get(v);
                (v.to_string(), cx_vector::kernels::cosine_with_norms(&target, &e, tn, norm(&e)))
            })
            .collect();
        let filter = SemanticFilterExec::new(items_scan(), "name", "clothes", 0.85, cache.clone())
            .unwrap()
            .with_scan_fingerprint(1);
        assert!(filter.inject_shared_scan(SharedScanState::FilterScores(map)));
        assert!(!filter.inject_shared_scan(SharedScanState::JoinMatches(vec![])));
        let injected = collect_table(&filter).unwrap();
        assert_eq!(injected.num_rows(), solo.num_rows());
        for r in 0..solo.num_rows() {
            assert_eq!(injected.row(r).unwrap(), solo.row(r).unwrap());
        }
        // The state was consumed: the next execution scans solo again.
        let again = collect_table(&filter).unwrap();
        assert_eq!(again.num_rows(), solo.num_rows());
        // A partial (mis-grouped) injection falls back per value and still
        // matches the solo scan.
        assert!(filter.inject_shared_scan(SharedScanState::FilterScores(HashMap::new())));
        let fallback = collect_table(&filter).unwrap();
        assert_eq!(fallback.num_rows(), solo.num_rows());
    }

    #[test]
    fn cache_reused_across_chunks() {
        let table = Table::from_rows(
            Schema::new(vec![Field::new("name", DataType::Utf8)]),
            (0..100)
                .map(|i| vec![cx_storage::Scalar::Utf8(if i % 2 == 0 { "boots" } else { "dog" }.into())])
                .collect(),
        )
        .unwrap()
        .rechunk(10)
        .unwrap();
        let scan = Arc::new(TableScanExec::new(Arc::new(table)));
        let cache = model_cache();
        let filter = SemanticFilterExec::new(scan, "name", "clothes", 0.85, cache.clone()).unwrap();
        let out = collect_table(&filter).unwrap();
        assert_eq!(out.num_rows(), 50);
        // Only 3 distinct strings embedded: target + 2 values.
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.model().stats().invocations(), 3);
    }
}

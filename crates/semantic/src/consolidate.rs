//! On-the-fly result consolidation (Figure 3).
//!
//! "Data cleaning, deduplication, entity resolution … a tedious and
//! domain-expert task becomes completely automated, allowing on-the-fly
//! result consolidation based on context." This module provides the greedy
//! online clusterer behind the semantic group-by, a direct consolidation
//! API over string collections, and pairwise quality metrics so experiments
//! can report purity/recall against ground truth — something the paper's
//! prototype could only eyeball.

use cx_embed::EmbeddingCache;
use cx_vector::kernels::{dot_unrolled, norm};
use std::collections::HashMap;
use std::sync::Arc;

/// Greedy online clustering in embedding space.
///
/// Values stream in; each joins the existing cluster whose *mean* embedding
/// is within `threshold` cosine similarity (best match wins), or founds a
/// new cluster. One pass, no global optimization — this is the online
/// regime the paper requires ("data cannot be cleaned ahead of time").
pub struct OnlineClusterer {
    dim: usize,
    threshold: f32,
    /// Unnormalized sums of member embeddings (cosine against the sum
    /// equals cosine against the mean).
    sums: Vec<Vec<f32>>,
    sum_norms: Vec<f32>,
    counts: Vec<usize>,
    representatives: Vec<String>,
}

impl OnlineClusterer {
    /// A clusterer over `dim`-dimensional embeddings.
    pub fn new(dim: usize, threshold: f32) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
        OnlineClusterer {
            dim,
            threshold,
            sums: Vec::new(),
            sum_norms: Vec::new(),
            counts: Vec::new(),
            representatives: Vec::new(),
        }
    }

    /// Assigns `value` (with embedding `emb`) to a cluster, returning the
    /// cluster id. The first member becomes the representative.
    pub fn assign(&mut self, value: &str, emb: &[f32]) -> usize {
        assert_eq!(emb.len(), self.dim, "embedding dimension mismatch");
        let emb_norm = norm(emb);
        let mut best: Option<(usize, f32)> = None;
        for (id, sum) in self.sums.iter().enumerate() {
            let denom = emb_norm * self.sum_norms[id];
            if denom == 0.0 {
                continue;
            }
            let sim = dot_unrolled(emb, sum) / denom;
            if sim >= self.threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((id, sim));
            }
        }
        match best {
            Some((id, _)) => {
                for (s, &x) in self.sums[id].iter_mut().zip(emb) {
                    *s += x;
                }
                self.sum_norms[id] = norm(&self.sums[id]);
                self.counts[id] += 1;
                id
            }
            None => {
                self.sums.push(emb.to_vec());
                self.sum_norms.push(emb_norm);
                self.counts.push(1);
                self.representatives.push(value.to_string());
                self.sums.len() - 1
            }
        }
    }

    /// Number of clusters so far.
    pub fn num_clusters(&self) -> usize {
        self.sums.len()
    }

    /// Member count of cluster `id`.
    pub fn cluster_size(&self, id: usize) -> usize {
        self.counts[id]
    }

    /// Representative (first member) of cluster `id`.
    pub fn representative(&self, id: usize) -> &str {
        &self.representatives[id]
    }
}

/// The outcome of consolidating a value collection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidationResult {
    /// Cluster id per input value (input order).
    pub assignments: Vec<usize>,
    /// Representative value per cluster (cluster-id order).
    pub representatives: Vec<String>,
    /// Member input positions per cluster.
    pub members: Vec<Vec<usize>>,
}

impl ConsolidationResult {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.representatives.len()
    }

    /// Deduplication ratio: input values per output cluster.
    pub fn dedup_ratio(&self) -> f64 {
        if self.representatives.is_empty() {
            return 1.0;
        }
        self.assignments.len() as f64 / self.representatives.len() as f64
    }
}

/// Consolidates `values`: embeds each through `cache` and clusters online at
/// `threshold`.
pub fn consolidate(
    values: &[&str],
    cache: &Arc<EmbeddingCache>,
    threshold: f32,
) -> ConsolidationResult {
    let mut clusterer = OnlineClusterer::new(cache.dim(), threshold);
    let mut assignments = Vec::with_capacity(values.len());
    for v in values {
        let emb = cache.get(v);
        assignments.push(clusterer.assign(v, &emb));
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clusterer.num_clusters()];
    for (i, &c) in assignments.iter().enumerate() {
        members[c].push(i);
    }
    ConsolidationResult {
        assignments,
        representatives: clusterer.representatives,
        members,
    }
}

/// Pairwise clustering quality versus ground-truth labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseMetrics {
    /// Of the pairs the clustering groups together, the fraction that truly
    /// belong together.
    pub precision: f64,
    /// Of the pairs that truly belong together, the fraction grouped.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes pairwise precision/recall/F1 between predicted cluster ids and
/// ground-truth labels via the contingency table (O(n) space, no O(n²)
/// pair enumeration).
pub fn pairwise_metrics(predicted: &[usize], truth: &[&str]) -> PairwiseMetrics {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let choose2 = |n: u64| -> u64 { n * n.saturating_sub(1) / 2 };

    let mut pred_sizes: HashMap<usize, u64> = HashMap::new();
    let mut truth_sizes: HashMap<&str, u64> = HashMap::new();
    let mut cells: HashMap<(usize, &str), u64> = HashMap::new();
    for (&p, &t) in predicted.iter().zip(truth) {
        *pred_sizes.entry(p).or_default() += 1;
        *truth_sizes.entry(t).or_default() += 1;
        *cells.entry((p, t)).or_default() += 1;
    }

    let same_both: u64 = cells.values().map(|&n| choose2(n)).sum();
    let same_pred: u64 = pred_sizes.values().map(|&n| choose2(n)).sum();
    let same_truth: u64 = truth_sizes.values().map(|&n| choose2(n)).sum();

    let precision = if same_pred == 0 { 1.0 } else { same_both as f64 / same_pred as f64 };
    let recall = if same_truth == 0 { 1.0 } else { same_both as f64 / same_truth as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairwiseMetrics { precision, recall, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};

    fn cache() -> Arc<EmbeddingCache> {
        let space = SemanticSpace::build(
            &[
                ClusterSpec::new("dog", &["canine", "puppy", "hound"]),
                ClusterSpec::new("cat", &["feline", "kitten"]),
                ClusterSpec::new("shoes", &["boots", "sneakers"]),
            ],
            64,
            42,
            ClusterGeometry::default(),
        );
        Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
            "m",
            Arc::new(space),
            7,
        ))))
    }

    #[test]
    fn consolidates_synonym_groups() {
        let c = cache();
        let values = ["dog", "canine", "feline", "puppy", "cat", "boots", "sneakers"];
        let result = consolidate(&values, &c, 0.82);
        assert_eq!(result.num_clusters(), 3);
        // dog, canine, puppy together.
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[3]);
        // feline with cat.
        assert_eq!(result.assignments[2], result.assignments[4]);
        // First member is the representative.
        assert_eq!(result.representatives[result.assignments[0]], "dog");
        assert!((result.dedup_ratio() - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_one_separates_everything_distinct() {
        let c = cache();
        let values = ["dog", "canine", "dog"];
        let result = consolidate(&values, &c, 0.999);
        // Only identical strings collapse.
        assert_eq!(result.num_clusters(), 2);
        assert_eq!(result.assignments[0], result.assignments[2]);
    }

    #[test]
    fn perfect_metrics_for_perfect_clustering() {
        let m = pairwise_metrics(&[0, 0, 1, 1], &["a", "a", "b", "b"]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn over_merging_hurts_precision_not_recall() {
        let m = pairwise_metrics(&[0, 0, 0, 0], &["a", "a", "b", "b"]);
        assert_eq!(m.recall, 1.0);
        assert!(m.precision < 0.5);
    }

    #[test]
    fn over_splitting_hurts_recall_not_precision() {
        let m = pairwise_metrics(&[0, 1, 2, 3], &["a", "a", "b", "b"]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn consolidation_quality_on_ground_truth() {
        let c = cache();
        let values = ["dog", "canine", "puppy", "cat", "feline", "kitten", "boots", "sneakers"];
        let truth = ["dog", "dog", "dog", "cat", "cat", "cat", "shoes", "shoes"];
        let result = consolidate(&values, &c, 0.82);
        let m = pairwise_metrics(&result.assignments, &truth);
        assert!(m.f1 > 0.95, "f1 = {}", m.f1);
    }

    #[test]
    fn clusterer_centroid_drift_is_bounded() {
        // Adding same-cluster members must not move the centroid out of the
        // cluster: assigning the cluster name later still joins it.
        let c = cache();
        let mut cl = OnlineClusterer::new(c.dim(), 0.85);
        let a = cl.assign("canine", &c.get("canine"));
        let b = cl.assign("puppy", &c.get("puppy"));
        let d = cl.assign("dog", &c.get("dog"));
        assert_eq!(a, b);
        assert_eq!(a, d);
        assert_eq!(cl.cluster_size(a), 3);
        assert_eq!(cl.representative(a), "canine");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn metrics_length_mismatch_panics() {
        pairwise_metrics(&[0], &["a", "b"]);
    }
}

//! Semantic Join: embedding-space threshold join.
//!
//! Joins two relations on the *context* of their key columns: a pair
//! matches when the keys' embeddings are within a cosine threshold under
//! the chosen representation model (Section IV, the "small robot" operator
//! of Figure 2).
//!
//! The physical strategy is selectable — exactly the physical optimization
//! space the paper says the optimizer must navigate:
//!
//! * [`SemanticJoinStrategy::NestedLoop`] — per-pair cosine with cached
//!   norms over distinct values (the honest quadratic baseline),
//! * [`SemanticJoinStrategy::PreNormalized`] — normalize once, then the
//!   inner loop is a bare unrolled dot product (the pairwise rung),
//! * [`SemanticJoinStrategy::Blocked`] — the default: normalize once, then
//!   score each probe against cache-sized tiles of the build-side arena
//!   with the blocked kernels. Scores are bit-identical to
//!   `PreNormalized`; only the schedule changes,
//! * [`SemanticJoinStrategy::Lsh`] / [`SemanticJoinStrategy::Ivf`] — probe
//!   an approximate index built on the right side, trading recall for
//!   candidate pruning.
//!
//! Distinct join-key values are deduplicated before embedding and flow
//! from the embedding cache straight into a contiguous [`VectorArena`]
//! ([`VectorArena::from_texts`]) — the arena is the single vector currency:
//! scan strategies tile it, index strategies build from it directly, and a
//! configured quantization tier ([`SemanticJoinExec::with_quant_tier`])
//! re-encodes the build side as a [`QuantizedArena`] so the probe scans
//! f16/int8 panels, trading a bounded score error for bytes-per-row.

use cx_embed::EmbeddingCache;
use cx_exec::shared::{ProbeSource, ScanKind, ScanSignature, SharedScanState};
use cx_exec::{parallel::parallel_map_ranges, ChunkStream, PhysicalOperator};
use cx_storage::{Chunk, Column, DataType, Error, Field, QueryContext, Result, Schema};
use cx_vector::block::{dot_block_threshold, TILE};
use cx_vector::ivf::IvfParams;
use cx_vector::lsh::LshParams;
use cx_vector::{
    kernels::{cosine_with_norms, dot_unrolled},
    IvfIndex, LshIndex, QuantTier, QuantizedArena, VectorArena, VectorIndex,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Physical strategies for the semantic join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SemanticJoinStrategy {
    /// Exact: cosine (with cached norms) for every distinct-value pair.
    NestedLoop,
    /// Exact: pre-normalize both sides, inner loop is a dot product.
    PreNormalized,
    /// Exact: pre-normalize both sides, probe tiles scored against build
    /// blocks with the batched kernels (bit-identical to `PreNormalized`).
    Blocked,
    /// Approximate: random-hyperplane LSH index on the right side.
    Lsh(LshParams),
    /// Approximate: IVF-Flat index on the right side.
    Ivf(IvfParams),
}

impl Default for SemanticJoinStrategy {
    /// The blocked exact scan: fastest exact rung, identical results.
    fn default() -> Self {
        SemanticJoinStrategy::Blocked
    }
}

impl SemanticJoinStrategy {
    /// Short name for EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            SemanticJoinStrategy::NestedLoop => "nested-loop",
            SemanticJoinStrategy::PreNormalized => "pre-normalized",
            SemanticJoinStrategy::Blocked => "blocked",
            SemanticJoinStrategy::Lsh(_) => "lsh",
            SemanticJoinStrategy::Ivf(_) => "ivf",
        }
    }
}

/// The semantic join physical operator.
pub struct SemanticJoinExec {
    left: Arc<dyn PhysicalOperator>,
    right: Arc<dyn PhysicalOperator>,
    left_key: usize,
    right_key: usize,
    threshold: f32,
    strategy: SemanticJoinStrategy,
    /// Build-side storage precision for the blocked scan (F32 = exact).
    quant: QuantTier,
    cache: Arc<EmbeddingCache>,
    /// Worker threads for the probe phase (1 = serial).
    parallelism: usize,
    schema: Arc<Schema>,
    /// Logical fingerprint of the right (build-side) subtree, when the
    /// planner knows it — the operator's ticket into multi-query scan
    /// sharing.
    scan_fingerprint: Option<u64>,
    /// Logical fingerprint of the left (probe-side) subtree, letting a
    /// shared-scan group materialize identical probe sides once.
    probe_fingerprint: Option<u64>,
    /// One-shot injected slice of a shared sweep: the complete
    /// value-level match list at this join's threshold; consumed by the
    /// next `execute()`.
    shared: std::sync::Mutex<Option<Vec<(String, String, f32)>>>,
    pairs_evaluated: AtomicU64,
    matches_found: AtomicU64,
}

impl SemanticJoinExec {
    /// Creates the join; both key columns must be UTF8.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Arc<dyn PhysicalOperator>,
        right: Arc<dyn PhysicalOperator>,
        left_column: &str,
        right_column: &str,
        threshold: f32,
        score_column: &str,
        strategy: SemanticJoinStrategy,
        cache: Arc<EmbeddingCache>,
        parallelism: usize,
    ) -> Result<Self> {
        let (ls, rs) = (left.schema(), right.schema());
        let left_key = ls.index_of(left_column)?;
        let right_key = rs.index_of(right_column)?;
        for (schema, idx, side) in [(&ls, left_key, "left"), (&rs, right_key, "right")] {
            let t = schema.field_at(idx)?.data_type;
            if t != DataType::Utf8 {
                return Err(Error::TypeMismatch {
                    expected: format!("UTF8 {side} join key"),
                    actual: t.to_string(),
                });
            }
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidArgument(format!(
                "semantic threshold must be in [0,1], got {threshold}"
            )));
        }
        let joined = ls.join(&rs);
        if joined.contains(score_column) {
            return Err(Error::InvalidArgument(format!(
                "score column '{score_column}' collides with join output"
            )));
        }
        let schema = Arc::new(joined.with_field(Field::new(score_column, DataType::Float64)));
        Ok(SemanticJoinExec {
            left,
            right,
            left_key,
            right_key,
            threshold,
            strategy,
            quant: QuantTier::F32,
            cache,
            parallelism: parallelism.max(1),
            schema,
            scan_fingerprint: None,
            probe_fingerprint: None,
            shared: std::sync::Mutex::new(None),
            pairs_evaluated: AtomicU64::new(0),
            matches_found: AtomicU64::new(0),
        })
    }

    /// Tags this join with the logical fingerprint of its right (build
    /// side) subtree, making its sweep shareable (see
    /// [`cx_exec::shared`]). The planner calls this; hand-built
    /// operators may skip it and stay solo.
    pub fn with_scan_fingerprint(mut self, fingerprint: u64) -> Self {
        self.scan_fingerprint = Some(fingerprint);
        self
    }

    /// Tags this join with the logical fingerprint of its left (probe
    /// side) subtree, so a shared-scan group can materialize identical
    /// probe sides once instead of once per member.
    pub fn with_probe_fingerprint(mut self, fingerprint: u64) -> Self {
        self.probe_fingerprint = Some(fingerprint);
        self
    }

    /// Sets the build-side storage tier for the blocked scan. `F16`/`Int8`
    /// score quantized panels ([`QuantizedArena`]) instead of f32 rows —
    /// 2–4× fewer bytes per candidate at a bounded score error (≲1e-3 /
    /// ≲1.2e-2 on unit vectors) — so callers with recall tolerance trade
    /// exactness for memory bandwidth. Only the `Blocked` strategy
    /// consults the tier; index strategies verify in f32.
    pub fn with_quant_tier(mut self, tier: QuantTier) -> Self {
        self.quant = tier;
        self
    }

    /// The configured build-side storage tier.
    pub fn quant_tier(&self) -> QuantTier {
        self.quant
    }

    /// Exact similarity evaluations performed so far (across executions).
    pub fn pairs_evaluated(&self) -> u64 {
        self.pairs_evaluated.load(Ordering::Relaxed)
    }

    /// Matches produced so far (distinct-value level).
    pub fn matches_found(&self) -> u64 {
        self.matches_found.load(Ordering::Relaxed)
    }

    /// The strategy this operator runs.
    pub fn strategy(&self) -> SemanticJoinStrategy {
        self.strategy
    }
}

/// Distinct values of a UTF8 column with row back-pointers; NULL rows are
/// dropped (SQL join semantics).
fn distinct_values(chunk: &Chunk, key: usize) -> Result<(Vec<String>, Vec<Vec<u32>>)> {
    let col = chunk.column(key)?;
    let values = col.utf8_values()?;
    let mut order: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for (i, v) in values.iter().enumerate() {
        if !col.is_valid(i) {
            continue;
        }
        match seen.get(v.as_str()) {
            Some(&id) => rows[id].push(i as u32),
            None => {
                seen.insert(v.as_str(), order.len());
                order.push(v.clone());
                rows.push(vec![i as u32]);
            }
        }
    }
    Ok((order, rows))
}

impl PhysicalOperator for SemanticJoinExec {
    fn name(&self) -> String {
        let quant = match self.quant {
            QuantTier::F32 => String::new(),
            tier => format!(", quant={}", tier.label()),
        };
        format!(
            "SemanticJoin [cos>={}, strategy={}{}, model={}]",
            self.threshold,
            self.strategy.label(),
            quant,
            self.cache.model().name()
        )
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.left.clone(), self.right.clone()]
    }

    fn scan_signature(&self) -> Option<ScanSignature> {
        // Only the blocked exact scan sweeps the build panel directly;
        // index strategies probe candidate lists and cannot share a
        // sweep. (Pre-normalized and nested-loop could in principle, but
        // they exist as baselines — sharing the default path is the one
        // that matters.)
        if self.strategy != SemanticJoinStrategy::Blocked {
            return None;
        }
        Some(ScanSignature {
            kind: ScanKind::DotJoin,
            candidate_fingerprint: self.scan_fingerprint?,
            candidate_child: 1,
            candidate_column: self.right_key,
            model: self.cache.model().name().to_string(),
            quant: self.quant.discriminant(),
            probe: ProbeSource::Child {
                child: 0,
                column: self.left_key,
                fingerprint: self.probe_fingerprint,
            },
            threshold: self.threshold,
        })
    }

    fn inject_shared_scan(&self, state: SharedScanState) -> bool {
        match state {
            SharedScanState::JoinMatches(matches) => {
                *self.shared.lock().unwrap_or_else(|e| e.into_inner()) = Some(matches);
                true
            }
            SharedScanState::FilterScores(_) => false,
        }
    }

    fn bind_params(
        &self,
        params: &[cx_storage::Scalar],
    ) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        let left = self.left.bind_params(params)?;
        let right = self.right.bind_params(params)?;
        if left.is_none() && right.is_none() {
            return Ok(None);
        }
        // A rebound subtree no longer matches the fingerprint the planner
        // tagged from the *template* (parameters hash by slot, so every
        // binding of one template fingerprints alike) — keeping the tags
        // would let two different bindings merge into one sweep over one
        // binding's panel. The join consumes an injected match list as
        // *complete*, so unlike the semantic filter (whose value-keyed
        // scores self-heal via per-value fallback) a mis-grouped join
        // silently drops matches. Drop the affected tag: a rebound build
        // side makes the sweep unshareable, a rebound probe side just
        // stops advertising probe-subtree reuse.
        let scan_fingerprint = if right.is_none() { self.scan_fingerprint } else { None };
        let probe_fingerprint = if left.is_none() { self.probe_fingerprint } else { None };
        Ok(Some(Arc::new(SemanticJoinExec {
            left: left.unwrap_or_else(|| self.left.clone()),
            right: right.unwrap_or_else(|| self.right.clone()),
            left_key: self.left_key,
            right_key: self.right_key,
            threshold: self.threshold,
            strategy: self.strategy,
            quant: self.quant,
            cache: self.cache.clone(),
            parallelism: self.parallelism,
            schema: self.schema.clone(),
            scan_fingerprint,
            probe_fingerprint,
            shared: std::sync::Mutex::new(None),
            pairs_evaluated: AtomicU64::new(0),
            matches_found: AtomicU64::new(0),
        })))
    }

    fn execute(&self) -> Result<ChunkStream> {
        let ctx = QueryContext::current();
        // Materialize both sides.
        let left_chunks = self.left.execute()?.collect::<Result<Vec<_>>>()?;
        let right_chunks = self.right.execute()?.collect::<Result<Vec<_>>>()?;
        let left = if left_chunks.is_empty() {
            Chunk::empty(self.left.schema())
        } else {
            Chunk::concat(&left_chunks)?
        };
        let right = if right_chunks.is_empty() {
            Chunk::empty(self.right.schema())
        } else {
            Chunk::concat(&right_chunks)?
        };
        ctx.charge(left.memory_bytes() + right.memory_bytes());
        ctx.check()?;

        let (left_vals, left_rows) = distinct_values(&left, self.left_key)?;
        let (right_vals, right_rows) = distinct_values(&right, self.right_key)?;

        let injected = self.shared.lock().unwrap_or_else(|e| e.into_inner()).take();
        let matches = match injected {
            // Shared-sweep slice: the complete value-level match list at
            // this join's threshold, scored with exactly the solo blocked
            // arithmetic. Map value strings onto this execution's own
            // distinct numbering and restore the deterministic order; no
            // embedding, no panel sweep. Pairs naming values outside this
            // execution's distinct sets (only possible under a
            // mis-grouped injection) are dropped.
            Some(inj) => {
                let lid: HashMap<&str, usize> =
                    left_vals.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
                let rid: HashMap<&str, usize> =
                    right_vals.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();
                let mut m: Vec<(usize, usize, f32)> = inj
                    .into_iter()
                    .filter_map(|(l, r, s)| {
                        Some((*lid.get(l.as_str())?, *rid.get(r.as_str())?, s))
                    })
                    .collect();
                m.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                m
            }
            None => {
                // Embed distinct values through the cache straight into
                // contiguous arena storage (no per-string Arc
                // materialization on the batch path). The arena is the one
                // vector currency: scan strategies tile it and the index
                // builders consume it directly.
                let right_arena = VectorArena::from_texts(&self.cache, &right_vals);
                let left_arena = VectorArena::from_texts(&self.cache, &left_vals);
                self.match_values(&left_arena, &right_arena)?
            }
        };
        self.matches_found
            .fetch_add(matches.len() as u64, Ordering::Relaxed);

        // Expand value matches to row pairs.
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<usize> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for &(lv, rv, score) in &matches {
            for &lr in &left_rows[lv] {
                for &rr in &right_rows[rv] {
                    left_idx.push(lr as usize);
                    right_idx.push(rr as usize);
                    scores.push(score as f64);
                }
            }
        }

        if left_idx.is_empty() {
            return Ok(Box::new(std::iter::once(Ok(Chunk::empty(
                self.schema.clone(),
            )))));
        }

        let l = left.take(&left_idx)?;
        let r = right.take(&right_idx)?;
        let zipped = l.zip(&r)?;
        let mut columns = zipped.columns().to_vec();
        columns.push(Column::from_f64(scores));
        let out = Chunk::new(self.schema.clone(), columns)?;
        Ok(Box::new(std::iter::once(Ok(out))))
    }
}

impl SemanticJoinExec {
    /// Value-level matching: `(left value id, right value id, score)`.
    ///
    /// Probe work is tiled over the left values and fanned out with
    /// [`parallel_map_ranges`]; each strategy scans (or probes an index
    /// over) the contiguous right side.
    fn match_values(
        &self,
        left: &VectorArena,
        right: &VectorArena,
    ) -> Result<Vec<(usize, usize, f32)>> {
        if left.is_empty() || right.is_empty() {
            return Ok(Vec::new());
        }
        let _sweep = cx_obs::span_with("panel_sweep", || {
            format!(
                "kind=dot-join strategy={} tier={} probes={} candidates={} simd={}",
                self.strategy.label(),
                self.quant.label(),
                left.len(),
                right.len(),
                cx_vector::simd::KernelDispatch::active().report()
            )
        });
        cx_obs::add_pairs((left.len() * right.len()) as u64);
        cx_obs::add_tiles(1);
        let threshold = self.threshold;
        // Captured here so the probe workers can check it: the fan-out
        // spawns fresh threads whose TLS is empty, so the lifecycle
        // context must travel into `scan_span` as explicit data.
        let ctx = QueryContext::current();

        // Strategy state is prepared once, before the probe fan-out.
        enum Probe<'a> {
            NestedLoop(&'a VectorArena),
            PreNorm { left: VectorArena, right: VectorArena },
            Blocked { left: VectorArena, right: VectorArena },
            Quantized { left: VectorArena, right: QuantizedArena },
            Index(Box<dyn VectorIndex>),
        }
        let probe = match self.strategy {
            SemanticJoinStrategy::NestedLoop => Probe::NestedLoop(right),
            SemanticJoinStrategy::PreNormalized => {
                Probe::PreNorm { left: left.normalized(), right: right.normalized() }
            }
            SemanticJoinStrategy::Blocked => match self.quant {
                QuantTier::F32 => {
                    Probe::Blocked { left: left.normalized(), right: right.normalized() }
                }
                tier => Probe::Quantized {
                    left: left.normalized(),
                    right: QuantizedArena::from_arena(&right.normalized(), tier)
                        .map_err(|e| Error::InvalidArgument(e.to_string()))?,
                },
            },
            SemanticJoinStrategy::Lsh(params) => {
                Probe::Index(Box::new(LshIndex::build(right, params)))
            }
            SemanticJoinStrategy::Ivf(params) => {
                Probe::Index(Box::new(IvfIndex::build(right, params)))
            }
        };

        // Scans one contiguous span of left values, returning its local
        // matches and the number of candidate pairs examined. Checks the
        // lifecycle context between probe rows / build tiles, so a span
        // overshoots a dead query's sentence by at most one tile.
        type SpanMatches = (Vec<(usize, usize, f32)>, u64);
        let scan_span =
            |span: std::ops::Range<usize>| -> Result<SpanMatches> {
                let mut local: Vec<(usize, usize, f32)> = Vec::new();
                let mut seen = 0u64;
                match &probe {
                    Probe::NestedLoop(right) => {
                        for lv in span {
                            ctx.check()?;
                            let q = left.row(lv);
                            let qn = left.row_norm(lv);
                            for rv in 0..right.len() {
                                let score =
                                    cosine_with_norms(q, right.row(rv), qn, right.row_norm(rv));
                                if score >= threshold {
                                    local.push((lv, rv, score));
                                }
                            }
                            seen += right.len() as u64;
                        }
                    }
                    Probe::PreNorm { left: ln, right: rn } => {
                        for lv in span {
                            ctx.check()?;
                            let q = ln.row(lv);
                            for rv in 0..rn.len() {
                                let score = dot_unrolled(q, rn.row(rv));
                                if score >= threshold {
                                    local.push((lv, rv, score));
                                }
                            }
                            seen += rn.len() as u64;
                        }
                    }
                    Probe::Blocked { left: ln, right: rn } => {
                        // Build-side tiles stay cache-resident while the probe
                        // span streams over them; the kernel's threshold floor
                        // skips write-back for sub-threshold candidates.
                        for t0 in (0..rn.len()).step_by(TILE) {
                            ctx.check()?;
                            let tile = rn.block(t0..(t0 + TILE).min(rn.len()));
                            for lv in span.clone() {
                                dot_block_threshold(
                                    ln.row(lv),
                                    tile.data,
                                    tile.stride,
                                    tile.rows,
                                    threshold,
                                    |r, score| local.push((lv, t0 + r, score)),
                                );
                            }
                        }
                        seen += (span.len() * rn.len()) as u64;
                    }
                    Probe::Quantized { left: ln, right: rq } => {
                        // One quantized-panel kernel call per probe; the
                        // f16/int8 panel moves 2–4× fewer bytes than the f32
                        // arena at a bounded score error.
                        let mut scores = vec![0.0f32; rq.len()];
                        for lv in span {
                            ctx.check()?;
                            rq.scores_into(ln.row(lv), &mut scores);
                            for (rv, &score) in scores.iter().enumerate() {
                                if score >= threshold {
                                    local.push((lv, rv, score));
                                }
                            }
                            seen += rq.len() as u64;
                        }
                    }
                    Probe::Index(index) => {
                        // `seen` stays 0 here: per-span deltas of the shared
                        // IndexStats counter would race across workers, so the
                        // caller takes one global delta around the fan-out.
                        for lv in span {
                            ctx.check()?;
                            for r in index.search_threshold(left.row(lv), threshold) {
                                local.push((lv, r.id, r.score));
                            }
                        }
                    }
                }
                Ok((local, seen))
            };

        let n_left = left.len();
        let workers = if self.parallelism <= 1 || n_left < 2 * self.parallelism {
            1
        } else {
            self.parallelism
        };
        // Index probes meter candidates through the index's shared stats
        // counter; one delta around the whole fan-out is race-free.
        let index_seen_before = match &probe {
            Probe::Index(index) => index.stats().candidates_examined(),
            _ => 0,
        };
        let mut matches: Vec<(usize, usize, f32)> = Vec::new();
        let mut evaluated = 0u64;
        for span_result in parallel_map_ranges(n_left, workers, scan_span) {
            let (local, seen) = span_result?;
            matches.extend(local);
            evaluated += seen;
        }
        if let Probe::Index(index) = &probe {
            evaluated += index.stats().candidates_examined() - index_seen_before;
        }
        self.pairs_evaluated.fetch_add(evaluated, Ordering::Relaxed);

        // Deterministic order regardless of parallelism or tiling.
        matches.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};
    use cx_exec::{collect_table, TableScanExec};
    use cx_storage::{Scalar, Table};

    fn cache() -> Arc<EmbeddingCache> {
        let space = SemanticSpace::build(
            &[
                ClusterSpec::new("shoes", &["boots", "sneakers", "oxfords"]),
                ClusterSpec::new("jacket", &["parka", "coat", "windbreaker"]),
                ClusterSpec::new("mug", &["cup"]),
            ],
            64,
            42,
            ClusterGeometry::default(),
        );
        Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
            "m",
            Arc::new(space),
            7,
        ))))
    }

    fn products() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4]),
                Column::from_strings(["boots", "parka", "mug", "boots"]),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    fn catalog() -> Arc<dyn PhysicalOperator> {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("label", DataType::Utf8),
                Field::new("kind", DataType::Utf8),
            ]),
            vec![
                Column::from_strings(["sneakers", "coat", "cup", "oxfords"]),
                Column::from_strings(["shoes", "jacket", "kitchen", "shoes"]),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    fn join_with(strategy: SemanticJoinStrategy, parallelism: usize) -> Table {
        let join = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.85,
            "sim",
            strategy,
            cache(),
            parallelism,
        )
        .unwrap();
        collect_table(&join).unwrap()
    }

    #[test]
    fn matches_within_clusters() {
        let out = join_with(SemanticJoinStrategy::PreNormalized, 1);
        // boots×2 rows match sneakers+oxfords (4 pairs), parka matches coat,
        // mug matches cup.
        assert_eq!(out.num_rows(), 6);
        assert_eq!(
            out.schema().names(),
            vec!["id", "name", "label", "kind", "sim"]
        );
        // Every score is above threshold.
        let sims = out.column_by_name("sim").unwrap();
        for s in sims.f64_values().unwrap() {
            assert!(*s >= 0.85);
        }
    }

    #[test]
    fn strategies_agree_on_exact_results() {
        let base = join_with(SemanticJoinStrategy::NestedLoop, 1);
        let prenorm = join_with(SemanticJoinStrategy::PreNormalized, 1);
        let blocked = join_with(SemanticJoinStrategy::Blocked, 1);
        assert_eq!(base.num_rows(), prenorm.num_rows());
        assert_eq!(base.num_rows(), blocked.num_rows());
        // Same (id, label) pairs.
        let pairs = |t: &Table| {
            let mut v: Vec<(Scalar, Scalar)> = (0..t.num_rows())
                .map(|i| {
                    let row = t.row(i).unwrap();
                    (row[0].clone(), row[2].clone())
                })
                .collect();
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        assert_eq!(pairs(&base), pairs(&prenorm));
        assert_eq!(pairs(&base), pairs(&blocked));
    }

    #[test]
    fn blocked_is_byte_identical_to_prenormalized() {
        // The blocked default must reproduce the pairwise prenormalized
        // rung exactly: same rows in the same order, scores equal to the
        // bit.
        for parallelism in [1, 4] {
            let prenorm = join_with(SemanticJoinStrategy::PreNormalized, parallelism);
            let blocked = join_with(SemanticJoinStrategy::Blocked, parallelism);
            assert_eq!(prenorm.num_rows(), blocked.num_rows());
            for i in 0..prenorm.num_rows() {
                let (a, b) = (prenorm.row(i).unwrap(), blocked.row(i).unwrap());
                assert_eq!(a[..4], b[..4], "row {i} keys (parallelism {parallelism})");
                match (&a[4], &b[4]) {
                    (Scalar::Float64(x), Scalar::Float64(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i} score")
                    }
                    other => panic!("unexpected score scalars: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn default_strategy_is_blocked() {
        assert_eq!(SemanticJoinStrategy::default(), SemanticJoinStrategy::Blocked);
        assert_eq!(SemanticJoinStrategy::default().label(), "blocked");
    }

    #[test]
    fn parallel_matches_serial() {
        for strategy in [SemanticJoinStrategy::PreNormalized, SemanticJoinStrategy::Blocked] {
            let serial = join_with(strategy, 1);
            let parallel = join_with(strategy, 4);
            assert_eq!(serial.num_rows(), parallel.num_rows());
        }
    }

    #[test]
    fn lsh_and_ivf_reach_exact_recall_here() {
        // Small, well-separated clusters: approximate strategies should
        // find everything the exact scan finds.
        let exact = join_with(SemanticJoinStrategy::PreNormalized, 1);
        let lsh = join_with(SemanticJoinStrategy::Lsh(LshParams::default()), 1);
        let ivf = join_with(
            SemanticJoinStrategy::Ivf(IvfParams { nlist: 2, nprobe: 2, iterations: 5, seed: 3 }),
            1,
        );
        assert_eq!(lsh.num_rows(), exact.num_rows());
        assert_eq!(ivf.num_rows(), exact.num_rows());
    }

    #[test]
    fn quantized_tiers_agree_on_well_separated_clusters() {
        // Cluster separation is far wider than the f16/int8 score error
        // bounds, so the quantized blocked scans must find exactly the
        // exact scan's pairs (with scores within the tier bound).
        let exact = join_with(SemanticJoinStrategy::Blocked, 1);
        for (tier, bound) in [(QuantTier::F16, 1e-3f64), (QuantTier::Int8, 1.5e-2)] {
            let join = SemanticJoinExec::new(
                products(),
                catalog(),
                "name",
                "label",
                0.85,
                "sim",
                SemanticJoinStrategy::Blocked,
                cache(),
                1,
            )
            .unwrap()
            .with_quant_tier(tier);
            assert_eq!(join.quant_tier(), tier);
            assert!(join.name().contains(tier.label()), "{}", join.name());
            let out = collect_table(&join).unwrap();
            assert_eq!(out.num_rows(), exact.num_rows(), "{tier:?}");
            let (a, b) = (
                exact.column_by_name("sim").unwrap().f64_values().unwrap().to_vec(),
                out.column_by_name("sim").unwrap().f64_values().unwrap().to_vec(),
            );
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= bound, "{tier:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn f32_tier_is_default_and_unlabeled() {
        let join = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.85,
            "sim",
            SemanticJoinStrategy::Blocked,
            cache(),
            1,
        )
        .unwrap();
        assert_eq!(join.quant_tier(), QuantTier::F32);
        assert!(!join.name().contains("quant="), "{}", join.name());
    }

    #[test]
    fn scan_signature_blocked_only_and_requires_fingerprint() {
        let make = |strategy| {
            SemanticJoinExec::new(
                products(),
                catalog(),
                "name",
                "label",
                0.85,
                "sim",
                strategy,
                cache(),
                1,
            )
            .unwrap()
        };
        assert!(make(SemanticJoinStrategy::Blocked).scan_signature().is_none());
        let tagged = make(SemanticJoinStrategy::Blocked).with_scan_fingerprint(7);
        let sig = tagged.scan_signature().unwrap();
        assert_eq!(sig.kind, cx_exec::ScanKind::DotJoin);
        assert_eq!(sig.candidate_child, 1);
        assert_eq!(sig.candidate_column, 0);
        assert_eq!(
            sig.probe,
            cx_exec::ProbeSource::Child { child: 0, column: 1, fingerprint: None }
        );
        let sig = make(SemanticJoinStrategy::Blocked)
            .with_scan_fingerprint(7)
            .with_probe_fingerprint(11)
            .scan_signature()
            .unwrap();
        assert_eq!(
            sig.probe,
            cx_exec::ProbeSource::Child { child: 0, column: 1, fingerprint: Some(11) }
        );
        // Index and baseline strategies never share.
        for s in [
            SemanticJoinStrategy::NestedLoop,
            SemanticJoinStrategy::PreNormalized,
            SemanticJoinStrategy::Lsh(LshParams::default()),
        ] {
            assert!(make(s).with_scan_fingerprint(7).scan_signature().is_none());
        }
    }

    #[test]
    fn injected_matches_reproduce_solo_join_bit_for_bit() {
        let solo = join_with(SemanticJoinStrategy::Blocked, 1);
        // Compute the value-level matches once with a solo run, then feed
        // them back as an injected shared slice.
        let c = cache();
        let probe = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.85,
            "sim",
            SemanticJoinStrategy::Blocked,
            c.clone(),
            1,
        )
        .unwrap();
        let solo_table = collect_table(&probe).unwrap();
        let mut matches: Vec<(String, String, f32)> = (0..solo_table.num_rows())
            .map(|i| {
                let row = solo_table.row(i).unwrap();
                let (l, r, s) = (&row[1], &row[2], &row[4]);
                match (l, r, s) {
                    (Scalar::Utf8(l), Scalar::Utf8(r), Scalar::Float64(s)) => {
                        (l.clone(), r.clone(), *s as f32)
                    }
                    other => panic!("unexpected row: {other:?}"),
                }
            })
            .collect();
        matches.dedup();
        let join = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.85,
            "sim",
            SemanticJoinStrategy::Blocked,
            c.clone(),
            1,
        )
        .unwrap()
        .with_scan_fingerprint(9);
        let before = c.model().stats().invocations();
        assert!(join.inject_shared_scan(SharedScanState::JoinMatches(matches)));
        assert!(!join.inject_shared_scan(SharedScanState::FilterScores(HashMap::new())));
        let injected = collect_table(&join).unwrap();
        // The injected run embedded nothing new.
        assert_eq!(c.model().stats().invocations(), before);
        assert_eq!(injected.num_rows(), solo.num_rows());
        for i in 0..solo.num_rows() {
            let (a, b) = (solo.row(i).unwrap(), injected.row(i).unwrap());
            assert_eq!(a[..4], b[..4], "row {i} keys");
            match (&a[4], &b[4]) {
                (Scalar::Float64(x), Scalar::Float64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "row {i} score")
                }
                other => panic!("unexpected score scalars: {other:?}"),
            }
        }
        // One-shot: the next execution scans solo again.
        let again = collect_table(&join).unwrap();
        assert_eq!(again.num_rows(), solo.num_rows());
    }

    #[test]
    fn distinct_value_dedup_bounds_inference() {
        let c = cache();
        let join = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.85,
            "sim",
            SemanticJoinStrategy::PreNormalized,
            c.clone(),
            1,
        )
        .unwrap();
        collect_table(&join).unwrap();
        // 3 distinct left + 4 distinct right = 7 embeddings, despite 4 left rows.
        assert_eq!(c.model().stats().invocations(), 7);
        // Exact scan evaluated 3×4 pairs.
        assert_eq!(join.pairs_evaluated(), 12);
    }

    #[test]
    fn score_column_collision_rejected() {
        let bad = SemanticJoinExec::new(
            products(),
            catalog(),
            "name",
            "label",
            0.9,
            "kind",
            SemanticJoinStrategy::NestedLoop,
            cache(),
            1,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn empty_side_yields_empty_output() {
        let empty = {
            let t = Table::empty(Arc::new(Schema::new(vec![
                Field::new("label", DataType::Utf8),
                Field::new("kind", DataType::Utf8),
            ])));
            Arc::new(TableScanExec::new(Arc::new(t))) as Arc<dyn PhysicalOperator>
        };
        let join = SemanticJoinExec::new(
            products(),
            empty,
            "name",
            "label",
            0.9,
            "sim",
            SemanticJoinStrategy::PreNormalized,
            cache(),
            1,
        )
        .unwrap();
        let out = collect_table(&join).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().len(), 5);
    }

    #[test]
    fn non_utf8_keys_rejected() {
        let bad = SemanticJoinExec::new(
            products(),
            catalog(),
            "id",
            "label",
            0.9,
            "sim",
            SemanticJoinStrategy::NestedLoop,
            cache(),
            1,
        );
        assert!(bad.is_err());
    }

    #[test]
    fn binding_a_parameterized_subtree_drops_its_sharing_tags() {
        use cx_exec::operators::FilterExec;
        use cx_expr::{col, param};

        // Two different bindings of one template fingerprint alike (the
        // planner's tags come from the template, where parameters hash by
        // slot), so a bound join must not advertise a sweep over a subtree
        // the binding changed — a mis-grouped join drops matches silently.
        let parameterized =
            |side: Arc<dyn PhysicalOperator>| -> Arc<dyn PhysicalOperator> {
                Arc::new(FilterExec::new(side, &col("id").gt(param(0))).unwrap())
            };
        let template = |left: Arc<dyn PhysicalOperator>, right: Arc<dyn PhysicalOperator>| {
            SemanticJoinExec::new(
                left,
                right,
                "name",
                "label",
                0.9,
                "sim",
                SemanticJoinStrategy::Blocked,
                cache(),
                1,
            )
            .unwrap()
            .with_scan_fingerprint(0xbeef)
            .with_probe_fingerprint(0xfeed)
        };

        // Parameter below the build (right) side: the bound join is not
        // shareable at all.
        let catalog_with_id: Arc<dyn PhysicalOperator> = {
            let table = Table::from_columns(
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("label", DataType::Utf8),
                ]),
                vec![
                    Column::from_i64(vec![1, 2, 3, 4]),
                    Column::from_strings(["sneakers", "coat", "cup", "oxfords"]),
                ],
            )
            .unwrap();
            Arc::new(TableScanExec::new(Arc::new(table)))
        };
        let join = template(products(), parameterized(catalog_with_id.clone()));
        assert!(join.scan_signature().is_some());
        let bound = join.bind_params(&[Scalar::Int64(2)]).unwrap().unwrap();
        assert!(bound.scan_signature().is_none(), "bound build side must not share");

        // Parameter below the probe (left) side: still shareable, but the
        // probe-subtree reuse hint is gone.
        let join = template(parameterized(products()), catalog());
        let bound = join.bind_params(&[Scalar::Int64(2)]).unwrap().unwrap();
        let sig = bound.scan_signature().expect("build side unchanged");
        assert_eq!(
            sig.probe,
            cx_exec::ProbeSource::Child { child: 0, column: 1, fingerprint: None }
        );

        // No parameters below either side: tags survive binding untouched.
        let join = template(products(), catalog());
        assert!(join.bind_params(&[Scalar::Int64(2)]).unwrap().is_none());
    }
}

//! Semantic Group-By: on-the-fly clustering with per-cluster aggregates.
//!
//! "Semantic GroupBy — on-the-fly clustering of the result based on a
//! model-based similarity threshold" (Section IV). Rows stream through the
//! online clusterer; aggregates accumulate per cluster exactly as in the
//! relational hash aggregate.

use crate::consolidate::OnlineClusterer;
use cx_embed::EmbeddingCache;
use cx_exec::logical::{AggFunc, AggSpec};
use cx_exec::{Accumulator, ChunkStream, PhysicalOperator};
use cx_storage::{Chunk, Column, ColumnBuilder, DataType, Error, Field, Result, Scalar, Schema};
use std::sync::Arc;

/// Groups rows by the semantic cluster of a string column.
///
/// Output schema: `[column (representative), cluster_id, ...aggregates]`.
/// NULL values form their own cluster with a NULL representative.
pub struct SemanticGroupByExec {
    input: Arc<dyn PhysicalOperator>,
    column_index: usize,
    threshold: f32,
    aggs: Vec<(AggSpec, Option<usize>)>,
    cache: Arc<EmbeddingCache>,
    schema: Arc<Schema>,
}

impl SemanticGroupByExec {
    /// Creates the operator; `column` must be UTF8.
    pub fn new(
        input: Arc<dyn PhysicalOperator>,
        column: &str,
        threshold: f32,
        aggs: &[AggSpec],
        cache: Arc<EmbeddingCache>,
    ) -> Result<Self> {
        let in_schema = input.schema();
        let column_index = in_schema.index_of(column)?;
        if in_schema.field_at(column_index)?.data_type != DataType::Utf8 {
            return Err(Error::TypeMismatch {
                expected: "UTF8 column for semantic group-by".into(),
                actual: in_schema.field_at(column_index)?.data_type.to_string(),
            });
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidArgument(format!(
                "semantic threshold must be in [0,1], got {threshold}"
            )));
        }
        let mut fields = vec![
            Field::new(column, DataType::Utf8),
            Field::new("cluster_id", DataType::Int64),
        ];
        let mut agg_cols = Vec::with_capacity(aggs.len());
        for agg in aggs {
            let idx = agg
                .column
                .as_deref()
                .map(|c| in_schema.index_of(c))
                .transpose()?;
            if idx.is_none() && agg.func != AggFunc::CountStar {
                return Err(Error::InvalidArgument(format!(
                    "{} requires an input column",
                    agg.func
                )));
            }
            fields.push(agg.output_field(&in_schema)?);
            agg_cols.push((agg.clone(), idx));
        }
        Ok(SemanticGroupByExec {
            input,
            column_index,
            threshold,
            aggs: agg_cols,
            cache,
            schema: Arc::new(Schema::new(fields)),
        })
    }
}

impl PhysicalOperator for SemanticGroupByExec {
    fn name(&self) -> String {
        format!(
            "SemanticGroupBy [cos>={}, model={}]",
            self.threshold,
            self.cache.model().name()
        )
    }

    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn children(&self) -> Vec<Arc<dyn PhysicalOperator>> {
        vec![self.input.clone()]
    }

    fn bind_params(
        &self,
        params: &[cx_storage::Scalar],
    ) -> Result<Option<Arc<dyn PhysicalOperator>>> {
        Ok(self.input.bind_params(params)?.map(|input| {
            Arc::new(SemanticGroupByExec {
                input,
                column_index: self.column_index,
                threshold: self.threshold,
                aggs: self.aggs.clone(),
                cache: self.cache.clone(),
                schema: self.schema.clone(),
            }) as Arc<dyn PhysicalOperator>
        }))
    }

    fn execute(&self) -> Result<ChunkStream> {
        let in_schema = self.input.schema();
        let make_accs = || -> Vec<Accumulator> {
            self.aggs
                .iter()
                .map(|(spec, idx)| {
                    Accumulator::new(spec.func, idx.map(|i| in_schema.fields()[i].data_type))
                })
                .collect()
        };

        let mut clusterer = OnlineClusterer::new(self.cache.dim(), self.threshold);
        let mut cluster_accs: Vec<Vec<Accumulator>> = Vec::new();
        let mut null_accs: Option<Vec<Accumulator>> = None;

        let _sweep = cx_obs::span_with("semantic_cluster", || {
            format!("kind=group-by threshold={}", self.threshold)
        });
        let ctx = cx_storage::QueryContext::current();
        for chunk in self.input.execute()? {
            ctx.check()?;
            let chunk: Chunk = chunk?;
            let col = chunk.column(self.column_index)?;
            let values = col.utf8_values()?;
            for (row, value) in values.iter().enumerate() {
                let accs = if col.is_valid(row) {
                    let emb = self.cache.get(value);
                    let id = clusterer.assign(value, &emb);
                    if id == cluster_accs.len() {
                        cluster_accs.push(make_accs());
                    }
                    &mut cluster_accs[id]
                } else {
                    null_accs.get_or_insert_with(make_accs)
                };
                for ((spec, idx), acc) in self.aggs.iter().zip(accs.iter_mut()) {
                    match (spec.func, idx) {
                        (AggFunc::CountStar, _) => acc.update(None),
                        (AggFunc::Count, Some(i)) => {
                            if chunk.columns()[*i].is_valid(row) {
                                acc.update(None);
                            }
                        }
                        (_, Some(i)) => {
                            let v = chunk.columns()[*i].get(row);
                            acc.update(Some(&v));
                        }
                        (_, None) => unreachable!("validated in constructor"),
                    }
                }
            }
        }

        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for (id, accs) in cluster_accs.iter().enumerate() {
            builders[0].push(Scalar::Utf8(clusterer.representative(id).to_string()))?;
            builders[1].push(Scalar::Int64(id as i64))?;
            for (b, acc) in builders.iter_mut().skip(2).zip(accs.iter()) {
                b.push(acc.finish())?;
            }
        }
        if let Some(accs) = &null_accs {
            builders[0].push_null();
            builders[1].push(Scalar::Int64(cluster_accs.len() as i64))?;
            for (b, acc) in builders.iter_mut().skip(2).zip(accs.iter()) {
                b.push(acc.finish())?;
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        let chunk = Chunk::new(self.schema.clone(), columns)?;
        Ok(Box::new(std::iter::once(Ok(chunk))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};
    use cx_exec::{collect_table, TableScanExec};
    use cx_storage::{Bitmap, Table};

    fn cache() -> Arc<EmbeddingCache> {
        let space = SemanticSpace::build(
            &[
                ClusterSpec::new("dog", &["canine", "puppy"]),
                ClusterSpec::new("shoes", &["boots", "sneakers"]),
            ],
            64,
            42,
            ClusterGeometry::default(),
        );
        Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
            "m",
            Arc::new(space),
            7,
        ))))
    }

    fn sales_scan(with_null: bool) -> Arc<dyn PhysicalOperator> {
        let names = ["dog", "canine", "boots", "puppy", "sneakers", "boots"];
        let amounts = [10.0, 20.0, 5.0, 30.0, 7.0, 8.0];
        let validity = if with_null {
            Some(Bitmap::from_bools([true, true, true, true, true, false]))
        } else {
            None
        };
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("name", DataType::Utf8),
                Field::new("amount", DataType::Float64),
            ]),
            vec![
                Column::Utf8 {
                    values: names.iter().map(|s| s.to_string()).collect(),
                    validity,
                },
                Column::from_f64(amounts.to_vec()),
            ],
        )
        .unwrap();
        Arc::new(TableScanExec::new(Arc::new(table)))
    }

    #[test]
    fn clusters_and_aggregates() {
        let gb = SemanticGroupByExec::new(
            sales_scan(false),
            "name",
            0.85,
            &[
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "amount", "total"),
            ],
            cache(),
        )
        .unwrap();
        let out = collect_table(&gb).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names(), vec!["name", "cluster_id", "n", "total"]);
        // Cluster 0 founded by "dog": dog, canine, puppy.
        let row0 = out.row(0).unwrap();
        assert_eq!(row0[0], Scalar::from("dog"));
        assert_eq!(row0[2], Scalar::Int64(3));
        assert_eq!(row0[3], Scalar::Float64(60.0));
        // Cluster 1 founded by "boots": boots×2, sneakers.
        let row1 = out.row(1).unwrap();
        assert_eq!(row1[0], Scalar::from("boots"));
        assert_eq!(row1[2], Scalar::Int64(3));
        assert_eq!(row1[3], Scalar::Float64(20.0));
    }

    #[test]
    fn null_values_form_their_own_group() {
        let gb = SemanticGroupByExec::new(
            sales_scan(true),
            "name",
            0.85,
            &[AggSpec::count_star("n")],
            cache(),
        )
        .unwrap();
        let out = collect_table(&gb).unwrap();
        assert_eq!(out.num_rows(), 3);
        let last = out.row(2).unwrap();
        assert_eq!(last[0], Scalar::Null);
        assert_eq!(last[2], Scalar::Int64(1));
    }

    #[test]
    fn high_threshold_degenerates_to_exact_grouping() {
        let gb = SemanticGroupByExec::new(
            sales_scan(false),
            "name",
            0.999,
            &[AggSpec::count_star("n")],
            cache(),
        )
        .unwrap();
        let out = collect_table(&gb).unwrap();
        // 5 distinct strings.
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn validation_errors() {
        assert!(SemanticGroupByExec::new(
            sales_scan(false),
            "amount",
            0.9,
            &[],
            cache()
        )
        .is_err());
        assert!(SemanticGroupByExec::new(
            sales_scan(false),
            "name",
            2.0,
            &[],
            cache()
        )
        .is_err());
        let bad_agg = AggSpec { func: AggFunc::Sum, column: None, alias: "x".into() };
        assert!(SemanticGroupByExec::new(
            sales_scan(false),
            "name",
            0.9,
            &[bad_agg],
            cache()
        )
        .is_err());
    }
}

//! The paper's new operator class: model-assisted *semantic* operators.
//!
//! Section IV proposes three operator extensions that make context-rich
//! processing declarative:
//!
//! * **Semantic Select** ([`SemanticFilterExec`]) — `column ~ 'target' USING
//!   model M WITH cosine >= θ`,
//! * **Semantic Join** ([`SemanticJoinExec`]) — join keys matched by latent-
//!   space distance instead of equality, with selectable physical strategy
//!   (nested-loop / pre-normalized scan / LSH / IVF),
//! * **Semantic Group-By** ([`SemanticGroupByExec`]) — on-the-fly clustering
//!   of values by model similarity with per-cluster aggregates.
//!
//! On top of the join/group-by machinery, [`consolidate`](mod@consolidate) implements
//! Figure 3's automated result consolidation (deduplication / entity
//! resolution), with pairwise quality metrics against ground truth.
//!
//! [`selectivity`] provides the sampling-based cardinality hooks the
//! holistic optimizer (Section V) uses to cost these operators like any
//! relational operator.

pub mod consolidate;
pub mod filter;
pub mod groupby;
pub mod join;
pub mod selectivity;

pub use consolidate::{consolidate, pairwise_metrics, ConsolidationResult, PairwiseMetrics};
pub use filter::SemanticFilterExec;
pub use groupby::SemanticGroupByExec;
pub use join::{SemanticJoinExec, SemanticJoinStrategy};
pub use selectivity::{semantic_filter_selectivity, semantic_join_selectivity};

//! Projection (column) pruning.
//!
//! Computes the columns each subtree must produce and narrows scans with
//! projections, so wide base tables don't flow through joins and model
//! operators ("exposing all the operators … and the input/output
//! characteristics is a necessary prerequisite", Section V).

use cx_exec::logical::LogicalPlan;
use cx_expr::Expr;
use cx_storage::Result;
use std::collections::BTreeSet;

/// Prunes unused columns below `plan`. The plan's own output schema is
/// preserved exactly; only interior data flow narrows. Returns the input
/// unchanged if anything cannot be resolved.
pub fn prune_columns(plan: &LogicalPlan) -> LogicalPlan {
    let needed: BTreeSet<String> = match plan.schema() {
        Ok(s) => s.names().into_iter().map(String::from).collect(),
        Err(_) => return plan.clone(),
    };
    prune(plan, &needed).unwrap_or_else(|_| plan.clone())
}

fn refs(exprs: &[&Expr]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for e in exprs {
        out.extend(e.referenced_columns());
    }
    out
}

fn prune(plan: &LogicalPlan, needed: &BTreeSet<String>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { source: _, schema } => {
            let keep: Vec<usize> = schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| needed.contains(&f.name))
                .map(|(i, _)| i)
                .collect();
            if keep.len() == schema.len() {
                plan.clone()
            } else if keep.is_empty() {
                // Keep one column so downstream row counts survive
                // (COUNT(*)-style plans).
                let first = schema.field_at(0)?;
                LogicalPlan::Project {
                    exprs: vec![(Expr::Column(first.name.clone()), first.name.clone())],
                    input: Box::new(plan.clone()),
                }
            } else {
                let exprs = keep
                    .iter()
                    .map(|&i| {
                        let f = &schema.fields()[i];
                        (Expr::Column(f.name.clone()), f.name.clone())
                    })
                    .collect();
                LogicalPlan::Project {
                    exprs,
                    input: Box::new(plan.clone()),
                }
            }
        }
        LogicalPlan::Filter { predicate, input } => {
            let mut child_needed = needed.clone();
            child_needed.extend(predicate.referenced_columns());
            LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: Box::new(prune(input, &child_needed)?),
            }
        }
        LogicalPlan::Project { exprs, input } => {
            // Drop unused output expressions; keep at least one.
            let mut kept: Vec<(Expr, String)> = exprs
                .iter()
                .filter(|(_, name)| needed.contains(name))
                .cloned()
                .collect();
            if kept.is_empty() {
                kept.push(exprs.first().cloned().ok_or_else(|| {
                    cx_storage::Error::InvalidArgument("empty projection".into())
                })?);
            }
            let child_needed = refs(&kept.iter().map(|(e, _)| e).collect::<Vec<_>>());
            LogicalPlan::Project {
                exprs: kept,
                input: Box::new(prune(input, &child_needed)?),
            }
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            let (ls, rs) = (left.schema()?, right.schema()?);
            let mut left_needed: BTreeSet<String> = BTreeSet::new();
            let mut right_needed: BTreeSet<String> = BTreeSet::new();
            for name in needed {
                // Preserve collision structure: a column kept on either
                // side keeps its counterpart so the joined names (the
                // `right.` prefix) stay stable.
                if ls.contains(name) {
                    left_needed.insert(name.clone());
                    if rs.contains(name) {
                        right_needed.insert(name.clone());
                    }
                }
                if let Some(stripped) = name.strip_prefix("right.") {
                    if rs.contains(stripped) {
                        right_needed.insert(stripped.to_string());
                        if ls.contains(stripped) {
                            left_needed.insert(stripped.to_string());
                        }
                    }
                } else if rs.contains(name) && !ls.contains(name) {
                    right_needed.insert(name.clone());
                }
            }
            for (l, r) in on {
                left_needed.insert(l.clone());
                right_needed.insert(r.clone());
                // Keys may collide too: keep both sides' key columns as-is.
                if rs.contains(l) {
                    right_needed.insert(l.clone());
                }
                if ls.contains(r) {
                    left_needed.insert(r.clone());
                }
            }
            LogicalPlan::Join {
                left: Box::new(prune(left, &left_needed)?),
                right: Box::new(prune(right, &right_needed)?),
                on: on.clone(),
                join_type: *join_type,
            }
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            let (ls, rs) = (left.schema()?, right.schema()?);
            let mut left_needed: BTreeSet<String> = BTreeSet::new();
            let mut right_needed: BTreeSet<String> = BTreeSet::new();
            for name in needed {
                if name == &spec.score_column {
                    continue; // produced by the join itself
                }
                if ls.contains(name) {
                    left_needed.insert(name.clone());
                    if rs.contains(name) {
                        right_needed.insert(name.clone());
                    }
                }
                if let Some(stripped) = name.strip_prefix("right.") {
                    if rs.contains(stripped) {
                        right_needed.insert(stripped.to_string());
                        if ls.contains(stripped) {
                            left_needed.insert(stripped.to_string());
                        }
                    }
                } else if rs.contains(name) && !ls.contains(name) {
                    right_needed.insert(name.clone());
                }
            }
            left_needed.insert(spec.left_column.clone());
            right_needed.insert(spec.right_column.clone());
            if rs.contains(&spec.left_column) {
                right_needed.insert(spec.left_column.clone());
            }
            if ls.contains(&spec.right_column) {
                left_needed.insert(spec.right_column.clone());
            }
            LogicalPlan::SemanticJoin {
                left: Box::new(prune(left, &left_needed)?),
                right: Box::new(prune(right, &right_needed)?),
                spec: spec.clone(),
            }
        }
        LogicalPlan::SemanticFilter { input, column, target, model, threshold } => {
            let mut child_needed = needed.clone();
            child_needed.insert(column.clone());
            LogicalPlan::SemanticFilter {
                input: Box::new(prune(input, &child_needed)?),
                column: column.clone(),
                target: target.clone(),
                model: model.clone(),
                threshold: *threshold,
            }
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let mut child_needed: BTreeSet<String> = group_by.iter().cloned().collect();
            for a in aggs {
                if let Some(c) = &a.column {
                    child_needed.insert(c.clone());
                }
            }
            if child_needed.is_empty() {
                // COUNT(*)-only: child keeps whatever its pruning defaults to.
                if let Ok(s) = input.schema() {
                    if let Some(f) = s.fields().first() {
                        child_needed.insert(f.name.clone());
                    }
                }
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune(input, &child_needed)?),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
        }
        LogicalPlan::SemanticGroupBy { input, column, model, threshold, aggs } => {
            let mut child_needed: BTreeSet<String> = BTreeSet::new();
            child_needed.insert(column.clone());
            for a in aggs {
                if let Some(c) = &a.column {
                    child_needed.insert(c.clone());
                }
            }
            LogicalPlan::SemanticGroupBy {
                input: Box::new(prune(input, &child_needed)?),
                column: column.clone(),
                model: model.clone(),
                threshold: *threshold,
                aggs: aggs.clone(),
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut child_needed = needed.clone();
            for k in keys {
                child_needed.insert(k.column.clone());
            }
            LogicalPlan::Sort {
                input: Box::new(prune(input, &child_needed)?),
                keys: keys.clone(),
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune(input, needed)?),
            n: *n,
        },
        // Distinct semantics depend on every column of its input: no
        // pruning below.
        LogicalPlan::Distinct { .. } => plan.clone(),
        // Union branches must stay schema-identical; prune each with the
        // same needed set.
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| prune(i, needed))
                .collect::<Result<Vec<_>>>()?,
        },
        // Cross joins: conservative (keep as-is; they are rewritten to
        // equi-joins before pruning in the standard pipeline).
        LogicalPlan::CrossJoin { .. } => plan.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::logical::{AggSpec, JoinType};
    use cx_expr::{col, lit};
    use cx_storage::{DataType, Field, Schema};
    use std::sync::Arc;

    fn wide_scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Utf8),
                Field::new("c", DataType::Float64),
                Field::new("d", DataType::Bool),
            ])),
        }
    }

    #[test]
    fn narrows_scan_under_projection() {
        let plan = LogicalPlan::Project {
            exprs: vec![(col("a"), "a".to_string())],
            input: Box::new(LogicalPlan::Filter {
                predicate: col("c").gt(lit(1.0)),
                input: Box::new(wide_scan("t")),
            }),
        };
        let pruned = prune_columns(&plan);
        // Scan now produces only {a, c}.
        let s = pruned.display_indent();
        assert!(s.contains("Project: a, c") || s.contains("Project: c, a"), "{s}");
        // Output schema unchanged.
        assert_eq!(pruned.schema().unwrap().names(), vec!["a"]);
    }

    #[test]
    fn keeps_join_keys() {
        let join = LogicalPlan::Join {
            left: Box::new(wide_scan("l")),
            right: Box::new(wide_scan("r")),
            on: vec![("b".into(), "b".into())],
            join_type: JoinType::Inner,
        };
        let plan = LogicalPlan::Project {
            exprs: vec![(col("a"), "a".to_string())],
            input: Box::new(join),
        };
        let pruned = prune_columns(&plan);
        assert_eq!(pruned.schema().unwrap().names(), vec!["a"]);
        // The join keys survive inside.
        let s = pruned.display_indent();
        assert!(s.contains("Join: b = b"), "{s}");
    }

    #[test]
    fn aggregate_needs_only_inputs() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(wide_scan("t")),
            group_by: vec!["b".into()],
            aggs: vec![AggSpec::new(cx_exec::logical::AggFunc::Sum, "c", "s")],
        };
        let pruned = prune_columns(&plan);
        let s = pruned.display_indent();
        assert!(s.contains("Project: b, c") || s.contains("Project: c, b"), "{s}");
    }

    #[test]
    fn no_pruning_below_distinct() {
        let plan = LogicalPlan::Distinct { input: Box::new(wide_scan("t")) };
        assert_eq!(prune_columns(&plan), plan);
    }

    #[test]
    fn full_width_scan_untouched() {
        let plan = wide_scan("t");
        assert_eq!(prune_columns(&plan), plan);
    }
}

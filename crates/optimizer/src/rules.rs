//! Rewrite rules over the logical plan.
//!
//! Every rule is local (rewrites one node pattern); the driver applies them
//! top-down to fixpoint. Correctness notes live on each rule.

use crate::context::OptimizerContext;
use cx_exec::logical::{JoinType, LogicalPlan};
use cx_expr::{estimate_selectivity, fold_constants, Expr};
use cx_storage::Scalar;
use std::collections::HashMap;

/// A local rewrite rule.
pub trait Rule: Send + Sync {
    /// Rule name for the optimizer trace.
    fn name(&self) -> &'static str;

    /// Attempts to rewrite `plan` (this node only); `None` = no change.
    fn apply(&self, plan: &LogicalPlan, ctx: &OptimizerContext) -> Option<LogicalPlan>;
}

/// The phase-1 rule set in application order.
pub fn standard_rules(config: &crate::context::OptimizerConfig) -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    if config.constant_folding {
        rules.push(Box::new(ConstantFoldRule));
    }
    if config.filter_pushdown {
        rules.push(Box::new(MergeFiltersRule));
        rules.push(Box::new(PushFilterThroughProjectRule));
        rules.push(Box::new(PushFilterIntoJoinRule));
        rules.push(Box::new(PushFilterIntoSemanticJoinRule));
        rules.push(Box::new(PushFilterBelowSemanticFilterRule));
        rules.push(Box::new(PushFilterBelowSortDistinctRule));
        rules.push(Box::new(PushFilterIntoUnionRule));
    }
    if config.equijoin_extraction {
        rules.push(Box::new(ExtractEquiJoinRule));
    }
    if config.data_induced_predicates {
        rules.push(Box::new(TransitivePredicateRule));
    }
    if config.semantic_dip {
        rules.push(Box::new(SemanticDipRule));
    }
    rules
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Folds literal sub-expressions in filters and projections; removes
/// always-true filters.
pub struct ConstantFoldRule;

impl Rule for ConstantFoldRule {
    fn name(&self) -> &'static str {
        "constant_fold"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        match plan {
            LogicalPlan::Filter { predicate, input } => {
                let folded = fold_constants(predicate);
                if folded == *predicate {
                    return None;
                }
                if folded == Expr::Literal(Scalar::Bool(true)) {
                    return Some((**input).clone());
                }
                Some(LogicalPlan::Filter { predicate: folded, input: input.clone() })
            }
            LogicalPlan::Project { exprs, input } => {
                let folded: Vec<(Expr, String)> = exprs
                    .iter()
                    .map(|(e, n)| (fold_constants(e), n.clone()))
                    .collect();
                if folded == *exprs {
                    return None;
                }
                Some(LogicalPlan::Project { exprs: folded, input: input.clone() })
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Filter pushdown family
// ---------------------------------------------------------------------------

/// `Filter(Filter(x))` → one filter with the conjunction.
pub struct MergeFiltersRule;

impl Rule for MergeFiltersRule {
    fn name(&self) -> &'static str {
        "merge_filters"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        if let LogicalPlan::Filter { predicate, input } = plan {
            if let LogicalPlan::Filter { predicate: inner, input: grand } = input.as_ref() {
                return Some(LogicalPlan::Filter {
                    predicate: inner.clone().and(predicate.clone()),
                    input: grand.clone(),
                });
            }
        }
        None
    }
}

/// `Filter(Project)` → `Project(Filter)` when every referenced column is a
/// plain column passthrough in the projection (rename-aware).
pub struct PushFilterThroughProjectRule;

impl Rule for PushFilterThroughProjectRule {
    fn name(&self) -> &'static str {
        "push_filter_through_project"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        let LogicalPlan::Project { exprs, input: grand } = input.as_ref() else {
            return None;
        };
        // Output name → underlying column name for passthrough expressions.
        let mut rename: HashMap<String, String> = HashMap::new();
        for (e, name) in exprs {
            if let Expr::Column(src) = e {
                rename.insert(name.clone(), src.clone());
            }
        }
        if !predicate
            .referenced_columns()
            .iter()
            .all(|c| rename.contains_key(c))
        {
            return None;
        }
        let pushed = predicate.rename_columns(&rename);
        Some(LogicalPlan::Project {
            exprs: exprs.clone(),
            input: Box::new(LogicalPlan::Filter {
                predicate: pushed,
                input: grand.clone(),
            }),
        })
    }
}

/// Classifies a column of a join's output schema to a side, handling the
/// `right.` disambiguation prefix. Returns `(side, name_on_side)` where
/// side 0 = left, 1 = right.
fn classify_column(
    name: &str,
    left_schema: &cx_storage::Schema,
    right_schema: &cx_storage::Schema,
) -> Option<(usize, String)> {
    if left_schema.contains(name) {
        return Some((0, name.to_string()));
    }
    if let Some(stripped) = name.strip_prefix("right.") {
        if right_schema.contains(stripped) {
            return Some((1, stripped.to_string()));
        }
    }
    if right_schema.contains(name) {
        return Some((1, name.to_string()));
    }
    None
}

/// Splits conjunction factors of `predicate` into (left-only, right-only,
/// remainder) relative to the join children, renaming pushed factors into
/// side-local column names.
fn split_by_side(
    predicate: &Expr,
    left: &LogicalPlan,
    right: &LogicalPlan,
) -> Option<(Vec<Expr>, Vec<Expr>, Vec<Expr>)> {
    let (ls, rs) = (left.schema().ok()?, right.schema().ok()?);
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut keep = Vec::new();
    for factor in predicate.split_conjunction() {
        let cols = factor.referenced_columns();
        let classified: Option<Vec<(usize, String, String)>> = cols
            .iter()
            .map(|c| classify_column(c, &ls, &rs).map(|(side, n)| (side, c.clone(), n)))
            .collect();
        match classified {
            Some(list) if !list.is_empty() && list.iter().all(|(s, _, _)| *s == 0) => {
                let rename: HashMap<String, String> =
                    list.into_iter().map(|(_, from, to)| (from, to)).collect();
                to_left.push(factor.rename_columns(&rename));
            }
            Some(list) if !list.is_empty() && list.iter().all(|(s, _, _)| *s == 1) => {
                let rename: HashMap<String, String> =
                    list.into_iter().map(|(_, from, to)| (from, to)).collect();
                to_right.push(factor.rename_columns(&rename));
            }
            _ => keep.push(factor),
        }
    }
    Some((to_left, to_right, keep))
}

fn wrap_filter(plan: LogicalPlan, factors: Vec<Expr>) -> LogicalPlan {
    match Expr::conjunction(factors) {
        Some(p) => LogicalPlan::Filter { predicate: p, input: Box::new(plan) },
        None => plan,
    }
}

/// Pushes filter factors into equi-join and cross-join sides.
///
/// Correctness: single-side factors commute with inner joins. For LEFT
/// joins only left-side factors move (right-side factors on the padded
/// output are not equivalent to pre-filtering the right input). Semi/anti
/// join outputs are left-only, so everything pushes left.
pub struct PushFilterIntoJoinRule;

impl Rule for PushFilterIntoJoinRule {
    fn name(&self) -> &'static str {
        "push_filter_into_join"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        match input.as_ref() {
            LogicalPlan::Join { left, right, on, join_type } => {
                let (to_left, mut to_right, mut keep) = split_by_side(predicate, left, right)?;
                if *join_type != JoinType::Inner {
                    // Right-side pushdown is only valid for inner joins.
                    keep.extend(
                        to_right
                            .drain(..)
                            .map(|f| restore_right_names(f, left, right)),
                    );
                }
                if to_left.is_empty() && to_right.is_empty() {
                    return None;
                }
                let new_join = LogicalPlan::Join {
                    left: Box::new(wrap_filter((**left).clone(), to_left)),
                    right: Box::new(wrap_filter((**right).clone(), to_right)),
                    on: on.clone(),
                    join_type: *join_type,
                };
                Some(wrap_filter(new_join, keep))
            }
            LogicalPlan::CrossJoin { left, right } => {
                let (to_left, to_right, keep) = split_by_side(predicate, left, right)?;
                if to_left.is_empty() && to_right.is_empty() {
                    return None;
                }
                let new_join = LogicalPlan::CrossJoin {
                    left: Box::new(wrap_filter((**left).clone(), to_left)),
                    right: Box::new(wrap_filter((**right).clone(), to_right)),
                };
                Some(wrap_filter(new_join, keep))
            }
            _ => None,
        }
    }
}

/// Re-applies the join-output naming to a side-local factor (inverse of the
/// rename done by `split_by_side`), for factors that end up kept above.
fn restore_right_names(factor: Expr, left: &LogicalPlan, right: &LogicalPlan) -> Expr {
    let (Ok(ls), Ok(rs)) = (left.schema(), right.schema()) else {
        return factor;
    };
    let mut rename = HashMap::new();
    for f in rs.fields() {
        if ls.contains(&f.name) {
            rename.insert(f.name.clone(), format!("right.{}", f.name));
        }
    }
    factor.rename_columns(&rename)
}

/// Pushes filter factors into semantic-join sides (inner semantics; the
/// appended score column never moves).
pub struct PushFilterIntoSemanticJoinRule;

impl Rule for PushFilterIntoSemanticJoinRule {
    fn name(&self) -> &'static str {
        "push_filter_into_semantic_join"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        let LogicalPlan::SemanticJoin { left, right, spec } = input.as_ref() else {
            return None;
        };
        // Factors referencing the score column must stay above.
        let (to_left, to_right, keep) = split_by_side(predicate, left, right)?;
        if to_left.is_empty() && to_right.is_empty() {
            return None;
        }
        let new_join = LogicalPlan::SemanticJoin {
            left: Box::new(wrap_filter((**left).clone(), to_left)),
            right: Box::new(wrap_filter((**right).clone(), to_right)),
            spec: spec.clone(),
        };
        Some(wrap_filter(new_join, keep))
    }
}

/// `Filter(SemanticFilter(x))` → `SemanticFilter(Filter(x))`: both are
/// filters (commute); the relational one is orders of magnitude cheaper per
/// row, so it runs first — the paper's "filter pushdown before model
/// inference" in its simplest form.
pub struct PushFilterBelowSemanticFilterRule;

impl Rule for PushFilterBelowSemanticFilterRule {
    fn name(&self) -> &'static str {
        "push_filter_below_semantic_filter"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        let LogicalPlan::SemanticFilter { input: grand, column, target, model, threshold } =
            input.as_ref()
        else {
            return None;
        };
        Some(LogicalPlan::SemanticFilter {
            input: Box::new(LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: grand.clone(),
            }),
            column: column.clone(),
            target: target.clone(),
            model: model.clone(),
            threshold: *threshold,
        })
    }
}

/// `Filter(Sort|Distinct)` → `Sort|Distinct(Filter)`.
pub struct PushFilterBelowSortDistinctRule;

impl Rule for PushFilterBelowSortDistinctRule {
    fn name(&self) -> &'static str {
        "push_filter_below_sort_distinct"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        match input.as_ref() {
            LogicalPlan::Sort { input: grand, keys } => Some(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: grand.clone(),
                }),
                keys: keys.clone(),
            }),
            LogicalPlan::Distinct { input: grand } => Some(LogicalPlan::Distinct {
                input: Box::new(LogicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: grand.clone(),
                }),
            }),
            _ => None,
        }
    }
}

/// `Filter(Union)` → `Union(Filter(each))`.
pub struct PushFilterIntoUnionRule;

impl Rule for PushFilterIntoUnionRule {
    fn name(&self) -> &'static str {
        "push_filter_into_union"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        let LogicalPlan::Union { inputs } = input.as_ref() else {
            return None;
        };
        Some(LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| LogicalPlan::Filter {
                    predicate: predicate.clone(),
                    input: Box::new(i.clone()),
                })
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Equi-join extraction
// ---------------------------------------------------------------------------

/// `Filter(CrossJoin)` with `l = r` factors across sides → equi `Join`.
pub struct ExtractEquiJoinRule;

impl Rule for ExtractEquiJoinRule {
    fn name(&self) -> &'static str {
        "extract_equi_join"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Filter { predicate, input } = plan else {
            return None;
        };
        let LogicalPlan::CrossJoin { left, right } = input.as_ref() else {
            return None;
        };
        let (ls, rs) = (left.schema().ok()?, right.schema().ok()?);
        let mut on: Vec<(String, String)> = Vec::new();
        let mut rest: Vec<Expr> = Vec::new();
        for factor in predicate.split_conjunction() {
            if let Expr::Binary { op: cx_expr::BinOp::Eq, left: a, right: b } = &factor {
                if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                    match (classify_column(ca, &ls, &rs), classify_column(cb, &ls, &rs)) {
                        (Some((0, la)), Some((1, rb))) => {
                            on.push((la, rb));
                            continue;
                        }
                        (Some((1, ra)), Some((0, lb))) => {
                            on.push((lb, ra));
                            continue;
                        }
                        _ => {}
                    }
                }
            }
            rest.push(factor);
        }
        if on.is_empty() {
            return None;
        }
        let join = LogicalPlan::Join {
            left: left.clone(),
            right: right.clone(),
            on,
            join_type: JoinType::Inner,
        };
        Some(wrap_filter(join, rest))
    }
}

// ---------------------------------------------------------------------------
// Data-induced predicates
// ---------------------------------------------------------------------------

/// Conjunction factors referencing exactly `{column}` found in the filter
/// chain directly above the sources of `plan` (single-input walk).
fn predicates_on_column(plan: &LogicalPlan, column: &str) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter { predicate, input } => {
                for f in predicate.split_conjunction() {
                    let refs = f.referenced_columns();
                    if refs.len() == 1 && refs.contains(column) {
                        out.push(f);
                    }
                }
                cur = input;
            }
            LogicalPlan::SemanticFilter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input } => cur = input,
            _ => break,
        }
    }
    out
}

/// Whether `factor` already holds somewhere in the filter chain of `plan`.
fn side_has_factor(plan: &LogicalPlan, factor: &Expr) -> bool {
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter { predicate, input } => {
                if predicate.split_conjunction().iter().any(|f| f == factor) {
                    return true;
                }
                cur = input;
            }
            LogicalPlan::SemanticFilter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input } => cur = input,
            _ => return false,
        }
    }
}

/// Transitive predicates across equi-joins (the classical data-induced
/// predicate \[23\]): `σ(p(k_l))(L) ⋈_{k_l=k_r} R  ⟹  p(k_r)` holds on the
/// matched R rows, so it can be pre-applied to R.
pub struct TransitivePredicateRule;

impl Rule for TransitivePredicateRule {
    fn name(&self) -> &'static str {
        "data_induced_predicates"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::Join { left, right, on, join_type } = plan else {
            return None;
        };
        if *join_type == JoinType::Left {
            // Pre-filtering the right side of a LEFT join is fine (it only
            // changes matches to NULL-pads — wait, it changes matched rows
            // to unmatched, which IS the same output as post-filtering
            // would not be; transferring left-derived predicates to the
            // right side preserves exactly the matching pairs, so it is
            // safe for all join types that only emit matched right rows).
        }
        let mut new_left = (**left).clone();
        let mut new_right = (**right).clone();
        let mut changed = false;
        for (lk, rk) in on {
            // Left → right.
            for f in predicates_on_column(left, lk) {
                let mut rename = HashMap::new();
                rename.insert(lk.clone(), rk.clone());
                let induced = f.rename_columns(&rename);
                if !side_has_factor(&new_right, &induced) {
                    new_right = LogicalPlan::Filter {
                        predicate: induced,
                        input: Box::new(new_right),
                    };
                    changed = true;
                }
            }
            // Right → left (valid for Inner/Semi/Anti? For anti join,
            // narrowing the left side changes results — only matched-pair
            // semantics allow transfer. Restrict to Inner and LeftSemi.)
            if matches!(join_type, JoinType::Inner | JoinType::LeftSemi) {
                for f in predicates_on_column(right, rk) {
                    let mut rename = HashMap::new();
                    rename.insert(rk.clone(), lk.clone());
                    let induced = f.rename_columns(&rename);
                    if !side_has_factor(&new_left, &induced) {
                        new_left = LogicalPlan::Filter {
                            predicate: induced,
                            input: Box::new(new_left),
                        };
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return None;
        }
        Some(LogicalPlan::Join {
            left: Box::new(new_left),
            right: Box::new(new_right),
            on: on.clone(),
            join_type: *join_type,
        })
    }
}

/// Semantic data-induced predicates: a semantic filter on one key of a
/// semantic join induces a *relaxed* semantic filter on the other key.
///
/// On the unit sphere, `angle(r, t) ≤ angle(r, l) + angle(l, t)`. If the
/// join guarantees `cos(r, l) ≥ θ_j` and the left filter guarantees
/// `cos(l, t) ≥ θ_f`, every matching right key satisfies
/// `cos(r, t) ≥ cos(acos θ_j + acos θ_f)` — a sound pre-filter.
pub struct SemanticDipRule;

/// The induced threshold (0 when the angles exceed a quarter turn —
/// useless but still sound; we skip below a floor).
pub fn induced_threshold(theta_join: f32, theta_filter: f32) -> f32 {
    let a = (theta_join.clamp(-1.0, 1.0) as f64).acos() + (theta_filter.clamp(-1.0, 1.0) as f64).acos();
    if a >= std::f64::consts::FRAC_PI_2 {
        0.0
    } else {
        a.cos() as f32
    }
}

/// Minimum induced threshold worth materializing as a filter.
const SEMANTIC_DIP_FLOOR: f32 = 0.3;

impl Rule for SemanticDipRule {
    fn name(&self) -> &'static str {
        "semantic_data_induced_predicates"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &OptimizerContext) -> Option<LogicalPlan> {
        let LogicalPlan::SemanticJoin { left, right, spec } = plan else {
            return None;
        };
        // Find a semantic filter on the left join key in the chain above
        // the left source (same model only).
        let mut cur: &LogicalPlan = left;
        let found = loop {
            match cur {
                LogicalPlan::SemanticFilter { input, column, target, model, threshold }
                    if *column == spec.left_column && *model == spec.model =>
                {
                    break Some((target.clone(), *threshold));
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::SemanticFilter { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Distinct { input } => cur = input,
                _ => break None,
            }
        };
        let (target, theta_f) = found?;
        let theta = induced_threshold(spec.threshold, theta_f);
        if theta < SEMANTIC_DIP_FLOOR {
            return None;
        }
        // Skip if an equal-or-stronger induced filter already exists.
        let mut cur: &LogicalPlan = right;
        loop {
            match cur {
                LogicalPlan::SemanticFilter { input, column, target: t, model, threshold } => {
                    if *column == spec.right_column
                        && *t == target
                        && *model == spec.model
                        && *threshold >= theta - 1e-6
                    {
                        return None;
                    }
                    cur = input;
                }
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Distinct { input } => cur = input,
                _ => break,
            }
        }
        Some(LogicalPlan::SemanticJoin {
            left: left.clone(),
            right: Box::new(LogicalPlan::SemanticFilter {
                input: right.clone(),
                column: spec.right_column.clone(),
                target,
                model: spec.model.clone(),
                threshold: theta,
            }),
            spec: spec.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// Predicate cascade (phase 3)
// ---------------------------------------------------------------------------

/// Splits multi-factor filters into a cascade ordered most-selective-first,
/// so later (possibly costlier) factors see fewer rows. Applied once in a
/// dedicated pass — it intentionally inverts `MergeFiltersRule`.
pub fn cascade_predicates(plan: &LogicalPlan, ctx: &OptimizerContext) -> LogicalPlan {
    let children: Vec<LogicalPlan> = plan
        .children()
        .into_iter()
        .map(|c| cascade_predicates(c, ctx))
        .collect();
    let rebuilt = plan
        .with_children(children)
        .expect("arity preserved by construction");
    if let LogicalPlan::Filter { predicate, input } = &rebuilt {
        let mut factors = predicate.split_conjunction();
        if factors.len() > 1 {
            // Stats of the scan feeding the filter, when identifiable.
            let stats = match input.as_ref() {
                LogicalPlan::Scan { source, .. } => ctx.table_stats(source),
                _ => None,
            };
            factors.sort_by(|a, b| {
                let sa = estimate_selectivity(a, stats);
                let sb = estimate_selectivity(b, stats);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut out = (**input).clone();
            for f in factors {
                out = LogicalPlan::Filter { predicate: f, input: Box::new(out) };
            }
            return out;
        }
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{OptimizerConfig, OptimizerContext};
    use cx_embed::ModelRegistry;
    use cx_exec::logical::SemanticJoinSpec;
    use cx_expr::{col, lit};
    use cx_storage::{DataType, Field, Schema};
    use std::sync::Arc;

    fn ctx() -> OptimizerContext {
        OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all())
    }

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
            )),
        }
    }

    fn products() -> LogicalPlan {
        scan(
            "products",
            &[
                ("id", DataType::Int64),
                ("name", DataType::Utf8),
                ("price", DataType::Float64),
            ],
        )
    }

    fn labels() -> LogicalPlan {
        scan("labels", &[("label", DataType::Utf8), ("category", DataType::Utf8)])
    }

    #[test]
    fn merge_filters() {
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(1.0)),
            input: Box::new(LogicalPlan::Filter {
                predicate: col("id").gt(lit(0i64)),
                input: Box::new(products()),
            }),
        };
        let out = MergeFiltersRule.apply(&plan, &ctx()).unwrap();
        let LogicalPlan::Filter { predicate, input } = &out else {
            panic!("expected filter");
        };
        assert_eq!(predicate.split_conjunction().len(), 2);
        assert!(matches!(input.as_ref(), LogicalPlan::Scan { .. }));
    }

    #[test]
    fn fold_removes_true_filter() {
        let plan = LogicalPlan::Filter {
            predicate: lit(1i64).lt(lit(2i64)),
            input: Box::new(products()),
        };
        let out = ConstantFoldRule.apply(&plan, &ctx()).unwrap();
        assert!(matches!(out, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn push_through_project_with_rename() {
        let plan = LogicalPlan::Filter {
            predicate: col("cost").gt(lit(10.0)),
            input: Box::new(LogicalPlan::Project {
                exprs: vec![
                    (col("price"), "cost".to_string()),
                    (col("name"), "name".to_string()),
                ],
                input: Box::new(products()),
            }),
        };
        let out = PushFilterThroughProjectRule.apply(&plan, &ctx()).unwrap();
        let LogicalPlan::Project { input, .. } = &out else {
            panic!("expected project on top");
        };
        let LogicalPlan::Filter { predicate, .. } = input.as_ref() else {
            panic!("expected filter below");
        };
        assert_eq!(predicate.to_string(), "(price > 10)");
        // Computed columns block pushdown.
        let blocked = LogicalPlan::Filter {
            predicate: col("double").gt(lit(10.0)),
            input: Box::new(LogicalPlan::Project {
                exprs: vec![(col("price").mul(lit(2.0)), "double".to_string())],
                input: Box::new(products()),
            }),
        };
        assert!(PushFilterThroughProjectRule.apply(&blocked, &ctx()).is_none());
    }

    #[test]
    fn push_into_inner_join_both_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(products()),
            right: Box::new(labels()),
            on: vec![("name".into(), "label".into())],
            join_type: JoinType::Inner,
        };
        let plan = LogicalPlan::Filter {
            predicate: col("price")
                .gt(lit(20.0))
                .and(col("category").eq(lit("clothes")))
                .and(col("price").lt(col("id"))),
            input: Box::new(join),
        };
        let out = PushFilterIntoJoinRule.apply(&plan, &ctx()).unwrap();
        // price>20 went left, category= went right, price<id stayed
        // (two left columns — pushable left actually! price and id are both
        // left columns, so it goes left too).
        let LogicalPlan::Join { left, right, .. } = &out else {
            panic!("join on top after full pushdown, got {out}");
        };
        assert!(matches!(left.as_ref(), LogicalPlan::Filter { .. }));
        assert!(matches!(right.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn left_join_blocks_right_pushdown() {
        let join = LogicalPlan::Join {
            left: Box::new(products()),
            right: Box::new(labels()),
            on: vec![("name".into(), "label".into())],
            join_type: JoinType::Left,
        };
        let plan = LogicalPlan::Filter {
            predicate: col("category").eq(lit("clothes")),
            input: Box::new(join),
        };
        // The only factor is right-side: no rewrite may move it.
        assert!(PushFilterIntoJoinRule.apply(&plan, &ctx()).is_none());
    }

    #[test]
    fn push_below_semantic_filter() {
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(20.0)),
            input: Box::new(LogicalPlan::SemanticFilter {
                input: Box::new(products()),
                column: "name".into(),
                target: "clothes".into(),
                model: "m".into(),
                threshold: 0.9,
            }),
        };
        let out = PushFilterBelowSemanticFilterRule.apply(&plan, &ctx()).unwrap();
        let LogicalPlan::SemanticFilter { input, .. } = &out else {
            panic!("semantic filter on top");
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn push_into_semantic_join() {
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(products()),
            right: Box::new(labels()),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(20.0)).and(col("sim").gt(lit(0.95))),
            input: Box::new(join),
        };
        let out = PushFilterIntoSemanticJoinRule.apply(&plan, &ctx()).unwrap();
        // Score factor stays above; price factor moved left.
        let LogicalPlan::Filter { predicate, input } = &out else {
            panic!("score filter must remain above");
        };
        assert_eq!(predicate.to_string(), "(sim > 0.95)");
        let LogicalPlan::SemanticJoin { left, .. } = input.as_ref() else {
            panic!("semantic join below");
        };
        assert!(matches!(left.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn extract_equi_join_from_cross() {
        let plan = LogicalPlan::Filter {
            predicate: col("name").eq(col("label")).and(col("price").gt(lit(5.0))),
            input: Box::new(LogicalPlan::CrossJoin {
                left: Box::new(products()),
                right: Box::new(labels()),
            }),
        };
        let out = ExtractEquiJoinRule.apply(&plan, &ctx()).unwrap();
        let LogicalPlan::Filter { input, .. } = &out else {
            panic!("residual filter expected");
        };
        let LogicalPlan::Join { on, join_type, .. } = input.as_ref() else {
            panic!("equi join expected");
        };
        assert_eq!(on, &vec![("name".to_string(), "label".to_string())]);
        assert_eq!(*join_type, JoinType::Inner);
    }

    #[test]
    fn transitive_dip_copies_key_predicate() {
        let left = LogicalPlan::Filter {
            predicate: col("name").eq(lit("boots")),
            input: Box::new(products()),
        };
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(labels()),
            on: vec![("name".into(), "label".into())],
            join_type: JoinType::Inner,
        };
        let out = TransitivePredicateRule.apply(&join, &ctx()).unwrap();
        let LogicalPlan::Join { right, .. } = &out else {
            panic!("join expected");
        };
        let LogicalPlan::Filter { predicate, .. } = right.as_ref() else {
            panic!("induced filter on right");
        };
        assert_eq!(predicate.to_string(), "(label = 'boots')");
        // Re-application is a no-op (already present).
        assert!(TransitivePredicateRule.apply(&out, &ctx()).is_none());
    }

    #[test]
    fn semantic_dip_induces_relaxed_filter() {
        let left = LogicalPlan::SemanticFilter {
            input: Box::new(products()),
            column: "name".into(),
            target: "clothes".into(),
            model: "m".into(),
            threshold: 0.9,
        };
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(left),
            right: Box::new(labels()),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        let out = SemanticDipRule.apply(&join, &ctx()).unwrap();
        let LogicalPlan::SemanticJoin { right, .. } = &out else {
            panic!("semantic join expected");
        };
        let LogicalPlan::SemanticFilter { threshold, target, .. } = right.as_ref() else {
            panic!("induced semantic filter expected");
        };
        assert_eq!(target.text(), Some("clothes"));
        let expected = induced_threshold(0.9, 0.9);
        assert!((threshold - expected).abs() < 1e-6);
        assert!(*threshold > 0.6 && *threshold < 0.9);
        // Idempotent.
        assert!(SemanticDipRule.apply(&out, &ctx()).is_none());
    }

    #[test]
    fn induced_threshold_math() {
        // Identical directions: join at 1.0 keeps the filter threshold.
        assert!((induced_threshold(1.0, 0.9) - 0.9).abs() < 1e-6);
        // Orthogonal-ish budgets collapse to zero.
        assert_eq!(induced_threshold(0.1, 0.1), 0.0);
        // Monotone in both arguments.
        assert!(induced_threshold(0.95, 0.9) > induced_threshold(0.9, 0.9));
    }

    #[test]
    fn cascade_orders_by_selectivity() {
        let c = ctx();
        let plan = LogicalPlan::Filter {
            predicate: col("price").gt(lit(20.0)).and(col("name").eq(lit("x"))),
            input: Box::new(products()),
        };
        let out = cascade_predicates(&plan, &c);
        // Equality (default sel 0.1) runs before range (default 1/3):
        // outermost filter is the LAST to run, so the innermost (closest to
        // scan) is the equality.
        let LogicalPlan::Filter { input, predicate: outer } = &out else {
            panic!("cascade top");
        };
        let LogicalPlan::Filter { predicate: inner, .. } = input.as_ref() else {
            panic!("cascade inner");
        };
        assert_eq!(inner.to_string(), "(name = 'x')");
        assert_eq!(outer.to_string(), "(price > 20)");
    }
}

//! Cardinality estimation across relational and semantic operators.

use crate::context::OptimizerContext;
use cx_exec::logical::LogicalPlan;
use cx_expr::estimate_selectivity;
use cx_semantic::{semantic_filter_selectivity, semantic_join_selectivity};
use std::hash::{Hash, Hasher};

/// Memo key for a sampling probe (model, sources/columns, threshold).
fn probe_key(parts: &[&str], threshold: f32) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    threshold.to_bits().hash(&mut h);
    h.finish()
}

/// Fallback row count for scans without statistics.
const DEFAULT_SCAN_ROWS: f64 = 1000.0;
/// Fallback selectivity for semantic filters without samples.
const DEFAULT_SEMANTIC_FILTER_SEL: f64 = 0.1;
/// Fallback selectivity for semantic joins without samples.
const DEFAULT_SEMANTIC_JOIN_SEL: f64 = 0.01;
/// Sample cap for selectivity probing.
const SAMPLE_CAP: usize = 128;

/// Finds the scan feeding `column` below `plan`, following single-input
/// nodes and descending into the join side that exposes the column.
fn source_of_column<'a>(plan: &'a LogicalPlan, column: &str) -> Option<(&'a str, String)> {
    match plan {
        LogicalPlan::Scan { source, schema } => {
            if schema.contains(column) {
                Some((source.as_str(), column.to_string()))
            } else {
                None
            }
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::SemanticFilter { input, .. } => source_of_column(input, column),
        LogicalPlan::Join { left, right, .. }
        | LogicalPlan::CrossJoin { left, right }
        | LogicalPlan::SemanticJoin { left, right, .. } => {
            // Join output may rename right-side collisions with "right.";
            // try verbatim on both sides, then the stripped form.
            source_of_column(left, column)
                .or_else(|| source_of_column(right, column))
                .or_else(|| {
                    column
                        .strip_prefix("right.")
                        .and_then(|c| source_of_column(right, c))
                })
        }
        _ => None,
    }
}

/// Sampled values for `column` as produced by the scan beneath `plan`.
fn samples_for<'a>(
    plan: &LogicalPlan,
    column: &str,
    ctx: &'a OptimizerContext,
) -> Option<&'a [String]> {
    let (source, col) = source_of_column(plan, column)?;
    ctx.sample(source, &col)
}

/// Estimates the number of output rows of `plan`.
pub fn estimate_rows(plan: &LogicalPlan, ctx: &OptimizerContext) -> f64 {
    match plan {
        LogicalPlan::Scan { source, .. } => ctx
            .table_stats(source)
            .map_or(DEFAULT_SCAN_ROWS, |s| s.row_count as f64),
        LogicalPlan::Filter { predicate, input } => {
            let rows = estimate_rows(input, ctx);
            // Use the stats of the scan below when the predicate references
            // one of its columns; selectivity falls back to defaults
            // otherwise.
            let stats = predicate
                .referenced_columns()
                .iter()
                .find_map(|c| source_of_column(input, c))
                .and_then(|(source, _)| ctx.table_stats(source));
            rows * estimate_selectivity(predicate, stats)
        }
        LogicalPlan::Project { input, .. } => estimate_rows(input, ctx),
        LogicalPlan::Join { left, right, on, join_type } => {
            use cx_exec::logical::JoinType::*;
            let (l, r) = (estimate_rows(left, ctx), estimate_rows(right, ctx));
            // Classic equi-join estimate: |L||R| / max NDV over key pairs.
            let mut denom: f64 = 1.0;
            for (lc, rc) in on {
                let ndv = |side: &LogicalPlan, col: &str| -> f64 {
                    source_of_column(side, col)
                        .and_then(|(s, c)| {
                            ctx.table_stats(s).and_then(|st| st.column(&c).map(|cs| cs.distinct_count as f64))
                        })
                        .unwrap_or(10.0)
                        .max(1.0)
                };
                denom = denom.max(ndv(left, lc).max(ndv(right, rc)));
            }
            let inner = (l * r / denom).max(0.0);
            match join_type {
                Inner => inner,
                Left => inner.max(l),
                LeftSemi => (l * 0.5).min(inner).max(1.0),
                LeftAnti => (l - inner).max(0.0),
            }
        }
        LogicalPlan::CrossJoin { left, right } => {
            estimate_rows(left, ctx) * estimate_rows(right, ctx)
        }
        LogicalPlan::SemanticFilter { input, column, target, model, threshold } => {
            let rows = estimate_rows(input, ctx);
            // A parameterized probe has no text to sample against at
            // prepare time: fall back to the default selectivity. The
            // prepared-statement layer re-estimates with the *bound*
            // literal at execute time, so admission sees the real cost.
            let sel = match (target.text(), samples_for(input, column, ctx), ctx.caches.get(model))
            {
                (Some(target), Some(sample), Some(cache)) => {
                    let key = probe_key(&["sf", model, column, target], *threshold);
                    ctx.memoized_selectivity(key, || {
                        semantic_filter_selectivity(cache, target, sample, *threshold, SAMPLE_CAP)
                    })
                }
                _ => DEFAULT_SEMANTIC_FILTER_SEL,
            };
            rows * sel
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            let (l, r) = (estimate_rows(left, ctx), estimate_rows(right, ctx));
            let sel = match (
                samples_for(left, &spec.left_column, ctx),
                samples_for(right, &spec.right_column, ctx),
                ctx.caches.get(&spec.model),
            ) {
                (Some(ls), Some(rs), Some(cache)) => {
                    let key = probe_key(
                        &["sj", &spec.model, &spec.left_column, &spec.right_column],
                        spec.threshold,
                    );
                    ctx.memoized_selectivity(key, || {
                        semantic_join_selectivity(cache, ls, rs, spec.threshold, 64)
                    })
                }
                _ => DEFAULT_SEMANTIC_JOIN_SEL,
            };
            l * r * sel
        }
        LogicalPlan::SemanticGroupBy { input, .. } => {
            // Clusters ≈ distinct values / mean synonyms per concept.
            (estimate_rows(input, ctx) * 0.05).max(1.0)
        }
        LogicalPlan::Aggregate { input, group_by, .. } => {
            let rows = estimate_rows(input, ctx);
            if group_by.is_empty() {
                1.0
            } else {
                let mut groups: f64 = 1.0;
                for col in group_by {
                    let ndv = source_of_column(input, col)
                        .and_then(|(s, c)| {
                            ctx.table_stats(s)
                                .and_then(|st| st.column(&c).map(|cs| cs.distinct_count as f64))
                        })
                        .unwrap_or(rows * 0.1);
                    groups *= ndv.max(1.0);
                }
                groups.min(rows)
            }
        }
        LogicalPlan::Sort { input, .. } => estimate_rows(input, ctx),
        // A parameterized limit count is unknown at prepare time: assume
        // no reduction (the conservative bound for admission control).
        LogicalPlan::Limit { input, n } => match n.fixed() {
            Some(n) => estimate_rows(input, ctx).min(n as f64),
            None => estimate_rows(input, ctx),
        },
        LogicalPlan::Distinct { input } => (estimate_rows(input, ctx) * 0.5).max(1.0),
        LogicalPlan::Union { inputs } => inputs.iter().map(|i| estimate_rows(i, ctx)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::logical::LimitCount;
    use crate::context::OptimizerConfig;
    use cx_embed::ModelRegistry;
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Schema, Table, TableStats};
    use std::sync::Arc;

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])),
        }
    }

    fn ctx_with_stats() -> OptimizerContext {
        let mut ctx = OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all());
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ]),
            vec![
                Column::from_i64((0..1000).collect()),
                Column::from_strings((0..1000).map(|i| format!("n{}", i % 10))),
                Column::from_i64((0..1000).map(|i| i % 100).collect()),
            ],
        )
        .unwrap();
        ctx.stats.insert("t".into(), TableStats::compute(&table).unwrap());
        ctx
    }

    #[test]
    fn scan_uses_stats() {
        let ctx = ctx_with_stats();
        assert_eq!(estimate_rows(&scan("t"), &ctx), 1000.0);
        assert_eq!(estimate_rows(&scan("unknown"), &ctx), DEFAULT_SCAN_ROWS);
    }

    #[test]
    fn filter_uses_histogram() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::Filter {
            predicate: col("v").lt(lit(50i64)),
            input: Box::new(scan("t")),
        };
        let est = estimate_rows(&plan, &ctx);
        assert!((est - 500.0).abs() < 75.0, "got {est}");
    }

    #[test]
    fn equi_join_divides_by_ndv() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::Join {
            left: Box::new(scan("t")),
            right: Box::new(scan("t")),
            on: vec![("name".into(), "name".into())],
            join_type: cx_exec::logical::JoinType::Inner,
        };
        // 1000×1000/10 = 100k.
        let est = estimate_rows(&plan, &ctx);
        assert!((est - 100_000.0).abs() < 1.0, "got {est}");
    }

    #[test]
    fn limit_caps() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::Limit { input: Box::new(scan("t")), n: LimitCount::Fixed(10) };
        assert_eq!(estimate_rows(&plan, &ctx), 10.0);
    }

    #[test]
    fn semantic_defaults_without_samples() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::SemanticFilter {
            input: Box::new(scan("t")),
            column: "name".into(),
            target: "clothes".into(),
            model: "m".into(),
            threshold: 0.9,
        };
        assert_eq!(estimate_rows(&plan, &ctx), 1000.0 * 0.1);
    }

    #[test]
    fn aggregate_group_estimate() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_by: vec!["name".into()],
            aggs: vec![],
        };
        assert_eq!(estimate_rows(&plan, &ctx), 10.0);
        let global = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_by: vec![],
            aggs: vec![],
        };
        assert_eq!(estimate_rows(&global, &ctx), 1.0);
    }

    #[test]
    fn cross_join_is_product() {
        let ctx = ctx_with_stats();
        let plan = LogicalPlan::CrossJoin {
            left: Box::new(scan("t")),
            right: Box::new(scan("t")),
        };
        assert_eq!(estimate_rows(&plan, &ctx), 1_000_000.0);
    }
}

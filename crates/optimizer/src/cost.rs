//! Abstract cost model over logical plans.
//!
//! Units are abstract nanoseconds; the constants encode *relative* operator
//! weights (model inference ≫ hashing ≫ scanning), which is what rewrite
//! and strategy decisions need. Per Section V, model-operator costs —
//! inference per distinct value, similarity kernels per candidate pair —
//! are first-class terms, not UDF black boxes.

use crate::cardinality::estimate_rows;
use crate::context::{OptimizerConfig, OptimizerContext};
use cx_embed::QuantTier;
use cx_exec::logical::LogicalPlan;
use cx_simd::KernelDispatch;

/// Per-row scan cost.
const SCAN_ROW: f64 = 2.0;
/// Per-row, per-predicate filter cost.
const FILTER_ROW: f64 = 4.0;
/// Per-row projection cost per expression.
const PROJECT_ROW: f64 = 2.0;
/// Per-row hash-table build/probe cost.
const HASH_ROW: f64 = 40.0;
/// Per-pair nested-loop cost.
const NL_PAIR: f64 = 8.0;
/// Cost of embedding one string (matches the default
/// `EmbeddingModel::cost_per_embedding` at ~15 chars).
const EMBED_VALUE: f64 = 650.0;
/// Cost of one similarity kernel evaluation at dim 100.
const SIM_PAIR: f64 = 30.0;
/// Per-row aggregation cost.
const AGG_ROW: f64 = 35.0;
/// Per-comparison sort cost.
const SORT_CMP: f64 = 12.0;

/// Fraction of distinct values an approximate index examines per probe.
const INDEX_PROBE_FRACTION: f64 = 0.05;
/// Per-value index build cost.
const INDEX_BUILD_VALUE: f64 = 120.0;

/// Absolute cosine-score error bound of f16 panels on unit vectors.
pub const F16_SCORE_ERROR: f64 = 1e-3;
/// Absolute cosine-score error bound of int8 panels on unit vectors.
pub const INT8_SCORE_ERROR: f64 = 1.2e-2;
/// Pair count below which quantizing a panel never pays for its build.
const QUANT_MIN_PAIRS: f64 = 65_536.0;
/// Per-value cost of quantizing one build-side row.
const QUANT_VALUE: f64 = 6.0;

/// Picks the storage tier for a semantic scan expected to evaluate
/// `est_pairs` similarity pairs under the process's active kernel
/// dispatch. See [`select_quant_tier_with`] for the selection rule.
pub fn select_quant_tier(config: &OptimizerConfig, est_pairs: f64) -> QuantTier {
    select_quant_tier_with(config, est_pairs, &KernelDispatch::active())
}

/// Picks the storage tier for a semantic scan expected to evaluate
/// `est_pairs` similarity pairs under an explicit kernel `dispatch`: the
/// cheapest tier whose documented score error stays within the configured
/// `recall_tolerance` *and* whose kernel is actually a win on the active
/// ISA. Small scans stay f32 — quantizing the panel costs more than it
/// saves below `QUANT_MIN_PAIRS`.
///
/// The f16 tier is only selectable when the dispatch runs hardware
/// conversion ([`KernelDispatch::f16_hardware`]): the software-conversion
/// f16 kernel is a measured ~15× *loss* versus f32 (bit-twiddling per
/// element swamps the bandwidth saving), so without F16C the tolerance
/// ladder skips straight from int8 to f32. int8 stays selectable on every
/// path — its accumulation is cheap integer math on all ISAs and the 4×
/// byte shrink wins wherever the panel scan is bandwidth-bound.
pub fn select_quant_tier_with(
    config: &OptimizerConfig,
    est_pairs: f64,
    dispatch: &KernelDispatch,
) -> QuantTier {
    if !config.quantization || est_pairs < QUANT_MIN_PAIRS {
        return QuantTier::F32;
    }
    if config.recall_tolerance >= INT8_SCORE_ERROR {
        QuantTier::Int8
    } else if config.recall_tolerance >= F16_SCORE_ERROR && dispatch.f16_hardware() {
        QuantTier::F16
    } else {
        QuantTier::F32
    }
}

/// Fraction of a shared-scan query's cost that stays per-query no matter
/// how many queries share the sweep: the probe-side work, threshold
/// masking / pair expansion, and the plan above the scan. The remaining
/// `1 - SHARED_EPILOGUE_FRACTION` is the sweep itself (embedding the
/// candidate panel and scoring it), which one group pays once.
pub const SHARED_EPILOGUE_FRACTION: f64 = 0.25;

/// Admission weight of one query whose panel sweep is shared by
/// `sharers` queries (multi-query scan sharing, `cx_mqo`): the fixed
/// sweep term splits across the group while the per-query epilogue stays
/// whole. `sharers = 1` is the solo cost; weights decrease monotonically
/// toward the epilogue floor as groups grow, so admission control charges
/// coalesced queries for the work they actually add.
pub fn shared_scan_cost(cost: f64, sharers: usize) -> f64 {
    let k = sharers.max(1) as f64;
    cost * (SHARED_EPILOGUE_FRACTION + (1.0 - SHARED_EPILOGUE_FRACTION) / k)
}

/// Per-pair cost factor of the f16 tier when no F16C path is active: the
/// measured ratio of software-conversion `dot_block_f16` to f32
/// `dot_block` (346 vs 22 ns/pair at dim 256). [`select_quant_tier_with`]
/// never *chooses* f16 on such a dispatch, but externally forced tiers
/// still get costed honestly.
const F16_SOFTWARE_FACTOR: f64 = 15.0;

/// Per-pair similarity cost at a storage tier under a kernel dispatch.
///
/// On hardware paths the factors track bytes-per-element (f32 4 B →
/// f16 2 B → int8 1 B), i.e. the data-movement economy of Section VI: at
/// the cardinalities where quantization is admitted ([`QUANT_MIN_PAIRS`]+)
/// panels exceed cache and the scan is bandwidth-bound, so moved bytes —
/// not per-element ALU work — dominate. The one ISA-dependent exception is
/// f16 without F16C, where per-element software conversion swamps
/// everything ([`F16_SOFTWARE_FACTOR`]).
fn sim_pair_cost(tier: QuantTier, dispatch: &KernelDispatch) -> f64 {
    SIM_PAIR
        * match tier {
            QuantTier::F32 => 1.0,
            QuantTier::F16 => {
                if dispatch.f16_hardware() {
                    0.55
                } else {
                    F16_SOFTWARE_FACTOR
                }
            }
            QuantTier::Int8 => 0.4,
        }
}

/// Estimates the total execution cost of `plan` (inclusive of children).
pub fn estimate_cost(plan: &LogicalPlan, ctx: &OptimizerContext) -> f64 {
    let children_cost: f64 = plan.children().iter().map(|c| estimate_cost(c, ctx)).sum();
    children_cost + node_cost(plan, ctx)
}

/// Distinct-value estimate for a column feeding `plan` (defaults to 10% of
/// rows when stats are missing).
fn distinct_estimate(plan: &LogicalPlan, ctx: &OptimizerContext) -> f64 {
    (estimate_rows(plan, ctx) * 0.1).max(1.0)
}

/// The cost of the node itself, excluding children.
pub fn node_cost(plan: &LogicalPlan, ctx: &OptimizerContext) -> f64 {
    match plan {
        LogicalPlan::Scan { .. } => estimate_rows(plan, ctx) * SCAN_ROW,
        LogicalPlan::Filter { predicate, input } => {
            let factors = predicate.split_conjunction().len() as f64;
            estimate_rows(input, ctx) * FILTER_ROW * factors
        }
        LogicalPlan::Project { exprs, input } => {
            estimate_rows(input, ctx) * PROJECT_ROW * exprs.len() as f64
        }
        LogicalPlan::Join { left, right, .. } => {
            (estimate_rows(left, ctx) + estimate_rows(right, ctx)) * HASH_ROW
        }
        LogicalPlan::CrossJoin { left, right } => {
            estimate_rows(left, ctx) * estimate_rows(right, ctx) * NL_PAIR
        }
        LogicalPlan::SemanticFilter { input, .. } => {
            let distinct = distinct_estimate(input, ctx);
            // Always exact f32: a single-probe scan reads the panel once,
            // so quantizing it (read + converted write) never amortizes —
            // the physical planner makes the same call.
            distinct * EMBED_VALUE + estimate_rows(input, ctx) * SIM_PAIR
        }
        LogicalPlan::SemanticJoin { left, right, .. } => {
            let dl = distinct_estimate(left, ctx);
            let dr = distinct_estimate(right, ctx);
            let embed = (dl + dr) * EMBED_VALUE;
            let dispatch = KernelDispatch::active();
            let tier = select_quant_tier_with(&ctx.config, dl * dr, &dispatch);
            let quantize = if tier == QuantTier::F32 { 0.0 } else { dr * QUANT_VALUE };
            let scan_pairs = quantize + dl * dr * sim_pair_cost(tier, &dispatch);
            if ctx.config.semantic_index_selection {
                let index = dr * INDEX_BUILD_VALUE + dl * dr * INDEX_PROBE_FRACTION * SIM_PAIR;
                embed + scan_pairs.min(index)
            } else {
                embed + scan_pairs
            }
        }
        LogicalPlan::SemanticGroupBy { input, .. } => {
            let rows = estimate_rows(input, ctx);
            let clusters = estimate_rows(plan, ctx);
            // Each row embeds (amortized by cache over distinct values) and
            // compares against every existing cluster centroid.
            distinct_estimate(input, ctx) * EMBED_VALUE + rows * clusters * SIM_PAIR
        }
        LogicalPlan::Aggregate { input, .. } => estimate_rows(input, ctx) * AGG_ROW,
        LogicalPlan::Sort { input, .. } => {
            let n = estimate_rows(input, ctx).max(2.0);
            n * n.log2() * SORT_CMP
        }
        LogicalPlan::Limit { .. } | LogicalPlan::Union { .. } | LogicalPlan::Distinct { .. } => {
            estimate_rows(plan, ctx) * SCAN_ROW
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{OptimizerConfig, OptimizerContext};
    use cx_embed::ModelRegistry;
    use cx_exec::logical::SemanticJoinSpec;
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Schema, Table, TableStats};
    use std::sync::Arc;

    fn scan(name: &str, rows: i64, ctx: &mut OptimizerContext) -> LogicalPlan {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ]),
            vec![
                Column::from_strings((0..rows).map(|i| format!("k{i}"))),
                Column::from_i64((0..rows).collect()),
            ],
        )
        .unwrap();
        ctx.stats
            .insert(name.to_string(), TableStats::compute(&table).unwrap());
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])),
        }
    }

    fn ctx() -> OptimizerContext {
        OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all())
    }

    #[test]
    fn pushdown_reduces_semantic_join_cost() {
        let mut c = ctx();
        let big_l = scan("l", 10_000, &mut c);
        let big_r = scan("r", 10_000, &mut c);
        let spec = SemanticJoinSpec {
            left_column: "k".into(),
            right_column: "k".into(),
            model: "m".into(),
            threshold: 0.9,
            score_column: "sim".into(),
        };
        let filter_above = LogicalPlan::Filter {
            predicate: col("v").lt(lit(100i64)),
            input: Box::new(LogicalPlan::SemanticJoin {
                left: Box::new(big_l.clone()),
                right: Box::new(big_r.clone()),
                spec: spec.clone(),
            }),
        };
        let filter_below = LogicalPlan::SemanticJoin {
            left: Box::new(LogicalPlan::Filter {
                predicate: col("v").lt(lit(100i64)),
                input: Box::new(big_l),
            }),
            right: Box::new(big_r),
            spec,
        };
        let (above, below) = (estimate_cost(&filter_above, &c), estimate_cost(&filter_below, &c));
        assert!(
            below < above / 5.0,
            "below {below} should be far cheaper than above {above}"
        );
    }

    #[test]
    fn semantic_join_dominated_by_model_terms() {
        let mut c = ctx();
        let l = scan("l2", 1_000, &mut c);
        let r = scan("r2", 1_000, &mut c);
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(l.clone()),
            right: Box::new(r.clone()),
            spec: SemanticJoinSpec {
                left_column: "k".into(),
                right_column: "k".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        let hash = LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            on: vec![("k".into(), "k".into())],
            join_type: cx_exec::logical::JoinType::Inner,
        };
        // Embedding + kernel terms make the semantic join strictly costlier
        // than the hash join at equal cardinalities.
        assert!(node_cost(&join, &c) > 1.5 * node_cost(&hash, &c));
    }

    #[test]
    fn index_selection_lowers_join_cost() {
        let mut with_index = ctx();
        let mut without = ctx();
        without.config.semantic_index_selection = false;
        let l1 = scan("l3", 100_000, &mut with_index);
        let r1 = scan("r3", 100_000, &mut with_index);
        scan("l3", 100_000, &mut without);
        scan("r3", 100_000, &mut without);
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(l1),
            right: Box::new(r1),
            spec: SemanticJoinSpec {
                left_column: "k".into(),
                right_column: "k".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        assert!(node_cost(&join, &with_index) < node_cost(&join, &without));
    }

    #[test]
    fn cost_is_monotone_in_input_size() {
        let mut c = ctx();
        let small = scan("s", 100, &mut c);
        let large = scan("L", 100_000, &mut c);
        assert!(estimate_cost(&large, &c) > estimate_cost(&small, &c));
    }

    /// A dispatch with hardware f16 conversion (explicit, so these tests
    /// hold regardless of the host CPU or `CX_SIMD`).
    fn hw_dispatch() -> KernelDispatch {
        KernelDispatch {
            f32_path: cx_simd::F32Path::Avx2,
            f16_path: cx_simd::F16Path::F16cAvx2,
            int8_path: cx_simd::Int8Path::Avx2,
        }
    }

    /// The `CX_SIMD=off` dispatch: every family on its scalar path.
    fn scalar_dispatch() -> KernelDispatch {
        cx_simd::resolve_mode(cx_simd::SimdMode::Off).expect("off always resolves")
    }

    #[test]
    fn tier_selection_follows_tolerance_and_scale() {
        let hw = hw_dispatch();
        let mut config = OptimizerConfig::all();
        // Default tolerance 0.0: always exact.
        assert_eq!(select_quant_tier_with(&config, 1e9, &hw), QuantTier::F32);
        // Tolerance admits f16, then int8.
        config.recall_tolerance = 2e-3;
        assert_eq!(select_quant_tier_with(&config, 1e9, &hw), QuantTier::F16);
        config.recall_tolerance = 5e-2;
        assert_eq!(select_quant_tier_with(&config, 1e9, &hw), QuantTier::Int8);
        // Small scans never quantize: build cost dominates.
        assert_eq!(select_quant_tier_with(&config, 1_000.0, &hw), QuantTier::F32);
        // Feature switch wins over tolerance.
        config.quantization = false;
        assert_eq!(select_quant_tier_with(&config, 1e9, &hw), QuantTier::F32);
    }

    #[test]
    fn f16_tier_requires_hardware_conversion() {
        let mut config = OptimizerConfig::all();
        config.recall_tolerance = 2e-3; // admits f16, not int8
        assert_eq!(select_quant_tier_with(&config, 1e9, &hw_dispatch()), QuantTier::F16);
        // Without F16C the f16 tier is a measured 15× loss: never chosen.
        assert_eq!(select_quant_tier_with(&config, 1e9, &scalar_dispatch()), QuantTier::F32);
        // int8's exact integer kernels stay admissible on every path.
        config.recall_tolerance = 5e-2;
        assert_eq!(select_quant_tier_with(&config, 1e9, &scalar_dispatch()), QuantTier::Int8);
    }

    #[test]
    fn tier_selection_consistent_under_every_host_mode() {
        // Sweep every mode this host can run (side-effect-free resolution,
        // not force_mode — other tests in this binary read the active
        // dispatch concurrently).
        let mut config = OptimizerConfig::all();
        config.recall_tolerance = 2e-3;
        for mode in cx_simd::available_modes() {
            let d = cx_simd::resolve_mode(mode).expect("listed mode resolves");
            let tier = select_quant_tier_with(&config, 1e9, &d);
            if d.f16_hardware() {
                assert_eq!(tier, QuantTier::F16, "mode {}", mode.label());
            } else {
                assert_eq!(tier, QuantTier::F32, "mode {}", mode.label());
            }
            // The costed f16 factor must mirror the same gate.
            let f16_cost = sim_pair_cost(QuantTier::F16, &d);
            if d.f16_hardware() {
                assert!(f16_cost < SIM_PAIR, "mode {}", mode.label());
            } else {
                assert!(f16_cost > SIM_PAIR, "mode {}", mode.label());
            }
        }
    }

    #[test]
    fn shared_scan_cost_splits_sweep_keeps_epilogue() {
        let solo = 1000.0;
        assert_eq!(shared_scan_cost(solo, 1), solo);
        assert_eq!(shared_scan_cost(solo, 0), solo); // clamped
        let mut prev = solo;
        for k in 2..=16 {
            let c = shared_scan_cost(solo, k);
            assert!(c < prev, "k={k}: {c} !< {prev}");
            assert!(c >= solo * SHARED_EPILOGUE_FRACTION);
            prev = c;
        }
        // A full group of 8 admits well under half the solo weight.
        assert!(shared_scan_cost(solo, 8) < 0.45 * solo);
    }

    #[test]
    fn recall_tolerance_lowers_semantic_join_cost() {
        let mut exact = ctx();
        exact.config.semantic_index_selection = false;
        let mut quant = ctx();
        quant.config.semantic_index_selection = false;
        quant.config.recall_tolerance = 5e-2;
        let l1 = scan("lq", 20_000, &mut exact);
        let r1 = scan("rq", 20_000, &mut exact);
        scan("lq", 20_000, &mut quant);
        scan("rq", 20_000, &mut quant);
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(l1),
            right: Box::new(r1),
            spec: SemanticJoinSpec {
                left_column: "k".into(),
                right_column: "k".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        // int8 panels scale the kernel term by ~0.4, so the quantized plan
        // must be visibly cheaper at equal cardinalities.
        assert!(node_cost(&join, &quant) < 0.9 * node_cost(&join, &exact));
    }
}

//! Optimizer context: statistics, samples, models, and configuration.

use cx_embed::{EmbeddingCache, ModelRegistry};
use cx_storage::TableStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Feature switches for the optimizer.
///
/// Each flag maps to one of the optimizations the paper's Figure 4 ablates
/// additively; experiments toggle them to reproduce the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Constant folding in predicates and projections.
    pub constant_folding: bool,
    /// Filter pushdown through projections, joins and semantic operators.
    pub filter_pushdown: bool,
    /// Split conjunctions into cascades ordered by estimated selectivity.
    pub predicate_cascade: bool,
    /// Column pruning (insert projections above scans).
    pub projection_pruning: bool,
    /// Rewrite CrossJoin+Filter into equi-joins.
    pub equijoin_extraction: bool,
    /// Transitive (data-induced) predicates across equi-joins.
    pub data_induced_predicates: bool,
    /// Angular-relaxed semantic filters across semantic joins.
    pub semantic_dip: bool,
    /// Cost-based semantic join strategy selection (index vs scan).
    pub semantic_index_selection: bool,
    /// Quantization tier selection for semantic scans (f32/f16/int8 panels
    /// per scan, the paper's Section VI half-precision opportunity). The
    /// tier actually chosen also depends on `recall_tolerance` and the
    /// estimated pair count — see `cost::select_quant_tier`.
    pub quantization: bool,
    /// Maximum tolerated absolute cosine-score error for quantized panels.
    /// `0.0` (the default) keeps every scan exact (f32) even when
    /// `quantization` is on; raise it to let large scans drop to f16
    /// (error ≲ 1e-3) or int8 (≲ 1.2e-2).
    pub recall_tolerance: f64,
    /// Probe-side parallelism for semantic joins (1 = serial).
    pub parallelism: usize,
}

impl OptimizerConfig {
    /// Everything on (default parallelism = available cores).
    pub fn all() -> Self {
        OptimizerConfig {
            constant_folding: true,
            filter_pushdown: true,
            predicate_cascade: true,
            projection_pruning: true,
            equijoin_extraction: true,
            data_induced_predicates: true,
            semantic_dip: true,
            semantic_index_selection: true,
            quantization: true,
            recall_tolerance: 0.0,
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Everything off (the naive pipeline of Figure 4's left-most bar).
    pub fn none() -> Self {
        OptimizerConfig {
            constant_folding: false,
            filter_pushdown: false,
            predicate_cascade: false,
            projection_pruning: false,
            equijoin_extraction: false,
            data_induced_predicates: false,
            semantic_dip: false,
            semantic_index_selection: false,
            quantization: false,
            recall_tolerance: 0.0,
            parallelism: 1,
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Most sampling-probe results memoized per context (~16 bytes each).
pub const SELECTIVITY_MEMO_CAP: usize = 65_536;

/// Everything the optimizer may consult while rewriting and costing.
pub struct OptimizerContext {
    /// Per-source table statistics.
    pub stats: HashMap<String, TableStats>,
    /// `(source, column)` → sampled string values, for semantic
    /// selectivity estimation.
    pub samples: HashMap<(String, String), Vec<String>>,
    /// Named embedding models.
    pub models: Arc<ModelRegistry>,
    /// Shared per-model embedding caches (also used at execution time, so
    /// optimizer sampling warms execution).
    pub caches: HashMap<String, Arc<EmbeddingCache>>,
    /// Feature switches.
    pub config: OptimizerConfig,
    /// Memo for sampling-based selectivity probes: cardinality and cost
    /// estimation revisit the same semantic operators many times per
    /// optimization pass, and each probe embeds/compares a sample — memoize
    /// by a caller-provided key so each distinct probe runs once.
    selectivity_memo: Mutex<HashMap<u64, f64>>,
}

impl OptimizerContext {
    /// A context with no statistics and the given config.
    pub fn new(models: Arc<ModelRegistry>, config: OptimizerConfig) -> Self {
        OptimizerContext {
            stats: HashMap::new(),
            samples: HashMap::new(),
            models,
            caches: HashMap::new(),
            config,
            selectivity_memo: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the memoized value for `key`, computing it once via
    /// `compute` on first use.
    ///
    /// The memo is bounded: past [`SELECTIVITY_MEMO_CAP`] entries new keys
    /// are computed but not stored. One optimization pass never gets near
    /// the cap; the bound exists for long-lived contexts (the engine's
    /// per-catalog-version cost-estimation snapshot), where a prepared
    /// storm of millions of distinct probe literals would otherwise grow
    /// the map without limit.
    pub fn memoized_selectivity(&self, key: u64, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(v) = self.selectivity_memo.lock().get(&key) {
            return *v;
        }
        let v = compute();
        let mut memo = self.selectivity_memo.lock();
        if memo.len() < SELECTIVITY_MEMO_CAP {
            memo.insert(key, v);
        }
        v
    }

    /// Stats for `source`, if collected.
    pub fn table_stats(&self, source: &str) -> Option<&TableStats> {
        self.stats.get(source)
    }

    /// Sampled values of `(source, column)`.
    pub fn sample(&self, source: &str, column: &str) -> Option<&[String]> {
        self.samples
            .get(&(source.to_string(), column.to_string()))
            .map(|v| v.as_slice())
    }

    /// The shared cache for `model`, creating it on first use.
    pub fn cache_for(&mut self, model: &str) -> Option<Arc<EmbeddingCache>> {
        if let Some(c) = self.caches.get(model) {
            return Some(c.clone());
        }
        let m = self.models.get(model)?;
        let cache = Arc::new(EmbeddingCache::new(m));
        self.caches.insert(model.to_string(), cache.clone());
        Some(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::HashNGramModel;

    #[test]
    fn config_presets() {
        let all = OptimizerConfig::all();
        assert!(all.filter_pushdown && all.semantic_dip);
        assert!(all.parallelism >= 1);
        let none = OptimizerConfig::none();
        assert!(!none.filter_pushdown && !none.constant_folding);
        assert_eq!(none.parallelism, 1);
    }

    #[test]
    fn selectivity_memo_is_bounded() {
        let ctx = OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all());
        for key in 0..(SELECTIVITY_MEMO_CAP as u64 + 100) {
            ctx.memoized_selectivity(key, || 0.5);
        }
        assert_eq!(ctx.selectivity_memo.lock().len(), SELECTIVITY_MEMO_CAP);
        // Keys past the cap still compute correctly, just unmemoized.
        assert_eq!(ctx.memoized_selectivity(u64::MAX, || 0.25), 0.25);
        // Memoized keys still hit.
        assert_eq!(ctx.memoized_selectivity(0, || panic!("memo miss")), 0.5);
    }

    #[test]
    fn cache_for_resolves_and_memoizes() {
        let registry = Arc::new(ModelRegistry::new());
        registry.register(Arc::new(HashNGramModel::with_params("m", 8, 1, 3, 3, 64)));
        let mut ctx = OptimizerContext::new(registry, OptimizerConfig::all());
        let a = ctx.cache_for("m").unwrap();
        let b = ctx.cache_for("m").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(ctx.cache_for("missing").is_none());
    }
}

//! The optimizer driver: rules → pruning → cascades, with a trace.

use crate::context::OptimizerContext;
use crate::pruning::prune_columns;
use crate::rules::{cascade_predicates, standard_rules, Rule};
use cx_exec::logical::LogicalPlan;

/// Upper bound on fixpoint iterations (defensive; rules are designed to
/// converge long before this).
const MAX_PASSES: usize = 32;

/// The rule-driven logical optimizer.
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
}

impl Optimizer {
    /// An optimizer honouring `ctx.config`.
    pub fn new(ctx: &OptimizerContext) -> Self {
        Optimizer { rules: standard_rules(&ctx.config) }
    }

    /// Optimizes `plan`, returning the rewritten plan and the names of
    /// rules that fired (in application order, deduplicated).
    pub fn optimize(&self, plan: &LogicalPlan, ctx: &OptimizerContext) -> (LogicalPlan, Vec<String>) {
        let mut current = plan.clone();
        let mut trace: Vec<String> = Vec::new();

        // Phase 1: local rules to fixpoint.
        for _ in 0..MAX_PASSES {
            let (next, changed) = self.one_pass(&current, ctx, &mut trace);
            current = next;
            if !changed {
                break;
            }
        }

        // Phase 2: projection pruning (single structural pass).
        if ctx.config.projection_pruning {
            let pruned = prune_columns(&current);
            if pruned != current {
                trace.push("projection_pruning".to_string());
                current = pruned;
            }
        }

        // Phase 3: predicate cascades (intentionally inverts filter
        // merging, so it runs outside the fixpoint).
        if ctx.config.predicate_cascade {
            let cascaded = cascade_predicates(&current, ctx);
            if cascaded != current {
                trace.push("predicate_cascade".to_string());
                current = cascaded;
            }
        }

        trace.dedup();
        (current, trace)
    }

    /// One top-down pass applying every rule at every node.
    fn one_pass(
        &self,
        plan: &LogicalPlan,
        ctx: &OptimizerContext,
        trace: &mut Vec<String>,
    ) -> (LogicalPlan, bool) {
        let mut node = plan.clone();
        let mut changed = false;
        // Apply rules at this node until none fires.
        loop {
            let mut fired = false;
            for rule in &self.rules {
                if let Some(next) = rule.apply(&node, ctx) {
                    trace.push(rule.name().to_string());
                    node = next;
                    fired = true;
                    changed = true;
                }
            }
            if !fired {
                break;
            }
        }
        // Recurse into children.
        let mut new_children = Vec::new();
        let mut child_changed = false;
        for child in node.children() {
            let (c, ch) = self.one_pass(child, ctx, trace);
            child_changed |= ch;
            new_children.push(c);
        }
        if child_changed {
            node = node
                .with_children(new_children)
                .expect("arity preserved by one_pass");
            changed = true;
        }
        (node, changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{OptimizerConfig, OptimizerContext};
    use cx_embed::ModelRegistry;
    use cx_exec::logical::{JoinType, SemanticJoinSpec};
    use cx_expr::{col, lit};
    use cx_storage::{DataType, Field, Schema};
    use std::sync::Arc;

    fn scan(name: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::Scan {
            source: name.to_string(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
            )),
        }
    }

    fn ctx(config: OptimizerConfig) -> OptimizerContext {
        OptimizerContext::new(Arc::new(ModelRegistry::new()), config)
    }

    /// The motivating-query shape: filter over a semantic join over a
    /// semantically-filtered KB side.
    fn motivating_plan() -> LogicalPlan {
        let products = scan(
            "products",
            &[
                ("product_id", DataType::Int64),
                ("name", DataType::Utf8),
                ("price", DataType::Float64),
            ],
        );
        let kb = scan("kb", &[("label", DataType::Utf8), ("category", DataType::Utf8)]);
        let join = LogicalPlan::SemanticJoin {
            left: Box::new(products),
            right: Box::new(kb),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        LogicalPlan::Filter {
            predicate: col("price")
                .gt(lit(20.0))
                .and(col("category").eq(lit("clothes"))),
            input: Box::new(join),
        }
    }

    #[test]
    fn end_to_end_pushdown_through_semantic_join() {
        let c = ctx(OptimizerConfig::all());
        let opt = Optimizer::new(&c);
        let (plan, trace) = opt.optimize(&motivating_plan(), &c);
        let s = plan.display_indent();
        // Both factors moved below the semantic join.
        assert!(
            trace.iter().any(|t| t == "push_filter_into_semantic_join"),
            "trace: {trace:?}"
        );
        // The semantic join is now the ROOT (no filter above it).
        assert!(s.starts_with("SemanticJoin"), "{s}");
        // Filters sit directly on the scans.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.iter().any(|l| l.contains("Filter: (price > 20)")), "{s}");
        assert!(
            lines.iter().any(|l| l.contains("Filter: (category = 'clothes')")),
            "{s}"
        );
    }

    #[test]
    fn disabled_config_is_identity() {
        let c = ctx(OptimizerConfig::none());
        let opt = Optimizer::new(&c);
        let plan = motivating_plan();
        let (out, trace) = opt.optimize(&plan, &c);
        assert_eq!(out, plan);
        assert!(trace.is_empty());
    }

    #[test]
    fn optimized_plan_schema_is_preserved() {
        let c = ctx(OptimizerConfig::all());
        let opt = Optimizer::new(&c);
        let plan = motivating_plan();
        let (out, _) = opt.optimize(&plan, &c);
        assert_eq!(
            plan.schema().unwrap().names(),
            out.schema().unwrap().names()
        );
    }

    #[test]
    fn terminates_on_join_chains() {
        // Three-way join with filters: rules must reach fixpoint.
        let a = scan("a", &[("k", DataType::Utf8), ("x", DataType::Int64)]);
        let b = scan("b", &[("k2", DataType::Utf8), ("y", DataType::Int64)]);
        let cc = scan("c", &[("k3", DataType::Utf8), ("z", DataType::Int64)]);
        let j1 = LogicalPlan::Join {
            left: Box::new(a),
            right: Box::new(b),
            on: vec![("k".into(), "k2".into())],
            join_type: JoinType::Inner,
        };
        let j2 = LogicalPlan::Join {
            left: Box::new(j1),
            right: Box::new(cc),
            on: vec![("k2".into(), "k3".into())],
            join_type: JoinType::Inner,
        };
        let plan = LogicalPlan::Filter {
            predicate: col("x")
                .gt(lit(1i64))
                .and(col("z").lt(lit(5i64)))
                .and(col("k").eq(lit("boots"))),
            input: Box::new(j2),
        };
        let c = ctx(OptimizerConfig::all());
        let opt = Optimizer::new(&c);
        let (out, _) = opt.optimize(&plan, &c);
        // Schema preserved, DIP propagated the key equality across joins.
        assert_eq!(out.schema().unwrap().names(), plan.schema().unwrap().names());
        let s = out.display_indent();
        assert!(s.contains("Filter: (k = 'boots')"), "{s}");
        assert!(s.contains("(k2 = 'boots')") || s.contains("(k3 = 'boots')"), "DIP expected: {s}");
    }
}
